//! The compiler passes must preserve single-thread semantics exactly:
//! for arbitrary generated programs, running the original and the
//! optimized program (unroll + rename + schedule) from the same
//! initial state must produce identical registers and memory.

use lookahead_isa::interp::{FlatMemory, Machine, Memory};
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{AluOp, Assembler, FpReg, IntReg, Program};
use lookahead_schedule::{optimize_program, rename_program, schedule_program};

const MEM_WORDS: u64 = 64;

/// One step of a generated straight-line body.
#[derive(Debug, Clone, Copy)]
enum Step {
    Alu(u8, u8, u8, u8),    // op, rd, rs1, rs2
    AluImm(u8, u8, u8, i8), // op, rd, rs1, imm
    Load(u8, u8),           // rd, word
    Store(u8, u8),          // rs, word
    Fpu(u8, u8, u8, u8),    // op, fd, fs1, fs2
}

fn regs() -> [IntReg; 6] {
    [
        IntReg::T1,
        IntReg::T2,
        IntReg::T3,
        IntReg::T4,
        IntReg::S1,
        IntReg::S2,
    ]
}

fn fregs() -> [FpReg; 4] {
    [FpReg::F1, FpReg::F2, FpReg::F3, FpReg::F4]
}

fn alu_ops() -> [AluOp; 6] {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
    ]
}

fn emit_step(a: &mut Assembler, s: Step) {
    let r = regs();
    let f = fregs();
    match s {
        Step::Alu(op, rd, rs1, rs2) => a.alu(
            alu_ops()[op as usize % 6],
            r[rd as usize % 6],
            r[rs1 as usize % 6],
            r[rs2 as usize % 6],
        ),
        Step::AluImm(op, rd, rs1, imm) => a.alu_imm(
            alu_ops()[op as usize % 6],
            r[rd as usize % 6],
            r[rs1 as usize % 6],
            imm as i64,
        ),
        Step::Load(rd, word) => a.load(
            r[rd as usize % 6],
            IntReg::G0,
            (word as u64 % MEM_WORDS) as i64 * 8,
        ),
        Step::Store(rs, word) => a.store(
            r[rs as usize % 6],
            IntReg::G0,
            (word as u64 % MEM_WORDS) as i64 * 8,
        ),
        Step::Fpu(op, fd, fs1, fs2) => {
            let ops = [
                lookahead_isa::FpuOp::Add,
                lookahead_isa::FpuOp::Sub,
                lookahead_isa::FpuOp::Mul,
                lookahead_isa::FpuOp::Max,
            ];
            a.fpu(
                ops[op as usize % 4],
                f[fd as usize % 4],
                f[fs1 as usize % 4],
                f[fs2 as usize % 4],
            )
        }
    }
}

fn gen_step(rng: &mut XorShift64) -> Step {
    let b = |rng: &mut XorShift64| rng.next_u64() as u8;
    match rng.next_below(5) {
        0 => Step::Alu(b(rng), b(rng), b(rng), b(rng)),
        1 => Step::AluImm(b(rng), b(rng), b(rng), rng.next_u64() as i8),
        2 => Step::Load(b(rng), b(rng)),
        3 => Step::Store(b(rng), b(rng)),
        _ => Step::Fpu(b(rng), b(rng), b(rng), b(rng)),
    }
}

fn gen_steps(rng: &mut XorShift64, lo: usize, hi_exclusive: usize) -> Vec<Step> {
    let n = lo + rng.range_usize(hi_exclusive - lo);
    (0..n).map(|_| gen_step(rng)).collect()
}

/// A program: init registers, a straight-line prefix, a counted loop
/// whose body is generated, a straight-line suffix.
fn build_program(prefix: &[Step], body: &[Step], suffix: &[Step], trips: i64) -> Program {
    let mut a = Assembler::new();
    a.li(IntReg::G0, 0);
    for (i, r) in regs().into_iter().enumerate() {
        a.li(r, (i as i64 + 1) * 3);
    }
    for (i, f) in fregs().into_iter().enumerate() {
        a.lif(f, (i as f64 + 1.0) * 0.5);
    }
    for &s in prefix {
        emit_step(&mut a, s);
    }
    a.li(IntReg::S4, trips);
    a.li(IntReg::S5, 0);
    a.for_step(IntReg::S3, IntReg::S5, IntReg::S4, 1, |a| {
        for &s in body {
            emit_step(a, s);
        }
    });
    for &s in suffix {
        emit_step(&mut a, s);
    }
    a.halt();
    a.assemble().expect("generated programs assemble")
}

/// Final architectural state, restricted to the registers the
/// *reference* program touches — the optimization passes are free to
/// clobber registers the program never names (they use them as
/// renaming targets and loop guards).
fn run_state(p: &Program, reference: &Program) -> (Vec<i64>, Vec<u64>, Vec<u64>) {
    let mut int_used = [false; 32];
    let mut fp_used = [false; 32];
    for ins in reference.instructions() {
        for r in ins.int_sources().iter() {
            int_used[r.index()] = true;
        }
        if let Some(r) = ins.int_dest() {
            int_used[r.index()] = true;
        }
        for r in ins.fp_sources().iter() {
            fp_used[r.index()] = true;
        }
        if let Some(r) = ins.fp_dest() {
            fp_used[r.index()] = true;
        }
    }
    let mut mem = FlatMemory::new(MEM_WORDS * 8);
    for w in 0..MEM_WORDS {
        mem.write(w * 8, w.wrapping_mul(0x9e3779b9));
    }
    let mut m = Machine::new();
    m.run(p, &mut mem, 5_000_000).expect("terminates");
    let ints = IntReg::all()
        .filter(|r| int_used[r.index()])
        .map(|r| m.ireg(r))
        .collect();
    let fps = FpReg::all()
        .filter(|r| fp_used[r.index()])
        .map(|r| m.freg(r).to_bits())
        .collect();
    let words = (0..MEM_WORDS).map(|w| mem.read(w * 8)).collect();
    (ints, fps, words)
}

#[test]
fn optimized_programs_are_equivalent() {
    let mut rng = XorShift64::seed_from_u64(0xE1);
    for case in 0..48 {
        let prefix = gen_steps(&mut rng, 0, 12);
        let body = gen_steps(&mut rng, 1, 10);
        let suffix = gen_steps(&mut rng, 0, 8);
        let trips = rng.range_i64(0, 9);
        let factor = rng.range_usize(3) + 2;
        let p = build_program(&prefix, &body, &suffix, trips);
        let original = run_state(&p, &p);

        let (renamed, _) = rename_program(&p);
        assert_eq!(
            run_state(&renamed, &p),
            original.clone(),
            "case {case}: rename changed semantics"
        );

        let (scheduled, _) = schedule_program(&p);
        assert_eq!(
            run_state(&scheduled, &p),
            original.clone(),
            "case {case}: schedule changed semantics"
        );

        let (optimized, _, _) = optimize_program(&p, factor);
        assert_eq!(
            run_state(&optimized, &p),
            original,
            "case {case}: unroll+schedule changed semantics"
        );
    }
}

#[test]
fn optimization_preserves_instruction_mix() {
    let mut rng = XorShift64::seed_from_u64(0xE2);
    for case in 0..48 {
        let body = gen_steps(&mut rng, 1, 10);
        let trips = rng.range_i64(1, 6);
        // Unrolling duplicates code but must not invent or drop
        // *dynamic* loads/stores: count executed memory ops via the
        // trace of a single-processor run of both programs.
        let p = build_program(&[], &body, &[], trips);
        let (optimized, _, _) = optimize_program(&p, 3);
        let count = |p: &Program| {
            let mut mem = FlatMemory::new(MEM_WORDS * 8);
            let mut m = Machine::new();
            let mut loads = 0u64;
            let mut stores = 0u64;
            while !m.is_halted() {
                match m.step(p, &mut mem).expect("runs") {
                    lookahead_isa::interp::Effect::Load { .. } => loads += 1,
                    lookahead_isa::interp::Effect::Store { .. } => stores += 1,
                    _ => {}
                }
            }
            (loads, stores)
        };
        assert_eq!(count(&p), count(&optimized), "case {case}");
    }
}
