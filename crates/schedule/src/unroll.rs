//! Loop unrolling for SRISC programs.
//!
//! Basic-block scheduling alone cannot help a loop whose body is one
//! serial dependence chain (address → load → use), which is the common
//! shape of our kernels' inner loops. Unrolling places `factor`
//! consecutive iterations into a *single* basic block, so the
//! downstream renamer and list scheduler can hoist iteration *i+1*'s
//! loads above iteration *i*'s uses — the cross-iteration overlap the
//! paper's §7 compiler conjecture is really about.
//!
//! Only a conservative loop shape is transformed (everything else is
//! left untouched):
//!
//! ```text
//! head:  <preamble: integer ALU only, e.g. a materialized bound>
//!        bge  var, end, exit
//!        <straight-line body>
//!        addi var, var, step        ; step > 0
//!        j    head
//! exit:
//! ```
//!
//! which is exactly what the assembler's `for_range`, `for_step` and
//! `while_loop(Lt)` helpers emit. The transformed code runs an
//! unrolled pack guarded by `var + (factor-1)*step < end`, followed by
//! the original loop as the remainder — so any trip count, including
//! zero, executes identically. One program-wide pass then remaps every
//! branch target.

use lookahead_isa::{AluOp, BranchCond, Instruction, IntReg, OpClass, Program};

/// Statistics from an unrolling pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnrollStats {
    /// Loops matching the unrollable shape.
    pub loops_unrolled: usize,
    /// Instructions added by duplication.
    pub instructions_added: usize,
}

/// A recognized unrollable loop.
#[derive(Debug, Clone, Copy)]
struct LoopShape {
    /// Index of the loop head (jump target).
    head: usize,
    /// Index of the exit branch (`bge var, end, exit`).
    branch: usize,
    /// First index past the loop (branch target).
    exit: usize,
    var: IntReg,
    end: IntReg,
    step: i64,
}

/// Unrolls every recognizable counted loop by `factor`, remapping all
/// branch targets. Returns the transformed program and statistics.
///
/// # Panics
///
/// Panics if `factor < 2` (1 would be the identity).
pub fn unroll_program(program: &Program, factor: usize) -> (Program, UnrollStats) {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let instrs = program.instructions();
    let mut stats = UnrollStats::default();

    // One free integer register is needed for the pack guard.
    let mut used = [false; 32];
    used[0] = true;
    for ins in instrs {
        for r in ins.int_sources().iter() {
            used[r.index()] = true;
        }
        if let Some(r) = ins.int_dest() {
            used[r.index()] = true;
        }
    }
    let Some(guard_reg) = (1..32)
        .find(|&i| !used[i])
        .map(|i| IntReg::new(i).expect("in range"))
    else {
        return (Program::new(instrs.to_vec()), stats);
    };

    // All branch/jump targets, to reject loops that are entered from
    // elsewhere mid-body.
    let mut target_count = vec![0u32; instrs.len() + 1];
    for ins in instrs {
        match ins {
            Instruction::Branch { target, .. }
            | Instruction::Jump { target }
            | Instruction::JumpAndLink { target, .. } => target_count[*target] += 1,
            _ => {}
        }
    }

    let loops = find_loops(instrs, &target_count);

    // Pass 1: sizes. map[i] = new index of original instruction i.
    // Emitted layout per loop: pack = preamble + guard(2) +
    // factor*(body+addi) + jump; remainder = preamble + branch +
    // (body+addi) + jump.
    let emitted_len = |l: &LoopShape| {
        let preamble = l.branch - l.head;
        let body_and_addi = (l.exit - 1) - (l.branch + 1);
        2 * preamble + (factor + 1) * body_and_addi + 5
    };
    let mut map = vec![0usize; instrs.len() + 1];
    let mut cursor = 0usize;
    let mut li = 0usize; // index into loops
    let mut i = 0usize;
    while i < instrs.len() {
        if li < loops.len() && loops[li].head == i {
            let l = loops[li];
            // Only `head` is a legal external target; map the whole
            // region to the pack start so any target stays defined.
            for m in &mut map[l.head..l.exit] {
                *m = cursor;
            }
            cursor += emitted_len(&l);
            i = l.exit;
            li += 1;
        } else {
            map[i] = cursor;
            cursor += 1;
            i += 1;
        }
    }
    map[instrs.len()] = cursor;

    // Pass 2: emit with targets remapped through `map`.
    let remap = |ins: Instruction, map: &[usize]| match ins {
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => Instruction::Branch {
            cond,
            rs1,
            rs2,
            target: map[target],
        },
        Instruction::Jump { target } => Instruction::Jump {
            target: map[target],
        },
        Instruction::JumpAndLink { rd, target } => Instruction::JumpAndLink {
            rd,
            target: map[target],
        },
        other => other,
    };
    let mut out: Vec<Instruction> = Vec::with_capacity(cursor);
    let mut li = 0usize;
    let mut i = 0usize;
    while i < instrs.len() {
        if li < loops.len() && loops[li].head == i {
            let l = loops[li];
            let preamble = &instrs[l.head..l.branch];
            let body = &instrs[l.branch + 1..l.exit - 1]; // includes the addi
            let uhead = out.len();
            debug_assert_eq!(uhead, map[l.head]);
            // Pack guard: var + (factor-1)*step < end ?
            for p in preamble {
                out.push(remap(*p, &map));
            }
            let rhead_pos = uhead + (l.branch - l.head) + 2 + (factor) * body.len() + 1;
            out.push(Instruction::AluImm {
                op: AluOp::Add,
                rd: guard_reg,
                rs1: l.var,
                imm: (factor as i64 - 1) * l.step,
            });
            out.push(Instruction::Branch {
                cond: BranchCond::Ge,
                rs1: guard_reg,
                rs2: l.end,
                target: rhead_pos,
            });
            for _ in 0..factor {
                for b in body {
                    out.push(remap(*b, &map));
                }
            }
            out.push(Instruction::Jump { target: uhead });
            // Remainder: the original loop, verbatim.
            debug_assert_eq!(out.len(), rhead_pos);
            for p in preamble {
                out.push(remap(*p, &map));
            }
            out.push(Instruction::Branch {
                cond: BranchCond::Ge,
                rs1: l.var,
                rs2: l.end,
                target: map[l.exit],
            });
            for b in body {
                out.push(remap(*b, &map));
            }
            out.push(Instruction::Jump { target: rhead_pos });
            stats.loops_unrolled += 1;
            i = l.exit;
            li += 1;
        } else {
            out.push(remap(instrs[i], &map));
            i += 1;
        }
    }
    stats.instructions_added = out.len() - instrs.len();
    (Program::new(out), stats)
}

/// Finds non-overlapping unrollable loops, in program order.
fn find_loops(instrs: &[Instruction], target_count: &[u32]) -> Vec<LoopShape> {
    let mut loops = Vec::new();
    let mut next_free = 0usize;
    for (j, ins) in instrs.iter().enumerate() {
        // The backward jump identifies the loop tail.
        let Instruction::Jump { target: head } = ins else {
            continue;
        };
        let head = *head;
        if head >= j || head < next_free {
            continue;
        }
        let Some(shape) = match_loop(instrs, head, j, target_count) else {
            continue;
        };
        loops.push(shape);
        next_free = j + 1;
    }
    loops
}

fn match_loop(
    instrs: &[Instruction],
    head: usize,
    tail_jump: usize,
    target_count: &[u32],
) -> Option<LoopShape> {
    // Find the exit branch: first control instruction at/after head.
    let mut branch = head;
    while branch < tail_jump {
        match instrs[branch].class() {
            OpClass::IntAlu => branch += 1, // preamble (e.g. bound li)
            OpClass::Branch => break,
            _ => return None,
        }
    }
    let Instruction::Branch {
        cond: BranchCond::Ge,
        rs1: var,
        rs2: end,
        target: exit,
    } = instrs[branch]
    else {
        return None;
    };
    if exit != tail_jump + 1 {
        return None;
    }
    // The induction step right before the back jump.
    let Instruction::AluImm {
        op: AluOp::Add,
        rd,
        rs1,
        imm: step,
    } = instrs[tail_jump - 1]
    else {
        return None;
    };
    if rd != var || rs1 != var || step <= 0 {
        return None;
    }
    // Body must be straight-line and must not redefine var (other than
    // the induction step) or end, and nothing may jump into the loop.
    for (k, ins) in instrs[branch + 1..tail_jump - 1].iter().enumerate() {
        if ins.is_control() || matches!(ins, Instruction::Halt) {
            return None;
        }
        if ins.int_dest() == Some(var) || ins.int_dest() == Some(end) {
            return None;
        }
        if target_count[branch + 1 + k] > 0 {
            return None;
        }
    }
    // Preamble must not write var/end's... it may write `end` (the
    // materialized bound): allowed because it is re-executed before
    // every guard. It must not write var.
    for ins in &instrs[head..branch] {
        if ins.int_dest() == Some(var) {
            return None;
        }
    }
    if target_count[head + 1..=tail_jump].iter().any(|&c| c > 0) {
        return None;
    }
    Some(LoopShape {
        head,
        branch,
        exit,
        var,
        end,
        step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::interp::{FlatMemory, Machine, Memory};
    use lookahead_isa::{Assembler, IntReg};

    fn sum_loop(n: i64) -> Program {
        let mut a = Assembler::new();
        a.li(IntReg::T1, 0);
        a.for_range(IntReg::T0, 0, n, |a| {
            a.add(IntReg::T1, IntReg::T1, IntReg::T0);
        });
        a.halt();
        a.assemble().unwrap()
    }

    fn run_t1(p: &Program) -> i64 {
        let mut mem = FlatMemory::new(1024);
        let mut m = Machine::new();
        m.run(p, &mut mem, 1_000_000).unwrap();
        m.ireg(IntReg::T1)
    }

    #[test]
    fn unrolled_loop_computes_same_sum() {
        for n in [0i64, 1, 2, 3, 7, 8, 9, 100] {
            let p = sum_loop(n);
            for factor in [2usize, 3, 4] {
                let (u, stats) = unroll_program(&p, factor);
                assert_eq!(stats.loops_unrolled, 1, "n={n} factor={factor}");
                assert_eq!(
                    run_t1(&u),
                    (0..n).sum::<i64>(),
                    "n={n} factor={factor}\n{u}"
                );
            }
        }
    }

    #[test]
    fn nested_loops_unroll_inner() {
        let mut a = Assembler::new();
        a.li(IntReg::T1, 0);
        a.for_range(IntReg::T0, 0, 5, |a| {
            a.for_range(IntReg::T2, 0, 7, |a| {
                a.add(IntReg::T1, IntReg::T1, IntReg::T2);
            });
        });
        a.halt();
        let p = a.assemble().unwrap();
        let (u, stats) = unroll_program(&p, 2);
        // The inner loop matches; the outer contains control flow so
        // it is left alone.
        assert_eq!(stats.loops_unrolled, 1);
        assert_eq!(run_t1(&u), 5 * (0..7).sum::<i64>());
    }

    #[test]
    fn loop_with_memory_ops_unrolls_and_preserves_memory() {
        // A register-bound loop (for_range's immediate bound lives in
        // the scratch register, which index_word also clobbers — the
        // matcher rightly rejects that shape, tested below).
        let mut a = Assembler::new();
        a.li(IntReg::G0, 256);
        a.li(IntReg::T1, 0);
        a.li(IntReg::T5, 10);
        a.li(IntReg::T6, 0);
        a.for_step(IntReg::T0, IntReg::T6, IntReg::T5, 1, |a| {
            a.index_word(IntReg::T3, IntReg::G0, IntReg::T0);
            a.load(IntReg::T4, IntReg::T3, 0);
            a.add(IntReg::T1, IntReg::T1, IntReg::T4);
            a.addi(IntReg::T4, IntReg::T4, 1);
            a.store(IntReg::T4, IntReg::T3, 0);
        });
        a.halt();
        let p = a.assemble().unwrap();
        let run_full = |p: &Program| {
            let mut mem = FlatMemory::new(1024);
            for i in 0..10u64 {
                mem.write(256 + i * 8, i * 3);
            }
            let mut m = Machine::new();
            m.run(p, &mut mem, 1_000_000).unwrap();
            let vals: Vec<u64> = (0..10).map(|i| mem.read(256 + i * 8)).collect();
            (m.ireg(IntReg::T1), vals)
        };
        let (u, stats) = unroll_program(&p, 4);
        assert_eq!(stats.loops_unrolled, 1);
        assert_eq!(run_full(&p), run_full(&u));
    }

    #[test]
    fn uneven_trip_counts_fall_into_remainder() {
        // factor 4 with n = 6: one pack (4 iterations) + 2 remainder.
        let p = sum_loop(6);
        let (u, _) = unroll_program(&p, 4);
        assert_eq!(run_t1(&u), 15);
    }

    #[test]
    fn loop_modifying_its_bound_is_rejected() {
        let mut a = Assembler::new();
        a.li(IntReg::T2, 10);
        a.li(IntReg::T1, 0);
        a.for_to(IntReg::T0, 0, IntReg::T2, |a| {
            a.addi(IntReg::T2, IntReg::T2, -1); // shrinks its own bound
            a.addi(IntReg::T1, IntReg::T1, 1);
        });
        a.halt();
        let p = a.assemble().unwrap();
        let (u, stats) = unroll_program(&p, 2);
        assert_eq!(stats.loops_unrolled, 0);
        assert_eq!(run_t1(&u), run_t1(&p));
    }

    #[test]
    fn program_without_loops_is_unchanged() {
        let mut a = Assembler::new();
        a.li(IntReg::T1, 42);
        a.halt();
        let p = a.assemble().unwrap();
        let (u, stats) = unroll_program(&p, 2);
        assert_eq!(stats.loops_unrolled, 0);
        assert_eq!(u, p);
    }
}
