//! Compile-time instruction scheduling for SRISC programs.
//!
//! The paper closes with: "it would be interesting to evaluate
//! compiler techniques that exploit relaxed models to schedule reads
//! early. Such compiler rescheduling may allow dynamic processors with
//! small windows or statically scheduled processors with non-blocking
//! reads to effectively hide read latency with simpler hardware"
//! (§7). This crate implements that technique: a basic-block list
//! scheduler that hoists loads as early as their dependences allow and
//! sinks their uses as late as possible, widening the load-to-use
//! distance that the SS processor (stall at first use) can overlap.
//!
//! The pass is *RC-legal*: it reorders ordinary loads and stores only
//! between synchronization operations and never moves a memory access
//! across a store or a synchronization instruction — exactly the
//! reordering a release-consistent system permits the compiler. Under
//! SC the same transformation would be unsound for shared data, which
//! is the paper's §2 point about relaxed models enabling compiler
//! optimizations.
//!
//! Guarantees:
//!
//! * single-thread semantics are preserved exactly (register and
//!   memory dependences are honored; the property/workload tests
//!   verify final architectural state end to end);
//! * basic-block boundaries and sizes are unchanged, so every branch
//!   target remains valid;
//! * stores, synchronization and control instructions keep their
//!   relative order.
//!
//! # Example
//!
//! ```
//! use lookahead_isa::{Assembler, IntReg};
//! use lookahead_schedule::schedule_program;
//!
//! let mut a = Assembler::new();
//! a.addi(IntReg::T2, IntReg::T2, 1);       // filler
//! a.load(IntReg::T1, IntReg::G0, 0);       // load...
//! a.addi(IntReg::T3, IntReg::T1, 1);       // ...used immediately
//! a.halt();
//! let p = a.assemble()?;
//! let (scheduled, stats) = schedule_program(&p);
//! assert_eq!(scheduled.len(), p.len());
//! assert!(stats.loads_hoisted >= 1, "{stats:?}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod unroll;

use lookahead_isa::{FpReg, Instruction, IntReg, OpClass, Program};
pub use unroll::{unroll_program, UnrollStats};

/// Statistics from a scheduling pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Basic blocks processed.
    pub blocks: usize,
    /// Loads moved to an earlier position within their block.
    pub loads_hoisted: u64,
    /// Sum of positions gained by hoisted loads (instructions).
    pub hoist_distance: u64,
    /// Register definitions renamed to break WAR/WAW hazards.
    pub defs_renamed: u64,
}

/// Schedules every basic block of `program` (with local register
/// renaming first — see [`rename_program`]), returning the transformed
/// program and pass statistics.
pub fn schedule_program(program: &Program) -> (Program, ScheduleStats) {
    let (renamed, rename_stats) = rename_program(program);
    let instrs = renamed.instructions();
    let leaders = block_leaders(instrs);
    let mut stats = ScheduleStats {
        defs_renamed: rename_stats.defs_renamed,
        ..ScheduleStats::default()
    };
    let mut out: Vec<Instruction> = Vec::with_capacity(instrs.len());
    let mut starts: Vec<usize> = leaders.to_vec();
    starts.sort_unstable();
    starts.dedup();
    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(instrs.len());
        stats.blocks += 1;
        schedule_block(&instrs[start..end], &mut out, &mut stats);
    }
    (Program::new(out), stats)
}

/// The full optimization pipeline of the paper's §7 conjecture:
/// unroll counted loops by `unroll_factor` (putting several iterations
/// into one basic block), rename killed definitions to break WAR/WAW
/// hazards, then list-schedule each block with loads first.
pub fn optimize_program(
    program: &Program,
    unroll_factor: usize,
) -> (Program, ScheduleStats, UnrollStats) {
    let (unrolled, ustats) = if unroll_factor >= 2 {
        unroll_program(program, unroll_factor)
    } else {
        (program.clone(), UnrollStats::default())
    };
    let (scheduled, sstats) = schedule_program(&unrolled);
    (scheduled, sstats, ustats)
}

/// Local register renaming: within each basic block, definitions that
/// are killed (redefined) before the block ends are renamed to
/// registers the program never touches, eliminating the WAR/WAW
/// hazards that hand-written kernels create by reusing temporaries.
/// The *last* definition of each architectural register keeps its
/// name, so live-out values are unchanged; block sizes and therefore
/// all branch targets are preserved.
pub fn rename_program(program: &Program) -> (Program, ScheduleStats) {
    let instrs = program.instructions();
    // Registers the program never references are safe rename targets.
    let mut int_used = [false; 32];
    let mut fp_used = [false; 32];
    for ins in instrs {
        for r in ins.int_sources().iter() {
            int_used[r.index()] = true;
        }
        if let Some(r) = ins.int_dest() {
            int_used[r.index()] = true;
        }
        for r in ins.fp_sources().iter() {
            fp_used[r.index()] = true;
        }
        if let Some(r) = ins.fp_dest() {
            fp_used[r.index()] = true;
        }
    }
    let free_int: Vec<IntReg> = (1..32)
        .filter(|&i| !int_used[i])
        .map(|i| IntReg::new(i).expect("index in range"))
        .collect();
    let free_fp: Vec<FpReg> = (0..32)
        .filter(|&i| !fp_used[i])
        .map(|i| FpReg::new(i).expect("index in range"))
        .collect();

    let leaders = block_leaders(instrs);
    let mut starts: Vec<usize> = leaders;
    starts.sort_unstable();
    starts.dedup();
    let mut stats = ScheduleStats::default();
    let mut out: Vec<Instruction> = Vec::with_capacity(instrs.len());
    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(instrs.len());
        rename_block(
            &instrs[start..end],
            &free_int,
            &free_fp,
            &mut out,
            &mut stats,
        );
    }
    (Program::new(out), stats)
}

fn rename_block(
    block: &[Instruction],
    free_int: &[IntReg],
    free_fp: &[FpReg],
    out: &mut Vec<Instruction>,
    stats: &mut ScheduleStats,
) {
    // Count remaining definitions of each register from each position,
    // so we know whether a def is the last one in the block.
    let n = block.len();
    let mut int_defs_after = vec![[0u32; 32]; n + 1];
    let mut fp_defs_after = vec![[0u32; 32]; n + 1];
    for i in (0..n).rev() {
        int_defs_after[i] = int_defs_after[i + 1];
        fp_defs_after[i] = fp_defs_after[i + 1];
        if let Some(r) = block[i].int_dest() {
            int_defs_after[i][r.index()] += 1;
        }
        if let Some(r) = block[i].fp_dest() {
            fp_defs_after[i][r.index()] += 1;
        }
    }
    // Current location of each architectural register's value.
    let mut cur_int: Vec<IntReg> = IntReg::all().collect();
    let mut cur_fp: Vec<FpReg> = FpReg::all().collect();
    let mut next_free_int = 0usize;
    let mut next_free_fp = 0usize;
    for (i, ins) in block.iter().enumerate() {
        // Phase 1: rewrite sources through the current locations
        // (reads see the value of the *previous* definition).
        let src_mapped =
            ins.map_registers(|r| cur_int[r.index()], |r| r, |r| cur_fp[r.index()], |r| r);
        // Phase 2: pick the destination's new home.
        let new_int_dest = ins.int_dest().map(|r| {
            if int_defs_after[i + 1][r.index()] > 0 && next_free_int < free_int.len() {
                let fresh = free_int[next_free_int];
                next_free_int += 1;
                stats.defs_renamed += 1;
                cur_int[r.index()] = fresh;
                fresh
            } else {
                cur_int[r.index()] = r;
                r
            }
        });
        let new_fp_dest = ins.fp_dest().map(|r| {
            if fp_defs_after[i + 1][r.index()] > 0 && next_free_fp < free_fp.len() {
                let fresh = free_fp[next_free_fp];
                next_free_fp += 1;
                stats.defs_renamed += 1;
                cur_fp[r.index()] = fresh;
                fresh
            } else {
                cur_fp[r.index()] = r;
                r
            }
        });
        out.push(src_mapped.map_registers(
            |r| r,
            |r| new_int_dest.unwrap_or(r),
            |r| r,
            |r| new_fp_dest.unwrap_or(r),
        ));
    }
}

/// The set of basic-block leader indices: entry, all branch/jump
/// targets, and every instruction following a control transfer or
/// halt.
fn block_leaders(instrs: &[Instruction]) -> Vec<usize> {
    let mut leaders = vec![0usize];
    for (i, ins) in instrs.iter().enumerate() {
        match ins {
            Instruction::Branch { target, .. } => {
                leaders.push(*target);
                leaders.push(i + 1);
            }
            Instruction::Jump { target } | Instruction::JumpAndLink { target, .. } => {
                leaders.push(*target);
                leaders.push(i + 1);
            }
            Instruction::JumpReg { .. } | Instruction::Halt => {
                leaders.push(i + 1);
            }
            // A jump-and-link's return point is the instruction after
            // the *call site*, already covered above; the callee's
            // `jr` target is a former `jal`'s successor, also covered.
            _ => {}
        }
    }
    leaders.retain(|&l| l < instrs.len());
    leaders
}

/// Register slots: 0..32 integer, 32..64 floating point.
fn reg_slots(ins: &Instruction) -> (Vec<usize>, Vec<usize>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for r in ins.int_sources().iter() {
        if !r.is_zero() {
            reads.push(r.index());
        }
    }
    for r in ins.fp_sources().iter() {
        reads.push(32 + r.index());
    }
    if let Some(r) = ins.int_dest() {
        writes.push(r.index());
    }
    if let Some(r) = ins.fp_dest() {
        writes.push(32 + r.index());
    }
    (reads, writes)
}

/// A symbolic address: a sum of at most two scaled value terms plus a
/// displacement. Value ids 0..64 denote the register contents at block
/// entry (`r0` is the constant zero); larger ids are opaque values
/// created inside the block. Two addresses with identical terms and
/// different displacements are provably distinct words (all SRISC
/// accesses are word-aligned), which lets the scheduler move a load
/// past a store it cannot alias — the disambiguation a compiler needs
/// to overlap unrolled iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Expr {
    terms: [(u32, i64); 2],
    nterms: u8,
    disp: i64,
}

impl Expr {
    fn constant(disp: i64) -> Expr {
        Expr {
            terms: [(0, 0); 2],
            nterms: 0,
            disp,
        }
    }

    fn value(id: u32) -> Expr {
        Expr {
            terms: [(id, 1), (0, 0)],
            nterms: 1,
            disp: 0,
        }
    }

    fn add_imm(self, imm: i64) -> Expr {
        Expr {
            disp: self.disp.wrapping_add(imm),
            ..self
        }
    }

    fn scale(self, f: i64) -> Option<Expr> {
        if f == 0 {
            return Some(Expr::constant(0));
        }
        let mut e = self;
        for t in e.terms.iter_mut().take(e.nterms as usize) {
            t.1 = t.1.checked_mul(f)?;
        }
        e.disp = e.disp.checked_mul(f)?;
        Some(e)
    }

    fn sum(self, other: Expr) -> Option<Expr> {
        let mut terms: Vec<(u32, i64)> = Vec::with_capacity(4);
        terms.extend_from_slice(&self.terms[..self.nterms as usize]);
        for &(id, sc) in &other.terms[..other.nterms as usize] {
            if let Some(t) = terms.iter_mut().find(|t| t.0 == id) {
                t.1 = t.1.checked_add(sc)?;
            } else {
                terms.push((id, sc));
            }
        }
        terms.retain(|t| t.1 != 0);
        if terms.len() > 2 {
            return None;
        }
        terms.sort_unstable();
        let mut arr = [(0u32, 0i64); 2];
        for (i, t) in terms.iter().enumerate() {
            arr[i] = *t;
        }
        Some(Expr {
            terms: arr,
            nterms: terms.len() as u8,
            disp: self.disp.checked_add(other.disp)?,
        })
    }

    /// Provably different words: identical symbolic part, different
    /// displacement.
    fn disjoint_from(self, other: Expr) -> bool {
        self.nterms == other.nterms
            && self.terms[..self.nterms as usize] == other.terms[..other.nterms as usize]
            && self.disp != other.disp
    }
}

/// Tracks symbolic register contents through a block.
struct ExprState {
    regs: [Expr; 32],
    next_id: u32,
}

impl ExprState {
    fn new() -> ExprState {
        let mut regs = [Expr::constant(0); 32];
        for (i, e) in regs.iter_mut().enumerate().skip(1) {
            *e = Expr::value(i as u32);
        }
        ExprState { regs, next_id: 64 }
    }

    fn fresh(&mut self) -> Expr {
        let id = self.next_id;
        self.next_id += 1;
        Expr::value(id)
    }

    /// The address of a memory operation, if it is one.
    fn address_of(&self, ins: &Instruction) -> Option<Expr> {
        match *ins {
            Instruction::Load { base, offset, .. }
            | Instruction::Store { base, offset, .. }
            | Instruction::LoadF { base, offset, .. }
            | Instruction::StoreF { base, offset, .. } => {
                Some(self.regs[base.index()].add_imm(offset))
            }
            _ => None,
        }
    }

    /// Updates the destination register's symbolic value.
    fn step(&mut self, ins: &Instruction) {
        use lookahead_isa::AluOp;
        let Some(rd) = ins.int_dest() else {
            return;
        };
        let value = match *ins {
            Instruction::LoadImm { imm, .. } => Expr::constant(imm),
            Instruction::AluImm { op, rs1, imm, .. } => {
                let src = self.regs[rs1.index()];
                match op {
                    AluOp::Add => Some(src.add_imm(imm)),
                    AluOp::Sub => Some(src.add_imm(-imm)),
                    AluOp::Mul => src.scale(imm),
                    AluOp::Sll if (0..32).contains(&imm) => src.scale(1i64 << imm),
                    _ => None,
                }
                .unwrap_or_else(|| self.fresh())
            }
            Instruction::Alu { op, rs1, rs2, .. } => {
                let (a, b) = (self.regs[rs1.index()], self.regs[rs2.index()]);
                match op {
                    AluOp::Add => a.sum(b),
                    AluOp::Sub => b.scale(-1).and_then(|nb| a.sum(nb)),
                    _ => None,
                }
                .unwrap_or_else(|| self.fresh())
            }
            _ => self.fresh(),
        };
        self.regs[rd.index()] = value;
    }
}

/// List-schedules one block into `out`.
fn schedule_block(block: &[Instruction], out: &mut Vec<Instruction>, stats: &mut ScheduleStats) {
    let n = block.len();
    if n <= 1 {
        out.extend_from_slice(block);
        return;
    }
    // The trailing control instruction (branch/jump/halt) is pinned.
    let pinned_tail = block
        .last()
        .map(|i| i.is_control() || matches!(i, Instruction::Halt))
        .unwrap_or(false);
    let schedulable = if pinned_tail { n - 1 } else { n };

    // Build dependence edges.
    let mut preds: Vec<u32> = vec![0; schedulable];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); schedulable];
    let add_edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<u32>| {
        if from != to && !succs[from].contains(&to) {
            succs[from].push(to);
            preds[to] += 1;
        }
    };
    let mut last_write: [Option<usize>; 64] = [None; 64];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); 64];
    // Memory ordering with symbolic disambiguation: an access only
    // depends on a prior access it may alias (or any synchronization,
    // which is a full fence).
    let mut mem_since_sync: Vec<(usize, bool, Option<Expr>)> = Vec::new();
    let mut last_sync: Option<usize> = None;
    let mut exprs = ExprState::new();

    for (i, ins) in block[..schedulable].iter().enumerate() {
        let (reads, writes) = reg_slots(ins);
        for &r in &reads {
            if let Some(w) = last_write[r] {
                add_edge(w, i, &mut succs, &mut preds); // RAW
            }
            readers[r].push(i);
        }
        for &w in &writes {
            if let Some(prev) = last_write[w] {
                add_edge(prev, i, &mut succs, &mut preds); // WAW
            }
            for &rd in &readers[w] {
                add_edge(rd, i, &mut succs, &mut preds); // WAR
            }
            readers[w].clear();
            last_write[w] = Some(i);
        }
        let my_addr = exprs.address_of(ins);
        let may_alias = |a: &Option<Expr>, b: &Option<Expr>| match (a, b) {
            (Some(x), Some(y)) => !x.disjoint_from(*y),
            _ => true, // unknown address: assume aliasing
        };
        match ins.class() {
            OpClass::Load => {
                if let Some(b) = last_sync {
                    add_edge(b, i, &mut succs, &mut preds);
                }
                for &(p, is_store, ref pe) in &mem_since_sync {
                    if is_store && may_alias(pe, &my_addr) {
                        add_edge(p, i, &mut succs, &mut preds);
                    }
                }
                mem_since_sync.push((i, false, my_addr));
            }
            OpClass::Store => {
                if let Some(b) = last_sync {
                    add_edge(b, i, &mut succs, &mut preds);
                }
                for &(p, _, ref pe) in &mem_since_sync {
                    if may_alias(pe, &my_addr) {
                        add_edge(p, i, &mut succs, &mut preds);
                    }
                }
                mem_since_sync.push((i, true, my_addr));
            }
            OpClass::Sync(_) => {
                if let Some(b) = last_sync {
                    add_edge(b, i, &mut succs, &mut preds);
                }
                for &(p, _, _) in &mem_since_sync {
                    add_edge(p, i, &mut succs, &mut preds);
                }
                mem_since_sync.clear();
                last_sync = Some(i);
            }
            _ => {}
        }
        exprs.step(ins);
    }

    // Greedy list scheduling: loads first among ready instructions,
    // otherwise original order.
    let mut ready: Vec<usize> = (0..schedulable).filter(|&i| preds[i] == 0).collect();
    let mut scheduled: Vec<usize> = Vec::with_capacity(schedulable);
    while let Some(pos) = {
        ready.sort_unstable();
        ready
            .iter()
            .position(|&i| block[i].class() == OpClass::Load)
            .or(if ready.is_empty() { None } else { Some(0) })
    } {
        let i = ready.remove(pos);
        scheduled.push(i);
        for &s in &succs[i] {
            preds[s] -= 1;
            if preds[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(scheduled.len(), schedulable, "scheduling lost instructions");

    for (new_pos, &old_pos) in scheduled.iter().enumerate() {
        if block[old_pos].class() == OpClass::Load && new_pos < old_pos {
            stats.loads_hoisted += 1;
            stats.hoist_distance += (old_pos - new_pos) as u64;
        }
        out.push(block[old_pos]);
    }
    if pinned_tail {
        out.push(block[n - 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::interp::{FlatMemory, Machine};
    use lookahead_isa::program::DataImage;
    use lookahead_isa::{Assembler, IntReg};

    /// Runs a program to completion and returns (T1..T5, memory).
    fn run(p: &Program, image: &DataImage) -> ([i64; 5], FlatMemory) {
        let mut mem = FlatMemory::from_image(image.words().to_vec(), 8192);
        let mut m = Machine::new();
        m.run(p, &mut mem, 1_000_000).unwrap();
        (
            [
                m.ireg(IntReg::T1),
                m.ireg(IntReg::T2),
                m.ireg(IntReg::T3),
                m.ireg(IntReg::T4),
                m.ireg(IntReg::T5),
            ],
            mem,
        )
    }

    fn image_with_data() -> DataImage {
        let mut img = DataImage::new();
        img.alloc_i64_slice(&[10, 20, 30, 40, 50, 60, 70, 80]);
        img
    }

    #[test]
    fn load_hoisted_above_independent_compute() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.addi(IntReg::T2, IntReg::T2, 1);
        a.addi(IntReg::T2, IntReg::T2, 1);
        a.load(IntReg::T1, IntReg::G0, 0);
        a.addi(IntReg::T3, IntReg::T1, 5);
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, stats) = schedule_program(&p);
        assert!(stats.loads_hoisted >= 1);
        assert!(stats.hoist_distance >= 2);
        // The load now sits right after its address producer.
        let pos = |prog: &Program, pred: fn(&Instruction) -> bool| {
            prog.instructions().iter().position(pred).unwrap()
        };
        let load_at = pos(&sp, |i| matches!(i, Instruction::Load { .. }));
        assert!(load_at < 2, "load not hoisted: at {load_at}\n{sp}");
        // Semantics preserved.
        let img = image_with_data();
        assert_eq!(run(&p, &img), run(&sp, &img));
    }

    #[test]
    fn load_not_hoisted_above_store() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.li(IntReg::T2, 99);
        a.store(IntReg::T2, IntReg::G0, 0); // store to the same word
        a.load(IntReg::T1, IntReg::G0, 0); // must stay after the store
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, _) = schedule_program(&p);
        let instrs = sp.instructions();
        let store_at = instrs
            .iter()
            .position(|i| matches!(i, Instruction::Store { .. }))
            .unwrap();
        let load_at = instrs
            .iter()
            .position(|i| matches!(i, Instruction::Load { .. }))
            .unwrap();
        assert!(store_at < load_at, "load crossed a store\n{sp}");
        let img = image_with_data();
        assert_eq!(run(&p, &img), run(&sp, &img));
    }

    #[test]
    fn loads_do_not_cross_synchronization() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.lock(IntReg::G0, 64);
        a.load(IntReg::T1, IntReg::G0, 0);
        a.unlock(IntReg::G0, 64);
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, _) = schedule_program(&p);
        let classes: Vec<_> = sp.instructions().iter().map(|i| i.class()).collect();
        let lock_at = classes
            .iter()
            .position(|c| matches!(c, OpClass::Sync(lookahead_isa::SyncKind::Lock)))
            .unwrap();
        let load_at = classes.iter().position(|c| *c == OpClass::Load).unwrap();
        let unlock_at = classes
            .iter()
            .position(|c| matches!(c, OpClass::Sync(lookahead_isa::SyncKind::Unlock)))
            .unwrap();
        assert!(lock_at < load_at && load_at < unlock_at, "{sp}");
    }

    #[test]
    fn branches_stay_at_block_ends_and_targets_hold() {
        let mut a = Assembler::new();
        a.li(IntReg::T1, 0);
        a.for_range(IntReg::T2, 0, 5, |a| {
            a.load(IntReg::T3, IntReg::T1, 0);
            a.addi(IntReg::T1, IntReg::T1, 8);
            a.add(IntReg::T4, IntReg::T4, IntReg::T3);
        });
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, _) = schedule_program(&p);
        assert_eq!(sp.len(), p.len());
        let img = image_with_data();
        assert_eq!(run(&p, &img), run(&sp, &img));
    }

    #[test]
    fn waw_and_war_hazards_respected() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.load(IntReg::T1, IntReg::G0, 0); // T1 = 10
        a.addi(IntReg::T2, IntReg::T1, 1); // reads T1 (11)
        a.load(IntReg::T1, IntReg::G0, 8); // WAW/WAR on T1 (20)
        a.addi(IntReg::T3, IntReg::T1, 2); // reads new T1 (22)
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, _) = schedule_program(&p);
        let img = image_with_data();
        let (regs, _) = run(&sp, &img);
        assert_eq!(regs[1], 11, "{sp}");
        assert_eq!(regs[2], 22, "{sp}");
    }

    #[test]
    fn empty_and_tiny_blocks_survive() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.assemble().unwrap();
        let (sp, stats) = schedule_program(&p);
        assert_eq!(sp.len(), 1);
        assert_eq!(stats.loads_hoisted, 0);
    }

    #[test]
    fn workload_programs_still_verify_after_scheduling() {
        use lookahead_multiproc::{SimConfig, Simulator};
        use lookahead_workloads::App;
        for app in App::ALL {
            let w = app.small_workload();
            let built = w.build(4);
            let (scheduled, stats) = schedule_program(&built.program);
            assert_eq!(scheduled.len(), built.program.len(), "{app}");
            let config = SimConfig {
                num_procs: 4,
                max_cycles: 500_000_000,
                ..SimConfig::default()
            };
            let out = Simulator::new(scheduled, built.image, config)
                .unwrap()
                .run()
                .unwrap_or_else(|e| panic!("{app}: scheduled program failed: {e}"));
            (built.verify)(&out.final_memory)
                .unwrap_or_else(|e| panic!("{app}: scheduled program wrong: {e}"));
            assert!(stats.blocks > 0, "{app}");
        }
    }
}
