//! Branch target buffer with 2-bit saturating counters.
//!
//! The paper's processor (§3.1) uses a 2048-entry, 4-way
//! set-associative branch target buffer [Lee & Smith 84] for dynamic
//! branch prediction. A branch hits in the BTB if its PC tag matches;
//! prediction is the 2-bit counter's direction with the stored target.
//! A branch that misses predicts not-taken (fall-through). Entries are
//! allocated on taken branches and replaced LRU within the set.
//!
//! A prediction is *correct* when the predicted direction matches the
//! outcome and, for taken predictions, the stored target matches the
//! actual target (SRISC branches have static targets, so a stale
//! target can only occur through aliasing/replacement).

use lookahead_trace::BranchPredictor;

/// Geometry of the branch target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbConfig {
    /// Total entries (paper: 2048).
    pub entries: usize,
    /// Set associativity (paper: 4).
    pub ways: usize,
}

impl BtbConfig {
    /// The paper's configuration: 2048 entries, 4-way.
    pub const PAPER: BtbConfig = BtbConfig {
        entries: 2048,
        ways: 4,
    };

    fn sets(&self) -> usize {
        (self.entries / self.ways).max(1)
    }
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig::PAPER
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u32,
    target: u32,
    /// 2-bit saturating counter; >= 2 predicts taken.
    counter: u8,
    /// LRU stamp.
    last_used: u64,
}

/// The branch target buffer.
///
/// # Example
///
/// ```
/// use lookahead_core::btb::{Btb, BtbConfig};
///
/// let mut btb = Btb::new(BtbConfig::PAPER);
/// // First encounter of a taken branch: predicted not-taken (miss).
/// let p = btb.predict(100);
/// assert!(!p.taken);
/// btb.update(100, true, 7);
/// btb.update(100, true, 7);
/// // Now the counter predicts taken with the learned target.
/// let p = btb.predict(100);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<Entry>>,
    clock: u64,
    predictions: u64,
    mispredictions: u64,
}

/// A BTB prediction: direction plus target when predicted taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target (present only for taken predictions).
    pub target: Option<u32>,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(config: BtbConfig) -> Btb {
        assert!(config.ways > 0 && config.ways <= config.entries);
        Btb {
            config,
            sets: vec![Vec::new(); config.sets()],
            clock: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn set_index(&self, pc: u32) -> usize {
        pc as usize % self.config.sets()
    }

    /// Predicts the branch at `pc` without updating any state.
    pub fn predict(&self, pc: u32) -> Prediction {
        let set = &self.sets[self.set_index(pc)];
        match set.iter().find(|e| e.pc == pc) {
            Some(e) if e.counter >= 2 => Prediction {
                taken: true,
                target: Some(e.target),
            },
            _ => Prediction {
                taken: false,
                target: None,
            },
        }
    }

    /// Updates the BTB with a resolved branch outcome.
    pub fn update(&mut self, pc: u32, taken: bool, target: u32) {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.config.ways;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.pc == pc) {
            if taken {
                e.counter = (e.counter + 1).min(3);
                e.target = target;
            } else {
                e.counter = e.counter.saturating_sub(1);
            }
            e.last_used = clock;
            return;
        }
        if !taken {
            // Not-taken branches that miss are predicted correctly by
            // fall-through; no need to allocate.
            return;
        }
        let entry = Entry {
            pc,
            target,
            counter: 2, // weakly taken on allocation
            last_used: clock,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.last_used)
                .expect("non-empty set");
            *victim = entry;
        }
    }

    /// Branches scored so far via [`BranchPredictor::predict_and_update`].
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

impl BranchPredictor for Btb {
    fn predict_and_update(&mut self, pc: u32, taken: bool, target: u32) -> bool {
        let p = self.predict(pc);
        let correct = p.taken == taken && (!taken || p.target == Some(target));
        self.update(pc, taken, target);
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    fn reset(&mut self) {
        let config = self.config;
        *self = Btb::new(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_branch_predicts_not_taken() {
        let btb = Btb::new(BtbConfig::PAPER);
        assert_eq!(
            btb.predict(42),
            Prediction {
                taken: false,
                target: None
            }
        );
    }

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut btb = Btb::new(BtbConfig::PAPER);
        btb.update(10, true, 99); // allocate at weakly-taken (2)
        assert!(btb.predict(10).taken);
        btb.update(10, false, 99); // 2 -> 1
        assert!(!btb.predict(10).taken);
        btb.update(10, true, 99); // 1 -> 2
        assert!(btb.predict(10).taken);
        btb.update(10, true, 99); // 2 -> 3 (saturate)
        btb.update(10, false, 99); // 3 -> 2: still predicts taken
        assert!(btb.predict(10).taken, "hysteresis keeps taken");
    }

    #[test]
    fn lru_replacement_within_set() {
        // 1 set, 2 ways: third distinct taken branch evicts the LRU.
        let mut btb = Btb::new(BtbConfig {
            entries: 2,
            ways: 2,
        });
        btb.update(1, true, 11);
        btb.update(2, true, 22);
        btb.update(1, true, 11); // touch 1 so 2 becomes LRU
        btb.update(3, true, 33); // evicts 2
        assert!(btb.predict(1).taken);
        assert!(btb.predict(3).taken);
        assert!(!btb.predict(2).taken, "evicted");
    }

    #[test]
    fn loop_branch_learns_quickly() {
        let mut btb = Btb::new(BtbConfig::PAPER);
        let mut correct = 0;
        for _ in 0..100 {
            if btb.predict_and_update(5, true, 2) {
                correct += 1;
            }
        }
        assert!(correct >= 99, "only the cold prediction misses: {correct}");
        assert_eq!(btb.predictions(), 100);
        assert_eq!(btb.mispredictions(), 100 - correct);
    }

    #[test]
    fn alternating_branch_mispredicts_half() {
        let mut btb = Btb::new(BtbConfig::PAPER);
        let mut correct = 0;
        for i in 0..100 {
            if btb.predict_and_update(5, i % 2 == 0, 2) {
                correct += 1;
            }
        }
        assert!(
            correct <= 60,
            "alternating branches defeat a 2-bit counter: {correct}"
        );
    }

    #[test]
    fn not_taken_branches_do_not_allocate() {
        let mut btb = Btb::new(BtbConfig {
            entries: 2,
            ways: 2,
        });
        btb.update(1, false, 0);
        btb.update(1, false, 0);
        // Set still empty: a taken branch allocates without eviction.
        btb.update(2, true, 9);
        btb.update(3, true, 9);
        assert!(btb.predict(2).taken);
        assert!(btb.predict(3).taken);
    }

    #[test]
    fn reset_clears_state() {
        let mut btb = Btb::new(BtbConfig::PAPER);
        btb.predict_and_update(1, true, 2);
        btb.reset();
        assert_eq!(btb.predictions(), 0);
        assert!(!btb.predict(1).taken);
    }
}
