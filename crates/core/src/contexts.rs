//! Multiple hardware contexts — the §5 alternative latency-tolerance
//! technique ("the use of multiple contexts \[2, 15, 17, 33, 37\]"),
//! modelled as blocked multithreading in the style of APRIL/MASA: one
//! pipeline holds several register contexts, each running its own
//! instruction stream; when the active context takes a long-latency
//! event (a read miss or an acquire), the processor switches to
//! another ready context after a fixed switch overhead, and the
//! blocked context's access completes in the background.
//!
//! Feeding the model several per-processor traces from the same
//! multiprocessor run gives a head-to-head comparison with dynamic
//! scheduling on identical work: both techniques hide read latency by
//! finding independent work, but multiple contexts find it in *other
//! threads* (cheap hardware, needs surplus parallelism and pays the
//! switch cost) where the window finds it in the *same* thread.
//!
//! The model keeps the usual trace-driven simplifications: stores
//! drain through an overlapped write buffer (release consistency,
//! never blocking), synchronization waits are taken from the trace,
//! and inter-context synchronization is not re-simulated — each
//! context is an independent stream, as in the multiple-context
//! studies the paper cites.

use crate::model::{ExecutionResult, ProcessorModel};
use lookahead_isa::Program;
#[cfg(feature = "obs")]
use lookahead_obs::{self as obs, EventKind};
use lookahead_trace::{Trace, TraceOp};

/// The blocked-multithreading processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contexts {
    /// Cycles lost on every context switch (the paper's cited designs
    /// range from ~1 to ~16; APRIL-like default of 10).
    pub switch_overhead: u32,
}

impl Default for Contexts {
    fn default() -> Contexts {
        Contexts {
            switch_overhead: 10,
        }
    }
}

/// What a context is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxState {
    Ready,
    /// Blocked until the cycle, on a read (`true`) or sync (`false`).
    Blocked {
        until: u64,
        read: bool,
    },
    Done,
}

#[derive(Debug)]
struct Ctx<'a> {
    trace: &'a Trace,
    cursor: usize,
    state: CtxState,
}

impl Contexts {
    /// Runs `traces` (one per hardware context) to completion on one
    /// pipeline and returns the combined cycle accounting: `busy` is
    /// the total instructions (plus switch overhead, reported
    /// separately in the stats), `read`/`sync` are cycles with *every*
    /// context blocked, attributed to the event that unblocks first.
    pub fn run_traces(&self, traces: &[&Trace]) -> ExecutionResult {
        let mut result = ExecutionResult::default();
        if traces.is_empty() {
            return result;
        }
        let mut ctxs: Vec<Ctx> = traces
            .iter()
            .map(|t| Ctx {
                trace: t,
                cursor: 0,
                state: if t.is_empty() {
                    CtxState::Done
                } else {
                    CtxState::Ready
                },
            })
            .collect();
        let mut now: u64 = 0;
        let mut active = 0usize;
        loop {
            // Wake any contexts whose event completed.
            for c in ctxs.iter_mut() {
                if let CtxState::Blocked { until, .. } = c.state {
                    if until <= now {
                        c.state = if c.cursor >= c.trace.len() {
                            CtxState::Done
                        } else {
                            CtxState::Ready
                        };
                    }
                }
            }
            if ctxs.iter().all(|c| c.state == CtxState::Done) {
                break;
            }
            // Pick the active context if ready, else round-robin to
            // the next ready one (paying the switch overhead).
            if ctxs[active].state != CtxState::Ready {
                let next = (0..ctxs.len())
                    .map(|i| (active + 1 + i) % ctxs.len())
                    .find(|&i| ctxs[i].state == CtxState::Ready);
                match next {
                    Some(i) => {
                        result.stats.context_switches += 1;
                        result.stats.switch_overhead_cycles += self.switch_overhead as u64;
                        result.breakdown.busy += self.switch_overhead as u64;
                        #[cfg(feature = "obs")]
                        {
                            let overhead = self.switch_overhead as u64;
                            obs::with(|rec| {
                                rec.event(now, EventKind::ContextSwitch { to: i as u32 });
                                rec.metrics.inc("core.contexts.switches", 1);
                                // Switch overhead is charged to busy
                                // time, matching the breakdown.
                                rec.busy_span(overhead);
                            });
                        }
                        now += self.switch_overhead as u64;
                        active = i;
                        continue;
                    }
                    None => {
                        // Everyone is blocked: advance to the first
                        // wake-up, charging the stall to its class.
                        let (until, read) = ctxs
                            .iter()
                            .filter_map(|c| match c.state {
                                CtxState::Blocked { until, read } => Some((until, read)),
                                _ => None,
                            })
                            .min()
                            .expect("not all done, none ready");
                        let stall = until - now;
                        if read {
                            result.breakdown.read += stall;
                        } else {
                            result.breakdown.sync += stall;
                        }
                        #[cfg(feature = "obs")]
                        {
                            // Blame the instruction that blocked the
                            // context waking first (cursor is already
                            // past it).
                            let pc = ctxs
                                .iter()
                                .filter(|c| {
                                    matches!(c.state, CtxState::Blocked { until: u, read: r }
                                        if u == until && r == read)
                                })
                                .find_map(|c| {
                                    c.trace
                                        .entries()
                                        .get(c.cursor.wrapping_sub(1))
                                        .map(|e| e.pc)
                                })
                                .unwrap_or(0);
                            let (class, cause) = if read {
                                (obs::StallClass::Read, obs::StallCause::ReadMiss)
                            } else {
                                (obs::StallClass::Sync, obs::StallCause::Acquire)
                            };
                            obs::with(|rec| rec.stall_span(now, stall, pc, class, cause));
                        }
                        now = until;
                        continue;
                    }
                }
            }
            // Execute one instruction on the active context.
            let c = &mut ctxs[active];
            let entry = c.trace.entries()[c.cursor];
            c.cursor += 1;
            result.stats.instructions += 1;
            result.breakdown.busy += 1;
            #[cfg(feature = "obs")]
            obs::with(|rec| rec.busy_cycle());
            now += 1;
            match entry.op {
                TraceOp::Compute | TraceOp::Jump { .. } => {}
                TraceOp::Branch { .. } => result.stats.branches += 1,
                TraceOp::Store(_) => {
                    // Overlapped write buffer: never blocks.
                }
                TraceOp::Load(m) => {
                    if m.miss {
                        c.state = CtxState::Blocked {
                            until: now + (m.latency - 1) as u64,
                            read: true,
                        };
                    }
                }
                TraceOp::Sync(s) => {
                    let lat = s.wait as u64 + s.access as u64;
                    if s.kind.is_acquire() && lat > 1 {
                        c.state = CtxState::Blocked {
                            until: now + lat - 1,
                            read: false,
                        };
                    }
                }
            }
            if c.cursor >= c.trace.len() && c.state == CtxState::Ready {
                c.state = CtxState::Done;
            }
        }
        result
    }
}

impl ProcessorModel for Contexts {
    fn name(&self) -> String {
        format!("MC(ov={})", self.switch_overhead)
    }

    /// A single trace degenerates to one context: a blocking in-order
    /// processor with an overlapped write buffer.
    fn run(&self, _program: &Program, trace: &Trace) -> ExecutionResult {
        self.run_traces(&[trace])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_trace::{MemAccess, TraceEntry};

    fn missy_trace(n: usize, gap: usize) -> Trace {
        let mut entries = Vec::new();
        let mut pc = 0u32;
        for i in 0..n {
            entries.push(TraceEntry {
                pc,
                op: TraceOp::Load(MemAccess::miss(i as u64 * 64, 50)),
            });
            pc += 1;
            for _ in 0..gap {
                entries.push(TraceEntry::compute(pc));
                pc += 1;
            }
        }
        Trace::from_entries(entries)
    }

    #[test]
    fn single_context_blocks_on_every_miss() {
        let t = missy_trace(4, 3);
        let r = Contexts::default().run_traces(&[&t]);
        assert_eq!(r.stats.instructions, 16);
        assert_eq!(r.stats.context_switches, 0);
        assert_eq!(r.breakdown.read, 4 * 49);
    }

    #[test]
    fn two_contexts_overlap_each_others_misses() {
        let (a, b) = (missy_trace(6, 3), missy_trace(6, 3));
        let single: u64 = Contexts::default().run_traces(&[&a]).cycles()
            + Contexts::default().run_traces(&[&b]).cycles();
        let together = Contexts::default().run_traces(&[&a, &b]);
        assert!(
            together.cycles() < single * 7 / 10,
            "two contexts {} vs back-to-back {}",
            together.cycles(),
            single
        );
        assert!(together.stats.context_switches > 4);
        assert!(together.breakdown.read < single - together.breakdown.busy);
    }

    #[test]
    fn more_contexts_hide_more_until_saturation() {
        let ts: Vec<Trace> = (0..8).map(|_| missy_trace(8, 4)).collect();
        let cycles = |k: usize| {
            let refs: Vec<&Trace> = ts.iter().take(k).collect();
            let r = Contexts::default().run_traces(&refs);
            // Per-context cost for comparability.
            r.cycles() as f64 / k as f64
        };
        let (c1, c2, c4) = (cycles(1), cycles(2), cycles(4));
        assert!(c2 < c1, "2 contexts/thread {c2} vs 1 {c1}");
        assert!(c4 <= c2 * 1.05, "4 contexts {c4} vs 2 {c2}");
    }

    #[test]
    fn switch_overhead_eats_the_gains() {
        let (a, b) = (missy_trace(10, 0), missy_trace(10, 0));
        let cheap = Contexts { switch_overhead: 1 }.run_traces(&[&a, &b]);
        let dear = Contexts {
            switch_overhead: 40,
        }
        .run_traces(&[&a, &b]);
        assert!(dear.cycles() > cheap.cycles());
        assert!(dear.stats.switch_overhead_cycles > cheap.stats.switch_overhead_cycles);
    }

    #[test]
    fn acquire_waits_block_the_context() {
        use lookahead_isa::SyncKind;
        use lookahead_trace::SyncAccess;
        let t = Trace::from_entries(vec![TraceEntry {
            pc: 0,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Lock,
                addr: 0,
                wait: 100,
                access: 50,
            }),
        }]);
        let r = Contexts::default().run_traces(&[&t]);
        assert_eq!(r.breakdown.sync, 149);
        assert_eq!(r.breakdown.busy, 1);
    }

    #[test]
    fn empty_input_is_empty_result() {
        let r = Contexts::default().run_traces(&[]);
        assert_eq!(r.cycles(), 0);
        let t = Trace::new();
        let r = Contexts::default().run_traces(&[&t]);
        assert_eq!(r.cycles(), 0);
    }
}
