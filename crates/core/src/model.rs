//! The processor-model interface and shared result types.

use lookahead_trace::Breakdown;
use std::fmt;

/// Additional statistics a model may report beyond the breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed (equals the trace length).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches (0 for models without prediction).
    pub mispredictions: u64,
    /// Cycles with an empty window and no outstanding memory operation
    /// (pipeline refill after mispredictions); folded into `busy` in
    /// the breakdown.
    pub fetch_stall_cycles: u64,
    /// Cycles stalled because the write buffer was full.
    pub write_buffer_full_stalls: u64,
    /// For the dynamically scheduled model: per read *miss*, the delay
    /// in cycles from entering the window (decode) to issuing to
    /// memory — the paper's §4.1.3 dependence-chain diagnostic.
    pub read_miss_issue_delays: Vec<u32>,
    /// Peak simultaneously outstanding cache misses.
    pub peak_outstanding_misses: usize,
    /// For the multiple-contexts model: context switches taken.
    pub context_switches: u64,
    /// For the multiple-contexts model: cycles spent switching.
    pub switch_overhead_cycles: u64,
}

impl RunStats {
    /// Fraction of read misses delayed more than `threshold` cycles
    /// between decode and memory issue (the paper quotes delays over
    /// 40–50 cycles as evidence of dependence chains).
    pub fn read_miss_delay_fraction_over(&self, threshold: u32) -> f64 {
        if self.read_miss_issue_delays.is_empty() {
            return 0.0;
        }
        let over = self
            .read_miss_issue_delays
            .iter()
            .filter(|&&d| d > threshold)
            .count();
        over as f64 / self.read_miss_issue_delays.len() as f64
    }

    /// Branch prediction accuracy in percent, if any branches ran.
    pub fn prediction_percent(&self) -> Option<f64> {
        if self.branches == 0 {
            None
        } else {
            Some((self.branches - self.mispredictions) as f64 * 100.0 / self.branches as f64)
        }
    }
}

/// The outcome of re-timing one trace under one processor model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionResult {
    /// Cycle accounting (the stacked bar of Figures 3 and 4).
    pub breakdown: Breakdown,
    /// Model-specific statistics.
    pub stats: RunStats,
}

impl ExecutionResult {
    /// Total execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.breakdown.total()
    }
}

impl fmt::Display for ExecutionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.breakdown)
    }
}

/// A processor timing model: re-times an annotated trace.
///
/// The `program` supplies static instruction properties (operand
/// registers, opcodes); the `trace` supplies dynamic facts (addresses,
/// latencies, branch outcomes). Models are pure: `run` may be called
/// repeatedly and from multiple threads.
pub trait ProcessorModel {
    /// A short display name ("BASE", "SSBR/SC", "DS-64/RC", ...).
    fn name(&self) -> String;

    /// Re-times `trace` and returns the cycle accounting.
    fn run(
        &self,
        program: &lookahead_isa::Program,
        trace: &lookahead_trace::Trace,
    ) -> ExecutionResult;

    /// Re-times a *streamed* trace pulled chunk-by-chunk from
    /// `source`, producing a result identical to materializing the
    /// source and calling [`run`](ProcessorModel::run) — but with
    /// memory bounded by the model's live window instead of the trace
    /// length.
    ///
    /// The default implementation materializes; the BASE, SSBR/SS and
    /// DS engines override it with genuinely streaming passes.
    ///
    /// # Errors
    ///
    /// Propagates the source's first I/O or decode error. The run's
    /// partial result is discarded — a truncated trace must never be
    /// mistaken for a short one.
    fn run_source(
        &self,
        program: &lookahead_isa::Program,
        source: &mut dyn lookahead_trace::TraceSource,
    ) -> Result<ExecutionResult, lookahead_trace::StreamError> {
        let trace = lookahead_trace::collect_source(source)?;
        Ok(self.run(program, &trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_fraction() {
        let stats = RunStats {
            read_miss_issue_delays: vec![1, 10, 45, 60, 100],
            ..RunStats::default()
        };
        assert_eq!(stats.read_miss_delay_fraction_over(40), 3.0 / 5.0);
        assert_eq!(stats.read_miss_delay_fraction_over(1000), 0.0);
        assert_eq!(RunStats::default().read_miss_delay_fraction_over(40), 0.0);
    }

    #[test]
    fn prediction_percent() {
        let stats = RunStats {
            branches: 200,
            mispredictions: 20,
            ..RunStats::default()
        };
        assert_eq!(stats.prediction_percent(), Some(90.0));
        assert_eq!(RunStats::default().prediction_percent(), None);
    }
}
