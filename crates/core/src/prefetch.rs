//! Hardware stride prefetching — the Baer–Chen scheme discussed in the
//! paper's related work (§6).
//!
//! The paper conjectures that an "effective on-chip preloading scheme"
//! driven by a reference prediction table "may achieve reasonable
//! gains for applications with regular access behavior (e.g., LU and
//! OCEAN)" but "would probably fail to hide latency for applications
//! that do not have such regular characteristics (e.g., MP3D, PTHOR,
//! LOCUS)". This module lets us test that conjecture.
//!
//! The model is trace-level: a [`StridePrefetcher`] replays the
//! dynamic load stream through a reference prediction table (tagged by
//! load PC, tracking last address, stride, and a two-state confidence)
//! and rewrites the trace, converting a miss into a hit when the
//! prefetcher would have fetched the line in time. "In time" is
//! approximated by instruction distance: a prediction made fewer than
//! `lead_time` instructions before the access has not finished
//! fetching and only partially covers the latency. The rewritten trace
//! can then be re-timed under any processor model.

use crate::model::ProcessorModel;
use lookahead_trace::{MemAccess, Trace, TraceOp};
use std::collections::HashMap;

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Reference prediction table entries (per-PC); `0` disables.
    pub table_entries: usize,
    /// Instructions of lead time needed to fully cover a miss
    /// (≈ the miss penalty on a 1-IPC machine).
    pub lead_time: u32,
    /// Cache line size for next-line coverage.
    pub line_bytes: u64,
}

impl Default for PrefetchConfig {
    /// 512-entry table, 50-instruction lead time, 16-byte lines.
    fn default() -> PrefetchConfig {
        PrefetchConfig {
            table_entries: 512,
            lead_time: 50,
            line_bytes: 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RptEntry {
    last_addr: u64,
    stride: i64,
    /// Consecutive accesses that confirmed the current stride.
    stable_count: u32,
    /// Instruction index of the last access (for inter-access gap).
    last_idx: u64,
    /// Line predicted one stride ahead by the last access.
    predicted_line: u64,
}

/// Statistics from a prefetching pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Loads examined.
    pub loads: u64,
    /// Read misses in the original trace.
    pub misses: u64,
    /// Misses fully covered (converted to hits).
    pub covered: u64,
    /// Misses partially covered (latency reduced but not to a hit).
    pub partial: u64,
}

impl PrefetchStats {
    /// Fraction of read misses fully covered.
    pub fn coverage(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.covered as f64 / self.misses as f64
        }
    }
}

/// A Baer–Chen-style reference prediction table.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: PrefetchConfig,
    table: HashMap<u32, RptEntry>,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    pub fn new(config: PrefetchConfig) -> StridePrefetcher {
        StridePrefetcher {
            config,
            table: HashMap::new(),
        }
    }

    /// Rewrites `trace`, shortening the latency of read misses the
    /// prefetcher covers. Returns the new trace and coverage stats.
    pub fn cover(&mut self, trace: &Trace) -> (Trace, PrefetchStats) {
        let mut stats = PrefetchStats::default();
        let cfg = self.config;
        let line = |addr: u64| addr & !(cfg.line_bytes - 1);
        let mut out = Vec::with_capacity(trace.len());
        for (idx, e) in trace.iter().enumerate() {
            let idx = idx as u64;
            let mut entry = *e;
            if let TraceOp::Load(m) = e.op {
                stats.loads += 1;
                if m.miss {
                    stats.misses += 1;
                }
                let rpt = self.table.get(&e.pc).copied();
                // Does the stream's prefetcher cover this access? The
                // lookahead PC runs `needed` accesses ahead, where
                // `needed` is how many inter-access gaps fit in the
                // fetch latency; once the stride has been stable that
                // long, steady-state accesses arrive as hits.
                if let Some(r) = rpt {
                    if m.miss && r.stride != 0 {
                        let gap = (idx - r.last_idx).max(1) as u32;
                        let needed = cfg.lead_time / gap + 1;
                        let predicted = m.addr as i64 == r.last_addr as i64 + r.stride;
                        if predicted && r.stable_count >= needed {
                            stats.covered += 1;
                            entry.op = TraceOp::Load(MemAccess::hit(m.addr));
                        } else if r.predicted_line == line(m.addr) {
                            // Predicted but the fetch is still in
                            // flight: the gap's worth of latency is
                            // already covered.
                            stats.partial += 1;
                            entry.op = TraceOp::Load(MemAccess {
                                addr: m.addr,
                                miss: true,
                                latency: (m.latency - 1)
                                    .saturating_sub(gap * (m.latency - 1) / cfg.lead_time)
                                    .max(1)
                                    + 1,
                            });
                        }
                    }
                }
                // Update the table and issue the next prediction.
                let next = match rpt {
                    Some(r) => {
                        let stride = m.addr as i64 - r.last_addr as i64;
                        let stable = stride == r.stride && stride != 0;
                        let stable_count = if stable { r.stable_count + 1 } else { 0 };
                        let predicted_line = if stable {
                            line((m.addr as i64 + stride) as u64)
                        } else {
                            // Not confident: predict nothing (keep an
                            // impossible line).
                            u64::MAX
                        };
                        RptEntry {
                            last_addr: m.addr,
                            stride,
                            stable_count,
                            last_idx: idx,
                            predicted_line,
                        }
                    }
                    None => RptEntry {
                        last_addr: m.addr,
                        stride: 0,
                        stable_count: 0,
                        last_idx: idx,
                        predicted_line: u64::MAX,
                    },
                };
                if self.table.len() >= cfg.table_entries && !self.table.contains_key(&e.pc) {
                    // Table full: crude random-ish replacement — drop
                    // the entry with the smallest PC (deterministic).
                    if let Some(&victim) = self.table.keys().min() {
                        self.table.remove(&victim);
                    }
                }
                self.table.insert(e.pc, next);
            }
            out.push(entry);
        }
        #[cfg(feature = "obs")]
        lookahead_obs::with(|r| {
            r.metrics.inc("core.prefetch.loads", stats.loads);
            r.metrics.inc("core.prefetch.misses", stats.misses);
            r.metrics.inc("core.prefetch.covered", stats.covered);
            r.metrics.inc("core.prefetch.partial", stats.partial);
        });
        (Trace::from_entries(out), stats)
    }
}

/// A processor model wrapper that applies stride prefetching to the
/// trace before running the inner model.
#[derive(Debug, Clone, Copy)]
pub struct WithPrefetch<M> {
    /// The wrapped model.
    pub inner: M,
    /// Prefetcher configuration.
    pub config: PrefetchConfig,
}

impl<M: ProcessorModel> ProcessorModel for WithPrefetch<M> {
    fn name(&self) -> String {
        format!("{}+rpt", self.inner.name())
    }

    fn run(
        &self,
        program: &lookahead_isa::Program,
        trace: &Trace,
    ) -> crate::model::ExecutionResult {
        let (covered, _) = StridePrefetcher::new(self.config).cover(trace);
        self.inner.run(program, &covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use crate::model::ProcessorModel;
    use lookahead_isa::Program;
    use lookahead_trace::TraceEntry;

    fn strided_trace(n: usize, stride: u64, pc: u32) -> Trace {
        (0..n)
            .map(|i| TraceEntry {
                pc,
                op: TraceOp::Load(MemAccess::miss(0x1000 + i as u64 * stride, 50)),
            })
            .collect()
    }

    #[test]
    fn regular_stride_is_covered_after_warmup() {
        // A single load PC streaming with a fixed stride: after two
        // accesses the stride is stable; with interleaved filler
        // giving lead time, later misses are covered.
        let mut entries = Vec::new();
        for i in 0..20u64 {
            entries.push(TraceEntry {
                pc: 0,
                op: TraceOp::Load(MemAccess::miss(0x1000 + i * 64, 50)),
            });
            for f in 0..60u32 {
                entries.push(TraceEntry::compute(1 + f));
            }
        }
        let trace = Trace::from_entries(entries);
        let (covered, stats) = StridePrefetcher::new(PrefetchConfig::default()).cover(&trace);
        assert_eq!(stats.misses, 20);
        assert!(
            stats.covered >= 15,
            "regular stream should be covered: {stats:?}"
        );
        let misses_left = covered
            .iter()
            .filter_map(|e| e.mem_access())
            .filter(|m| m.miss)
            .count();
        assert_eq!(misses_left as u64, stats.misses - stats.covered);
    }

    #[test]
    fn irregular_stream_is_not_covered() {
        // Pseudo-random addresses: no stable stride, no coverage.
        let entries: Vec<_> = (0..50u64)
            .map(|i| TraceEntry {
                pc: 0,
                op: TraceOp::Load(MemAccess::miss((i * 7919 + 13) % 4096 * 16, 50)),
            })
            .collect();
        let trace = Trace::from_entries(entries);
        let (_, stats) = StridePrefetcher::new(PrefetchConfig::default()).cover(&trace);
        assert_eq!(stats.covered, 0, "{stats:?}");
    }

    #[test]
    fn lead_time_governs_coverage() {
        // With ~11 instructions between accesses the lookahead needs 5
        // stable strides: the stream starts partial and reaches full
        // coverage in steady state.
        let mut entries = Vec::new();
        for i in 0..20u64 {
            entries.push(TraceEntry {
                pc: 0,
                op: TraceOp::Load(MemAccess::miss(0x1000 + i * 64, 50)),
            });
            for f in 0..10u32 {
                entries.push(TraceEntry::compute(1 + f));
            }
        }
        let trace = Trace::from_entries(entries);
        let (covered, stats) = StridePrefetcher::new(PrefetchConfig::default()).cover(&trace);
        assert!(stats.partial >= 2, "{stats:?}");
        assert!(stats.covered >= 10, "{stats:?}");
        let total_before = Base.run(&Program::default(), &trace).cycles();
        let total_after = Base.run(&Program::default(), &covered).cycles();
        assert!(total_after < total_before);
        // Back-to-back misses (gap 1, lookahead needs 51 accesses in a
        // 10-access stream): never fully covered, marginal gain.
        let tight = strided_trace(10, 64, 0);
        let (covered_tight, st) = StridePrefetcher::new(PrefetchConfig::default()).cover(&tight);
        assert_eq!(st.covered, 0);
        let before = Base.run(&Program::default(), &tight).cycles();
        let after = Base.run(&Program::default(), &covered_tight).cycles();
        assert!(after + 30 > before, "no lead time, no meaningful gain");
    }

    #[test]
    fn wrapper_composes_with_models() {
        let trace = strided_trace(5, 64, 3);
        let w = WithPrefetch {
            inner: Base,
            config: PrefetchConfig::default(),
        };
        assert_eq!(w.name(), "BASE+rpt");
        let r = w.run(&Program::default(), &trace);
        assert!(r.cycles() <= Base.run(&Program::default(), &trace).cycles());
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut entries = Vec::new();
        for pc in 0..100u32 {
            entries.push(TraceEntry {
                pc,
                op: TraceOp::Load(MemAccess::miss(pc as u64 * 8, 50)),
            });
        }
        let trace = Trace::from_entries(entries);
        let mut p = StridePrefetcher::new(PrefetchConfig {
            table_entries: 8,
            ..PrefetchConfig::default()
        });
        let _ = p.cover(&trace);
        assert!(p.table.len() <= 8);
    }
}
