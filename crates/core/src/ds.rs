//! The dynamically scheduled processor (Johnson-style) — §3.1.
//!
//! The model follows the paper's description of the architecture
//! derived from Johnson's design:
//!
//! * decoded instructions enter a **reorder buffer** (the *lookahead
//!   window*) of 16–256 entries, at most `issue_width` per cycle
//!   (1 in the main experiments, 4 in §4.2);
//! * **register renaming** through the reorder buffer removes WAR/WAW
//!   hazards — an instruction waits only for its true producers;
//! * all functional units are single-cycle and fully available (the
//!   paper assumes 1-cycle latency everywhere but the load/store
//!   unit), so an instruction completes one cycle after its operands
//!   are ready; only the **single cache port** (one load/store issued
//!   per cycle) and the window itself are structural hazards;
//! * a **branch target buffer** predicts branches at decode;
//!   speculative execution proceeds past predicted branches, and a
//!   misprediction stalls fetch until the branch resolves (wrong-path
//!   instructions are not in the trace; the modelled penalty is the
//!   fetch gap, the standard trace-driven treatment);
//! * **FIFO retirement** (precise interrupts): instructions leave the
//!   window in program order, so a long-latency load at the head holds
//!   window slots even when younger instructions have executed —
//!   exactly the conservatism the paper's §5 discusses;
//! * a store retires from the window "as soon as its address
//!   translation completes and the consistency constraints allow its
//!   issue" (paper footnote 2) into a 16-entry **store buffer** that
//!   issues to memory through the shared port; loads check the buffer
//!   and forward matching values;
//! * the data cache is **lockup-free**: misses occupy MSHRs
//!   (unbounded by default) and overlap; misses to the same line
//!   merge.
//!
//! Consistency models gate when each memory operation may issue, via
//! the [`ConsistencyModel::must_wait_for`] matrix over all earlier
//! not-yet-performed operations (window *and* store buffer).
//!
//! The §4.1.3 ablations are `perfect_branch_prediction` (never
//! mispredict) and `ignore_data_dependences` (operands always ready;
//! consistency constraints still respected, per the paper's
//! footnote 3).

use crate::btb::{Btb, BtbConfig};
use crate::consistency::{ConsistencyModel, MemOpKind};
use crate::model::{ExecutionResult, ProcessorModel};
use lookahead_isa::{Program, SyncKind, WORD_BYTES};
use lookahead_memsys::MshrFile;
#[cfg(feature = "obs")]
use lookahead_obs::{self as obs, EventKind};
use lookahead_trace::{StreamError, Trace, TraceCursor, TraceOp, TraceSource};
use std::collections::VecDeque;

/// Cache line size used for MSHR merging (the paper's 16 bytes).
const LINE_BYTES: u64 = 16;

/// Configuration of the dynamically scheduled processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsConfig {
    /// Reorder-buffer (lookahead window) size: 16–256 in the paper.
    pub window_size: usize,
    /// Instructions decoded and retired per cycle (1, or 4 for §4.2).
    pub issue_width: usize,
    /// Consistency model enforced by the load/store unit.
    pub model: ConsistencyModel,
    /// §4.1.3 ablation: branches never mispredict.
    pub perfect_branch_prediction: bool,
    /// §4.1.3 ablation: register and memory data dependences are
    /// ignored (consistency constraints still apply).
    pub ignore_data_dependences: bool,
    /// Store buffer depth (paper: 16).
    pub store_buffer_depth: usize,
    /// Maximum outstanding missed lines (`None` = unbounded, the
    /// paper's aggressive memory system).
    pub mshr_limit: Option<usize>,
    /// Branch target buffer geometry.
    pub btb: BtbConfig,
    /// §6 / reference \[8\], technique 1: **non-binding prefetch** for
    /// loads delayed by consistency constraints. The cache fill starts
    /// when the address is known; by the time the constraints allow
    /// the binding access, the line is (partially) fetched, shrinking
    /// the observed latency. Boosts strict models (SC/PC) without
    /// violating them.
    pub nonbinding_prefetch: bool,
    /// §6 / reference \[8\], technique 2: **speculative load execution**
    /// — loads issue and bind their values regardless of consistency
    /// constraints, with hardware rollback on a detected violation. In
    /// trace-driven re-timing no violation can manifest, so this
    /// models the technique's best case (the paper's own caveat).
    pub speculative_loads: bool,
}

impl DsConfig {
    /// The paper's main configuration under the given model: 64-entry
    /// window, single issue, real BTB, dependences honored.
    pub fn with_model(model: ConsistencyModel) -> DsConfig {
        DsConfig {
            window_size: 64,
            issue_width: 1,
            model,
            perfect_branch_prediction: false,
            ignore_data_dependences: false,
            store_buffer_depth: 16,
            mshr_limit: None,
            btb: BtbConfig::PAPER,
            nonbinding_prefetch: false,
            speculative_loads: false,
        }
    }

    /// Shorthand for [`DsConfig::with_model`]`(ConsistencyModel::Rc)`.
    pub fn rc() -> DsConfig {
        DsConfig::with_model(ConsistencyModel::Rc)
    }

    /// Returns the configuration with a different window size.
    pub fn window(self, window_size: usize) -> DsConfig {
        DsConfig {
            window_size,
            ..self
        }
    }
}

/// The dynamically scheduled processor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ds {
    config: DsConfig,
}

impl Ds {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero window size, issue
    /// width, or store buffer depth).
    pub fn new(config: DsConfig) -> Ds {
        assert!(config.window_size > 0, "window must hold an instruction");
        assert!(config.issue_width > 0, "issue width must be positive");
        assert!(config.store_buffer_depth > 0, "store buffer too small");
        Ds { config }
    }

    /// The configuration.
    pub fn config(&self) -> DsConfig {
        self.config
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EKind {
    Alu,
    Branch,
    /// Any memory or synchronization operation; details in `MemOp`.
    Mem,
}

#[derive(Debug)]
struct Entry {
    trace_idx: usize,
    kind: EKind,
    /// Producers not yet resolved.
    unresolved: u32,
    /// Max over decode time and known producer completion times.
    base_ready: u64,
    /// Operand-ready time, once all producers are known.
    ready: Option<u64>,
    /// Completion time (ALU/branch: ready+1; load-like: set at memory
    /// issue; stores: unused, they retire into the buffer).
    completion: Option<u64>,
    /// Entries waiting on this one's completion.
    waiters: Vec<u64>,
    /// Index into the memop registry, for memory operations.
    mem: Option<usize>,
    /// Whether fetch is stalled waiting for this branch to resolve.
    fetch_blocker: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MState {
    /// Operands not yet ready.
    Waiting,
    /// Operands ready (at the contained time); not yet issued.
    Ready(u64),
    /// Retired into the store buffer (stores/releases only).
    InBuffer,
    /// Issued to memory; performs at the contained time.
    Issued(u64),
}

#[derive(Debug)]
struct MemOp {
    kind: MemOpKind,
    word_addr: u64,
    /// Memory latency issued to the cache (for acquires this is the
    /// *access* component only; the wait component is charged at the
    /// window head, where it cannot be hidden).
    latency: u32,
    /// Unhidable wait component of an acquire/barrier (contention,
    /// load imbalance), charged while the operation sits at the head
    /// of the window.
    wait: u32,
    is_miss: bool,
    decode_time: u64,
    entry_id: u64,
    state: MState,
    /// Trace pc, kept past retirement for event labelling.
    #[cfg(feature = "obs")]
    pc: u32,
    /// First cycle the operation was observed at the window head.
    head_since: Option<u64>,
    /// For acquires/barriers: the cycle the operation retired, which
    /// is when it counts as performed for ordering purposes (the lock
    /// is not held before the wait has elapsed).
    acquire_done: Option<u64>,
}

impl MemOp {
    fn performed_by(&self, now: u64) -> bool {
        if self.kind.acquires() {
            self.acquire_done.is_some_and(|t| t <= now)
        } else {
            matches!(self.state, MState::Issued(done) if done <= now)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallClass {
    Read,
    Write,
    Sync,
    Fetch,
}

struct Engine<'a> {
    cfg: DsConfig,
    program: &'a Program,
    cursor: TraceCursor<'a>,
    now: u64,
    next_decode: usize,
    /// Whether `next_decode` is past the end of the trace, refreshed
    /// whenever `next_decode` moves (the check pulls chunks on the
    /// streamed path, so it cannot live in `&self` accessors).
    decode_exhausted: bool,
    /// Ids are dense and monotonic: the live window is exactly the id
    /// range `[head_id, next_id)`, stored in a preallocated slab ring
    /// indexed by `id & slab_mask` (capacity = window size rounded up
    /// to a power of two, so live ids can never collide).
    head_id: u64,
    next_id: u64,
    slab: Vec<Option<Entry>>,
    slab_mask: u64,
    /// All memory operations in program order; `mem_head` is the first
    /// index that may still be unperformed.
    memops: Vec<MemOp>,
    mem_head: usize,
    /// Window memops awaiting issue (loads/acquires/barriers), in
    /// program order.
    pending_loads: VecDeque<usize>,
    /// Store buffer: memop indices in FIFO order.
    store_buffer: VecDeque<usize>,
    /// Register state: ready time or producing entry.
    reg_time: [u64; 64],
    reg_producer: [Option<u64>; 64],
    btb: Btb,
    mshrs: MshrFile,
    fetch_resume: u64,
    fetch_blocked: bool,
    /// Event-driven mode: skip straight over dead cycles. `false`
    /// retains the original cycle-by-cycle reference stepper that the
    /// equivalence suite and `lookahead bench` compare against.
    skip: bool,
    result: ExecutionResult,
}

impl<'a> Engine<'a> {
    fn new(cfg: DsConfig, program: &'a Program, trace: &'a Trace, skip: bool) -> Engine<'a> {
        Engine::with_cursor(cfg, program, TraceCursor::slice(trace), skip)
    }

    fn with_cursor(
        cfg: DsConfig,
        program: &'a Program,
        mut cursor: TraceCursor<'a>,
        skip: bool,
    ) -> Engine<'a> {
        let slab_cap = cfg.window_size.next_power_of_two();
        let decode_exhausted = cursor.past_end(0);
        let mem_hint = cursor.mem_entries_hint();
        let pending_cap = cfg.window_size.min(cursor.loaded_len());
        Engine {
            cfg,
            program,
            cursor,
            now: 0,
            next_decode: 0,
            decode_exhausted,
            head_id: 0,
            next_id: 0,
            slab: std::iter::repeat_with(|| None).take(slab_cap).collect(),
            slab_mask: (slab_cap - 1) as u64,
            memops: Vec::with_capacity(mem_hint),
            mem_head: 0,
            pending_loads: VecDeque::with_capacity(pending_cap),
            store_buffer: VecDeque::with_capacity(cfg.store_buffer_depth),
            reg_time: [0; 64],
            reg_producer: [None; 64],
            btb: Btb::new(cfg.btb),
            mshrs: MshrFile::new(cfg.mshr_limit),
            fetch_resume: 0,
            fetch_blocked: false,
            skip,
            result: ExecutionResult::default(),
        }
    }

    fn window_len(&self) -> usize {
        (self.next_id - self.head_id) as usize
    }

    /// The live entry with id `id`. Ids outside `[head_id, next_id)`
    /// are a logic error (the slot may hold a different live entry).
    fn entry(&self, id: u64) -> &Entry {
        debug_assert!(self.head_id <= id && id < self.next_id, "dead id {id}");
        self.slab[(id & self.slab_mask) as usize]
            .as_ref()
            .expect("live entry")
    }

    fn entry_mut(&mut self, id: u64) -> &mut Entry {
        debug_assert!(self.head_id <= id && id < self.next_id, "dead id {id}");
        self.slab[(id & self.slab_mask) as usize]
            .as_mut()
            .expect("live entry")
    }

    /// A hard progress bound: no trace entry can legitimately take
    /// longer than its worst-case serial latency, so a run exceeding
    /// this is a model deadlock (usually a mismatched program/trace
    /// pair) and must fail loudly. On the streamed path the bound
    /// grows with the entries pulled so far, which always covers
    /// everything decoded.
    fn progress_bound(&self) -> u64 {
        100_000 + (self.cursor.loaded_len() as u64) * (1 << 14)
    }

    fn run(mut self) -> Result<ExecutionResult, StreamError> {
        loop {
            let bound = self.progress_bound();
            let done = self.decode_exhausted
                && self.head_id == self.next_id
                && self.store_buffer_occupancy() == 0;
            if done {
                break;
            }
            self.mshrs.retire_completed(self.now);
            let retired = self.retire_phase();
            let issued = self.issue_phase();
            let decoded = self.fetch_phase();
            if retired > 0 {
                self.result.breakdown.busy += 1;
                #[cfg(feature = "obs")]
                {
                    let occupancy = self.window_len() as u64;
                    obs::with(|r| {
                        r.metrics.observe("core.ds.rob_occupancy", occupancy);
                        r.busy_cycle();
                    });
                }
                self.now += 1;
            } else {
                // Nothing retired at `now`. If nothing issued or
                // decoded either, the architectural state is frozen:
                // every eligibility predicate in the model is a
                // monotone threshold on time, so nothing can happen
                // strictly before the earliest pending threshold.
                // Jump there in one step and charge the whole span to
                // the stall class at `now` (constant across the span,
                // since no threshold fires inside it). The span is
                // clamped to the progress bound so a skip can never
                // jump past it silently: a deadlocked machine lands
                // exactly on the bound and the assert below fires.
                let span = if self.skip && !issued && decoded == 0 {
                    self.next_event_time()
                        .unwrap_or(bound)
                        .clamp(self.now + 1, bound)
                        - self.now
                } else {
                    1
                };
                let class = self.stall_class();
                match class {
                    StallClass::Read => self.result.breakdown.read += span,
                    StallClass::Write => self.result.breakdown.write += span,
                    StallClass::Sync => self.result.breakdown.sync += span,
                    StallClass::Fetch => {
                        self.result.breakdown.busy += span;
                        self.result.stats.fetch_stall_cycles += span;
                    }
                }
                #[cfg(feature = "obs")]
                {
                    let occupancy = self.window_len() as u64;
                    let (pc, cause) = self.stall_blame(class);
                    let now = self.now;
                    obs::with(|r| {
                        r.metrics
                            .observe_n("core.ds.rob_occupancy", occupancy, span);
                        r.stall_span(now, span, pc, obs_class(class), cause);
                    });
                }
                self.now += span;
            }
            assert!(
                self.now < self.progress_bound(),
                "no forward progress after {} cycles ({} trace entries decoded): \
                 the program and trace likely do not match",
                self.now,
                self.next_decode
            );
        }
        if let Some(e) = self.cursor.take_error() {
            // The source failed mid-run: the engine saw a truncated
            // trace, so the partial accounting is meaningless.
            return Err(e);
        }
        self.result.stats.peak_outstanding_misses = self.mshrs.peak();
        Ok(self.result)
    }

    /// The earliest future cycle at which the frozen machine state can
    /// change: a window-head completion or acquire-wait expiry, a
    /// pending operand-ready or memory-completion threshold, an MSHR
    /// retiring (freeing a slot for a structurally stalled request),
    /// or the fetch stage resuming after a resolved misprediction.
    /// `None` with work still outstanding is a model deadlock; the
    /// caller jumps to the progress bound so it fails loudly.
    fn next_event_time(&self) -> Option<u64> {
        let now = self.now;
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            }
        };
        if self.head_id < self.next_id {
            let e = self.entry(self.head_id);
            if let Some(c) = e.completion {
                consider(c);
            }
            if let Some(mi) = e.mem {
                let m = &self.memops[mi];
                if m.kind.acquires() {
                    // head_since was set by this cycle's retire phase.
                    if let Some(since) = m.head_since {
                        consider(since + m.wait as u64);
                    }
                }
            }
        }
        // Every unperformed memop sits at an index >= mem_head; its
        // pending thresholds are when its operands become ready and
        // when memory responds. (These cover store-buffer drains and
        // consistency-constraint expiry: both are "an earlier op
        // performs", which is that op's own Issued threshold.)
        for m in &self.memops[self.mem_head..] {
            match m.state {
                MState::Ready(t) => consider(t),
                MState::Issued(done) => consider(done),
                MState::Waiting | MState::InBuffer => {}
            }
        }
        if let Some(t) = self.mshrs.next_completion() {
            consider(t);
        }
        if !self.fetch_blocked && self.window_len() < self.cfg.window_size && !self.decode_exhausted
        {
            consider(self.fetch_resume);
        }
        next
    }

    // ---- retirement ----------------------------------------------------

    fn retire_phase(&mut self) -> usize {
        let mut retired = 0;
        while retired < self.cfg.issue_width {
            if self.head_id == self.next_id {
                break;
            }
            let head = self.head_id;
            let (kind, mem_idx, completion) = {
                let e = self.entry(head);
                (e.kind, e.mem, e.completion)
            };
            let can_retire = match kind {
                EKind::Alu | EKind::Branch => completion.is_some_and(|c| c <= self.now),
                EKind::Mem => {
                    let mi = mem_idx.expect("mem entry");
                    match self.memops[mi].kind {
                        MemOpKind::Write | MemOpKind::Release => self.store_can_move_to_buffer(mi),
                        MemOpKind::Acquire | MemOpKind::Barrier => {
                            // The wait component starts counting when
                            // the acquire reaches the head: imbalance
                            // and contention cannot be looked past.
                            let m = &mut self.memops[mi];
                            let since = *m.head_since.get_or_insert(self.now);
                            let wait_over = self.now >= since + m.wait as u64;
                            let m = &self.memops[mi];
                            let access_done = matches!(m.state, MState::Issued(d) if d <= self.now);
                            wait_over && access_done
                        }
                        MemOpKind::Read => completion.is_some_and(|c| c <= self.now),
                    }
                }
            };
            if !can_retire {
                break;
            }
            if let Some(mi) = mem_idx {
                match self.memops[mi].kind {
                    MemOpKind::Write | MemOpKind::Release => {
                        self.memops[mi].state = MState::InBuffer;
                        self.store_buffer.push_back(mi);
                    }
                    MemOpKind::Acquire | MemOpKind::Barrier => {
                        self.memops[mi].acquire_done = Some(self.now);
                        let entry_id = self.memops[mi].entry_id;
                        self.set_completion(entry_id, self.now);
                    }
                    MemOpKind::Read => {}
                }
            }
            #[cfg(feature = "obs")]
            {
                let pc = self.cursor.pc(self.entry(head).trace_idx);
                let now = self.now;
                obs::with(|r| {
                    r.event(now, EventKind::Retire { pc });
                    r.metrics.inc("core.ds.retired", 1);
                });
            }
            self.slab[(head & self.slab_mask) as usize]
                .take()
                .expect("head exists");
            self.head_id += 1;
            self.result.stats.instructions += 1;
            retired += 1;
        }
        if retired > 0 {
            // Entries older than the new window head can never be read
            // again (dataflow walks only live ids, whose trace indices
            // are monotone in id); let the cursor drop their chunks.
            let keep_from = if self.head_id < self.next_id {
                self.entry(self.head_id).trace_idx
            } else {
                self.next_decode
            };
            self.cursor.release_before(keep_from);
        }
        retired
    }

    /// Whether the store/release at `mi` (assumed at the window head)
    /// may retire into the store buffer now.
    fn store_can_move_to_buffer(&self, mi: usize) -> bool {
        let m = &self.memops[mi];
        let ready = match m.state {
            MState::Ready(t) => t <= self.now,
            _ => false,
        };
        ready
            && self.store_buffer_occupancy() < self.cfg.store_buffer_depth
            && self.consistency_eligible(mi)
    }

    fn store_buffer_occupancy(&self) -> usize {
        self.store_buffer
            .iter()
            .filter(|&&mi| !self.memops[mi].performed_by(self.now))
            .count()
    }

    // ---- memory issue ----------------------------------------------------

    /// Every earlier not-yet-performed memop the model orders before
    /// `mi` must have performed.
    fn consistency_eligible(&self, mi: usize) -> bool {
        let later = self.memops[mi].kind;
        for j in self.mem_head..mi {
            let e = &self.memops[j];
            if !e.performed_by(self.now) && self.cfg.model.must_wait_for(e.kind, later) {
                return false;
            }
        }
        true
    }

    /// For a load: the latest earlier unperformed store/release to the
    /// same word, if any.
    fn forwarding_source(&self, mi: usize) -> Option<usize> {
        let addr = self.memops[mi].word_addr;
        (self.mem_head..mi).rev().find(|&j| {
            let e = &self.memops[j];
            matches!(e.kind, MemOpKind::Write | MemOpKind::Release)
                && e.word_addr == addr
                && !e.performed_by(self.now)
        })
    }

    /// Issues at most one memory operation to the single cache port.
    /// Returns whether anything issued (if so, the cycle made progress
    /// and cannot be skipped past).
    fn issue_phase(&mut self) -> bool {
        self.advance_mem_head();
        // Window ops (loads/acquires/barriers) have priority over the
        // store buffer on the single cache port.
        let mut chosen: Option<(usize, u64)> = None;
        for &mi in &self.pending_loads {
            let m = &self.memops[mi];
            let MState::Ready(t) = m.state else { continue };
            if t > self.now {
                continue;
            }
            // Speculative loads ([8], technique 2) bypass the
            // consistency check entirely.
            let speculate = self.cfg.speculative_loads && m.kind == MemOpKind::Read;
            if !speculate && !self.consistency_eligible(mi) {
                continue;
            }
            if m.kind == MemOpKind::Read {
                if let Some(src) = self.forwarding_source(mi) {
                    // Forward from the store buffer in one cycle once
                    // the store's data is actually available; block
                    // while it is unknown or still being computed
                    // (unless dependences are being ignored, in which
                    // case forwarding still applies — it is a latency
                    // shortcut, not a stall).
                    let data_available = match self.memops[src].state {
                        MState::Waiting => false,
                        MState::Ready(t) => t <= self.now,
                        MState::InBuffer | MState::Issued(_) => true,
                    };
                    if !data_available && !self.cfg.ignore_data_dependences {
                        continue;
                    }
                    chosen = Some((mi, self.now + 1));
                    break;
                }
            }
            // Non-binding prefetch ([8], technique 1): the fill began
            // when the address became known; cycles spent blocked on
            // consistency constraints come off the latency.
            let latency = if self.cfg.nonbinding_prefetch && m.kind == MemOpKind::Read {
                let covered = self.now.saturating_sub(t);
                (m.latency as u64).saturating_sub(covered).max(1) as u32
            } else {
                m.latency
            };
            if m.is_miss {
                let line = m.word_addr & !(LINE_BYTES - 1);
                match self.mshrs.request(line, self.now, latency) {
                    Some(done) => {
                        chosen = Some((mi, done));
                        break;
                    }
                    None => continue, // MSHRs full: structural stall
                }
            }
            chosen = Some((mi, self.now + latency as u64));
            break;
        }
        if let Some((mi, done)) = chosen {
            self.pending_loads.retain(|&x| x != mi);
            #[cfg(feature = "obs")]
            {
                let m = &self.memops[mi];
                let (now, pc, addr) = (self.now, m.pc, m.word_addr);
                obs::with(|r| {
                    r.event(now, EventKind::Issue { pc, addr });
                    r.event(done, EventKind::Complete { pc, addr });
                });
            }
            let m = &mut self.memops[mi];
            m.state = MState::Issued(done);
            if m.kind == MemOpKind::Read && m.is_miss {
                self.result
                    .stats
                    .read_miss_issue_delays
                    .push((self.now - m.decode_time) as u32);
            }
            let entry_id = m.entry_id;
            if !m.kind.acquires() {
                // Acquires complete at retirement (after their wait);
                // everything else completes when memory responds.
                self.set_completion(entry_id, done);
            }
            return true;
        }
        // Otherwise the store buffer may use the port (FIFO). Store
        // misses occupy MSHRs like loads: same-line misses merge and a
        // full file stalls the issue.
        if let Some(&mi) = self
            .store_buffer
            .iter()
            .find(|&&mi| self.memops[mi].state == MState::InBuffer)
        {
            let m = &self.memops[mi];
            let done = if m.is_miss {
                let line = m.word_addr & !(LINE_BYTES - 1);
                match self.mshrs.request(line, self.now, m.latency) {
                    Some(done) => done,
                    None => return false, // MSHRs full: retry next cycle
                }
            } else {
                self.now + m.latency as u64
            };
            #[cfg(feature = "obs")]
            {
                let (now, pc, addr) = (self.now, m.pc, m.word_addr);
                obs::with(|r| {
                    r.event(now, EventKind::Issue { pc, addr });
                    r.event(done, EventKind::Complete { pc, addr });
                });
            }
            self.memops[mi].state = MState::Issued(done);
            return true;
        }
        false
    }

    fn advance_mem_head(&mut self) {
        while self.mem_head < self.memops.len() && self.memops[self.mem_head].performed_by(self.now)
        {
            self.mem_head += 1;
        }
        while self
            .store_buffer
            .front()
            .is_some_and(|&mi| self.memops[mi].performed_by(self.now))
        {
            self.store_buffer.pop_front();
        }
    }

    // ---- decode / dataflow ----------------------------------------------

    /// Decodes up to `issue_width` trace entries into the window.
    /// Returns the number decoded (a cycle that decoded anything made
    /// progress and cannot be skipped past).
    fn fetch_phase(&mut self) -> usize {
        if self.fetch_blocked || self.now < self.fetch_resume {
            return 0;
        }
        let mut decoded = 0;
        for _ in 0..self.cfg.issue_width {
            if self.window_len() >= self.cfg.window_size || self.decode_exhausted {
                break;
            }
            let stop_after = self.decode_one();
            decoded += 1;
            if stop_after {
                break;
            }
        }
        decoded
    }

    /// Decodes one trace entry into the window. Returns `true` if
    /// fetch must stop (mispredicted branch).
    fn decode_one(&mut self) -> bool {
        let idx = self.next_decode;
        let te = &self.cursor.entry(idx);
        self.next_decode += 1;
        self.decode_exhausted = self.cursor.past_end(self.next_decode);
        let id = self.next_id;
        self.next_id += 1;
        #[cfg(feature = "obs")]
        {
            let (now, pc) = (self.now, te.pc);
            obs::with(|r| r.event(now, EventKind::Fetch { pc }));
        }

        let (kind, mem) = match te.op {
            TraceOp::Compute | TraceOp::Jump { .. } => (EKind::Alu, None),
            TraceOp::Branch { .. } => (EKind::Branch, None),
            TraceOp::Load(m) => (
                EKind::Mem,
                Some(MemOp {
                    kind: MemOpKind::Read,
                    word_addr: m.addr & !(WORD_BYTES - 1),
                    latency: m.latency,
                    wait: 0,
                    is_miss: m.miss,
                    decode_time: self.now,
                    entry_id: id,
                    state: MState::Waiting,
                    #[cfg(feature = "obs")]
                    pc: te.pc,
                    head_since: None,
                    acquire_done: None,
                }),
            ),
            TraceOp::Store(m) => (
                EKind::Mem,
                Some(MemOp {
                    kind: MemOpKind::Write,
                    word_addr: m.addr & !(WORD_BYTES - 1),
                    latency: m.latency,
                    wait: 0,
                    is_miss: m.miss,
                    decode_time: self.now,
                    entry_id: id,
                    state: MState::Waiting,
                    #[cfg(feature = "obs")]
                    pc: te.pc,
                    head_since: None,
                    acquire_done: None,
                }),
            ),
            TraceOp::Sync(s) => {
                let kind = match s.kind {
                    SyncKind::Lock | SyncKind::WaitEvent => MemOpKind::Acquire,
                    SyncKind::Unlock | SyncKind::SetEvent => MemOpKind::Release,
                    SyncKind::Barrier => MemOpKind::Barrier,
                };
                // Acquires issue the memory access only; the wait is
                // charged at the window head. Releases carry no wait.
                let (latency, wait) = if kind.acquires() {
                    (s.access, s.wait)
                } else {
                    (s.wait + s.access, 0)
                };
                (
                    EKind::Mem,
                    Some(MemOp {
                        kind,
                        word_addr: s.addr & !(WORD_BYTES - 1),
                        latency,
                        wait,
                        is_miss: false,
                        decode_time: self.now,
                        entry_id: id,
                        state: MState::Waiting,
                        #[cfg(feature = "obs")]
                        pc: te.pc,
                        head_since: None,
                        acquire_done: None,
                    }),
                )
            }
        };

        let mem_idx = mem.map(|m| {
            self.memops.push(m);
            self.memops.len() - 1
        });

        let mut entry = Entry {
            trace_idx: idx,
            kind,
            unresolved: 0,
            base_ready: self.now,
            ready: None,
            completion: None,
            waiters: Vec::new(),
            mem: mem_idx,
            fetch_blocker: false,
        };

        // Register dependences (renaming: only true producers matter).
        // Store-like entries never complete through set_completion, so
        // they must not claim destination registers — with a matched
        // program/trace they have none, but a mismatched pair (user
        // error) must degrade to wrong timing, not a silent hang.
        let store_like = matches!(
            mem_idx.map(|mi| self.memops[mi].kind),
            Some(MemOpKind::Write) | Some(MemOpKind::Release)
        );
        if !self.cfg.ignore_data_dependences {
            if let Some(instr) = self.program.fetch(te.pc as usize) {
                let wait_on = |engine: &mut Engine<'a>, entry: &mut Entry, slot: usize| {
                    match engine.reg_producer[slot] {
                        // A producer id below head_id has retired: its
                        // time was folded into reg_time when it
                        // completed (its slab slot may already hold a
                        // different live entry).
                        Some(pid) if pid >= engine.head_id => {
                            let p = engine.entry_mut(pid);
                            if let Some(c) = p.completion {
                                entry.base_ready = entry.base_ready.max(c);
                            } else {
                                p.waiters.push(id);
                                entry.unresolved += 1;
                            }
                        }
                        _ => {
                            entry.base_ready = entry.base_ready.max(engine.reg_time[slot]);
                        }
                    }
                };
                for r in instr.int_sources().iter() {
                    wait_on(self, &mut entry, r.index());
                }
                for r in instr.fp_sources().iter() {
                    wait_on(self, &mut entry, 32 + r.index());
                }
                if !store_like {
                    if let Some(r) = instr.int_dest() {
                        self.reg_producer[r.index()] = Some(id);
                    }
                    if let Some(r) = instr.fp_dest() {
                        self.reg_producer[32 + r.index()] = Some(id);
                    }
                }
            }
        }

        // Branch prediction at decode.
        let mut mispredicted = false;
        if let TraceOp::Branch { taken, target } = te.op {
            self.result.stats.branches += 1;
            if !self.cfg.perfect_branch_prediction {
                use lookahead_trace::BranchPredictor;
                let correct = self.btb.predict_and_update(te.pc, taken, target);
                if !correct {
                    self.result.stats.mispredictions += 1;
                    mispredicted = true;
                }
            }
        }

        let resolved = entry.unresolved == 0;
        let base = entry.base_ready;
        if mispredicted {
            entry.fetch_blocker = true;
            self.fetch_blocked = true;
        }
        let slot = (id & self.slab_mask) as usize;
        debug_assert!(self.slab[slot].is_none(), "slab slot still live");
        self.slab[slot] = Some(entry);
        if resolved {
            self.set_ready(id, base);
        }
        mispredicted
    }

    /// All producers of `id` are known: fix its ready time and, for
    /// single-cycle units, its completion.
    fn set_ready(&mut self, id: u64, ready: u64) {
        let e = self.entry_mut(id);
        e.ready = Some(ready);
        match e.kind {
            EKind::Alu | EKind::Branch => {
                let c = ready.max(e.base_ready) + 1;
                self.set_completion(id, c);
            }
            EKind::Mem => {
                let mi = e.mem.expect("mem entry");
                let m = &mut self.memops[mi];
                m.state = MState::Ready(ready);
                if !matches!(m.kind, MemOpKind::Write | MemOpKind::Release) {
                    self.pending_loads.push_back(mi);
                }
            }
        }
    }

    /// Propagate a known completion time to dependents (iteratively,
    /// to keep long ALU chains off the call stack).
    fn set_completion(&mut self, id: u64, time: u64) {
        let mut work = vec![(id, time)];
        while let Some((id, time)) = work.pop() {
            let e = self.entry_mut(id);
            e.completion = Some(time);
            if e.fetch_blocker {
                e.fetch_blocker = false;
                self.fetch_blocked = false;
                self.fetch_resume = self.fetch_resume.max(time + 1);
            }
            let waiters = std::mem::take(&mut self.entry_mut(id).waiters);
            // Fold into the register file view for consumers that
            // decode after this entry retires.
            let pc = self.cursor.pc(self.entry(id).trace_idx);
            if let Some(instr) = self.program.fetch(pc as usize) {
                if let Some(r) = instr.int_dest() {
                    if self.reg_producer[r.index()] == Some(id) {
                        self.reg_producer[r.index()] = None;
                        self.reg_time[r.index()] = time;
                    }
                }
                if let Some(r) = instr.fp_dest() {
                    if self.reg_producer[32 + r.index()] == Some(id) {
                        self.reg_producer[32 + r.index()] = None;
                        self.reg_time[32 + r.index()] = time;
                    }
                }
            }
            for w in waiters {
                let we = self.entry_mut(w);
                we.base_ready = we.base_ready.max(time);
                we.unresolved -= 1;
                if we.unresolved == 0 {
                    let base = we.base_ready;
                    let kind = we.kind;
                    match kind {
                        EKind::Alu | EKind::Branch => work.push((w, base + 1)),
                        EKind::Mem => self.set_ready(w, base),
                    }
                }
            }
        }
    }

    // ---- stall attribution ------------------------------------------------

    fn stall_class(&self) -> StallClass {
        let head_class = (self.head_id < self.next_id).then(|| {
            let e = self.entry(self.head_id);
            match e.kind {
                EKind::Mem => {
                    let m = &self.memops[e.mem.expect("mem entry")];
                    Some(class_of(m.kind))
                }
                _ => None,
            }
        });
        match head_class {
            Some(Some(c)) => c,
            Some(None) => {
                // ALU/branch at head: blame the oldest unperformed
                // memory operation, the usual producer of the wait.
                self.oldest_unperformed_class().unwrap_or(StallClass::Fetch)
            }
            None => self.oldest_unperformed_class().unwrap_or(StallClass::Fetch),
        }
    }

    fn oldest_unperformed_class(&self) -> Option<StallClass> {
        (self.mem_head..self.memops.len())
            .find(|&j| !self.memops[j].performed_by(self.now))
            .map(|j| class_of(self.memops[j].kind))
    }

    /// Refines a coarse stall class into the blamed pc and fine cause.
    /// Purely observational: the coarse class is passed through
    /// unchanged, so attribution reconciles with the breakdown by
    /// construction.
    #[cfg(feature = "obs")]
    fn stall_blame(&self, class: StallClass) -> (u32, obs::StallCause) {
        use obs::StallCause as C;
        if self.head_id < self.next_id {
            let e = self.entry(self.head_id);
            let pc = self.cursor.pc(e.trace_idx);
            let cause = match e.kind {
                // ALU/branch at head: retirement waits on its operands.
                EKind::Alu | EKind::Branch => C::TrueDependence,
                EKind::Mem => {
                    let m = &self.memops[e.mem.expect("mem entry")];
                    match m.kind {
                        MemOpKind::Read => match m.state {
                            MState::Waiting => C::TrueDependence,
                            MState::Ready(t) if t > self.now => C::TrueDependence,
                            MState::Issued(_) if self.window_len() >= self.cfg.window_size => {
                                C::RobFull
                            }
                            _ => C::ReadMiss,
                        },
                        MemOpKind::Write | MemOpKind::Release => match m.state {
                            MState::Waiting => C::TrueDependence,
                            MState::Ready(t) if t > self.now => C::TrueDependence,
                            _ => C::WriteMiss,
                        },
                        MemOpKind::Acquire | MemOpKind::Barrier => C::Acquire,
                    }
                }
            };
            (pc, cause)
        } else {
            // Window empty: nothing to retire; blame the next
            // instruction the fetch stage would decode.
            let pc = if self.next_decode < self.cursor.loaded_len() {
                self.cursor.pc(self.next_decode)
            } else {
                0
            };
            let cause = match class {
                StallClass::Read => C::ReadMiss,
                StallClass::Write => C::WriteMiss,
                StallClass::Sync => C::Acquire,
                StallClass::Fetch => C::FetchLimit,
            };
            (pc, cause)
        }
    }
}

/// Maps the core-local stall class onto the obs taxonomy.
#[cfg(feature = "obs")]
fn obs_class(c: StallClass) -> obs::StallClass {
    match c {
        StallClass::Read => obs::StallClass::Read,
        StallClass::Write => obs::StallClass::Write,
        StallClass::Sync => obs::StallClass::Sync,
        StallClass::Fetch => obs::StallClass::Fetch,
    }
}

fn class_of(kind: MemOpKind) -> StallClass {
    match kind {
        MemOpKind::Read => StallClass::Read,
        MemOpKind::Write | MemOpKind::Release => StallClass::Write,
        MemOpKind::Acquire | MemOpKind::Barrier => StallClass::Sync,
    }
}

impl ProcessorModel for Ds {
    fn name(&self) -> String {
        let mut name = format!("DS-{}/{}", self.config.window_size, self.config.model);
        if self.config.perfect_branch_prediction {
            name.push_str("+pbp");
        }
        if self.config.ignore_data_dependences {
            name.push_str("+nodep");
        }
        if self.config.nonbinding_prefetch {
            name.push_str("+pf");
        }
        if self.config.speculative_loads {
            name.push_str("+spec");
        }
        if self.config.issue_width != 1 {
            name.push_str(&format!("+w{}", self.config.issue_width));
        }
        name
    }

    fn run(&self, program: &Program, trace: &Trace) -> ExecutionResult {
        Engine::new(self.config, program, trace, true)
            .run()
            .expect("slice-backed run cannot fail")
    }

    fn run_source(
        &self,
        program: &Program,
        source: &mut dyn TraceSource,
    ) -> Result<ExecutionResult, StreamError> {
        let cursor = TraceCursor::stream(Box::new(source));
        Engine::with_cursor(self.config, program, cursor, true).run()
    }
}

impl Ds {
    /// Re-times `trace` with the retained cycle-by-cycle reference
    /// stepper: identical state machine, but every cycle is walked
    /// explicitly instead of skipping dead spans. Exists as the ground
    /// truth for the skip-ahead equivalence suite and as the baseline
    /// engine for `lookahead bench`.
    pub fn run_reference(&self, program: &Program, trace: &Trace) -> ExecutionResult {
        Engine::new(self.config, program, trace, false)
            .run()
            .expect("slice-backed run cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use lookahead_isa::{Assembler, BranchCond, IntReg};
    use lookahead_trace::{MemAccess, TraceEntry};

    /// `n` independent load misses, each followed by `gap` independent
    /// compute instructions.
    fn independent_misses(n: usize, gap: usize) -> (Program, Trace) {
        let mut a = Assembler::new();
        let mut entries = Vec::new();
        let mut pc = 0u32;
        for i in 0..n {
            a.load(IntReg::T1, IntReg::T0, (i as i64) * 64);
            entries.push(TraceEntry {
                pc,
                op: TraceOp::Load(MemAccess::miss(i as u64 * 64, 50)),
            });
            pc += 1;
            for _ in 0..gap {
                a.addi(IntReg::T2, IntReg::T2, 1);
                entries.push(TraceEntry::compute(pc));
                pc += 1;
            }
        }
        a.halt();
        (a.assemble().unwrap(), Trace::from_entries(entries))
    }

    /// A chain of dependent load misses (each load's address depends
    /// on the previous load's value).
    fn dependent_misses(n: usize) -> (Program, Trace) {
        let mut a = Assembler::new();
        let mut entries = Vec::new();
        for i in 0..n {
            a.load(IntReg::T1, IntReg::T1, 0);
            entries.push(TraceEntry {
                pc: i as u32,
                op: TraceOp::Load(MemAccess::miss(i as u64 * 64, 50)),
            });
        }
        a.halt();
        (a.assemble().unwrap(), Trace::from_entries(entries))
    }

    fn ds(window: usize) -> Ds {
        Ds::new(DsConfig::rc().window(window))
    }

    #[test]
    fn independent_misses_overlap_under_rc() {
        let (p, t) = independent_misses(8, 2);
        let base = Base.run(&p, &t);
        let r = ds(64).run(&p, &t);
        // BASE pays 8 * 50; DS pays roughly one miss plus pipelining.
        assert!(
            r.cycles() < base.cycles() / 3,
            "DS {} vs BASE {}",
            r.cycles(),
            base.cycles()
        );
        assert!(r.breakdown.read < base.breakdown.read / 3);
    }

    #[test]
    fn dependent_misses_cannot_overlap() {
        let (p, t) = dependent_misses(6);
        let base = Base.run(&p, &t);
        let r = ds(256).run(&p, &t);
        // A dependence chain serializes no matter the window.
        assert!(
            r.cycles() + 20 > base.cycles(),
            "DS {} vs BASE {}",
            r.cycles(),
            base.cycles()
        );
        // And the issue-delay diagnostic shows the chain.
        assert!(r.stats.read_miss_delay_fraction_over(40) > 0.5);
    }

    #[test]
    fn sc_serializes_even_with_a_big_window() {
        let (p, t) = independent_misses(8, 2);
        let sc = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(256)).run(&p, &t);
        let rc = Ds::new(DsConfig::rc().window(256)).run(&p, &t);
        assert!(
            sc.cycles() > rc.cycles() * 3,
            "SC {} vs RC {}",
            sc.cycles(),
            rc.cycles()
        );
    }

    #[test]
    fn bigger_windows_hide_more_read_latency() {
        // Misses 20 instructions apart: window 16 cannot reach the
        // next miss, window 64 can overlap several.
        let (p, t) = independent_misses(12, 19);
        let r16 = ds(16).run(&p, &t);
        let r64 = ds(64).run(&p, &t);
        let r256 = ds(256).run(&p, &t);
        assert!(r64.cycles() < r16.cycles());
        assert!(r256.cycles() <= r64.cycles());
        assert!(r64.breakdown.read < r16.breakdown.read);
    }

    #[test]
    fn window_one_behaves_like_base_on_loads() {
        let (p, t) = independent_misses(4, 3);
        let base = Base.run(&p, &t);
        let r = ds(1).run(&p, &t);
        // A 1-entry window cannot overlap anything; small constant
        // pipeline differences aside, it tracks BASE.
        assert!(r.cycles() + 8 >= base.cycles());
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        // A data-dependent branch after each load: alternating
        // direction defeats the BTB, so fetch keeps stalling.
        let mut a = Assembler::new();
        let mut entries = Vec::new();
        let mut pc = 0u32;
        for i in 0..12u32 {
            a.load(IntReg::T1, IntReg::T0, 64 * i as i64);
            entries.push(TraceEntry {
                pc,
                op: TraceOp::Load(MemAccess::miss(64 * i as u64, 50)),
            });
            pc += 1;
            let skip = a.label();
            a.branch(BranchCond::Eq, IntReg::T1, IntReg::ZERO, skip);
            a.bind(skip).unwrap();
            entries.push(TraceEntry {
                pc,
                op: TraceOp::Branch {
                    taken: i % 2 == 0,
                    target: pc + 1,
                },
            });
            pc += 1;
        }
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(entries);
        let real = ds(64).run(&p, &t);
        let perfect = Ds::new(DsConfig {
            perfect_branch_prediction: true,
            ..DsConfig::rc().window(64)
        })
        .run(&p, &t);
        assert!(real.stats.mispredictions > 3);
        assert_eq!(perfect.stats.mispredictions, 0);
        assert!(
            perfect.cycles() < real.cycles(),
            "perfect {} vs real {}",
            perfect.cycles(),
            real.cycles()
        );
    }

    #[test]
    fn ignore_data_dependences_unlocks_chains() {
        let (p, t) = dependent_misses(6);
        let real = ds(64).run(&p, &t);
        let nodep = Ds::new(DsConfig {
            ignore_data_dependences: true,
            perfect_branch_prediction: true,
            ..DsConfig::rc().window(64)
        })
        .run(&p, &t);
        assert!(
            nodep.cycles() < real.cycles() / 2,
            "nodep {} vs real {}",
            nodep.cycles(),
            real.cycles()
        );
    }

    #[test]
    fn load_forwards_from_pending_store() {
        // store miss to A, then load of A: the load forwards from the
        // store buffer instead of paying a miss.
        let mut a = Assembler::new();
        a.store(IntReg::T0, IntReg::T0, 0);
        a.load(IntReg::T1, IntReg::T0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(vec![
            TraceEntry {
                pc: 0,
                op: TraceOp::Store(MemAccess::miss(0, 50)),
            },
            TraceEntry {
                pc: 1,
                op: TraceOp::Load(MemAccess::miss(0, 50)),
            },
        ]);
        let r = ds(16).run(&p, &t);
        // Without forwarding this would be >= 100 cycles serial.
        assert!(r.cycles() < 70, "forwarding failed: {} cycles", r.cycles());
    }

    #[test]
    fn store_buffer_capacity_backpressures() {
        let mut a = Assembler::new();
        let mut entries = Vec::new();
        for i in 0..12u32 {
            a.store(IntReg::T0, IntReg::T0, 64 * i as i64);
            entries.push(TraceEntry {
                pc: i,
                op: TraceOp::Store(MemAccess::miss(64 * i as u64, 50)),
            });
        }
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(entries);
        let deep = ds(16).run(&p, &t);
        let shallow = Ds::new(DsConfig {
            store_buffer_depth: 1,
            ..DsConfig::rc().window(16)
        })
        .run(&p, &t);
        assert!(
            shallow.cycles() > deep.cycles() + 100,
            "shallow {} vs deep {}",
            shallow.cycles(),
            deep.cycles()
        );
    }

    #[test]
    fn mshr_limit_throttles_miss_overlap() {
        let (p, t) = independent_misses(8, 0);
        let unbounded = ds(64).run(&p, &t);
        let one = Ds::new(DsConfig {
            mshr_limit: Some(1),
            ..DsConfig::rc().window(64)
        })
        .run(&p, &t);
        assert!(one.cycles() > unbounded.cycles() * 2);
        assert!(unbounded.stats.peak_outstanding_misses >= 4);
        assert_eq!(one.stats.peak_outstanding_misses, 1);
    }

    #[test]
    fn busy_equals_instructions_single_issue() {
        let (p, t) = independent_misses(5, 7);
        for w in [16, 64, 256] {
            let r = ds(w).run(&p, &t);
            assert_eq!(r.stats.instructions, t.len() as u64, "window {w}");
            assert_eq!(
                r.breakdown.busy,
                t.len() as u64 + r.stats.fetch_stall_cycles,
                "window {w}: busy accounts instructions plus fetch gaps"
            );
        }
    }

    #[test]
    fn four_wide_issue_is_faster_but_needs_bigger_windows() {
        let (p, t) = independent_misses(10, 24);
        let one = ds(64).run(&p, &t);
        let four64 = Ds::new(DsConfig {
            issue_width: 4,
            ..DsConfig::rc().window(64)
        })
        .run(&p, &t);
        let four128 = Ds::new(DsConfig {
            issue_width: 4,
            ..DsConfig::rc().window(128)
        })
        .run(&p, &t);
        assert!(four64.cycles() < one.cycles());
        assert!(four128.cycles() <= four64.cycles());
    }

    #[test]
    fn nonbinding_prefetch_boosts_sc() {
        let (p, t) = independent_misses(8, 2);
        let sc = Ds::new(DsConfig::with_model(ConsistencyModel::Sc).window(64));
        let plain = sc.run(&p, &t);
        let boosted = Ds::new(DsConfig {
            nonbinding_prefetch: true,
            ..sc.config()
        })
        .run(&p, &t);
        let rc = ds(64).run(&p, &t);
        assert!(
            boosted.cycles() < plain.cycles(),
            "prefetch {} !< plain SC {}",
            boosted.cycles(),
            plain.cycles()
        );
        // Prefetch brings SC to within a whisker of RC — exactly the
        // claim of [8] — but cannot be dramatically better.
        assert!(
            boosted.cycles() * 10 >= rc.cycles() * 9,
            "boosted SC {} implausibly beats RC {}",
            boosted.cycles(),
            rc.cycles()
        );
    }

    #[test]
    fn speculative_loads_bring_sc_near_rc() {
        let (p, t) = independent_misses(8, 2);
        let spec = Ds::new(DsConfig {
            speculative_loads: true,
            ..DsConfig::with_model(ConsistencyModel::Sc).window(64)
        })
        .run(&p, &t);
        let rc = ds(64).run(&p, &t);
        // Loads dominate this trace, so speculative SC is close to RC.
        assert!(
            spec.cycles() as f64 <= rc.cycles() as f64 * 1.15,
            "speculative SC {} far from RC {}",
            spec.cycles(),
            rc.cycles()
        );
    }

    #[test]
    fn boosting_does_not_change_rc() {
        // Under RC loads are already unconstrained; the techniques are
        // no-ops (within a cycle of noise).
        let (p, t) = independent_misses(6, 3);
        let plain = ds(64).run(&p, &t).cycles();
        let boosted = Ds::new(DsConfig {
            nonbinding_prefetch: true,
            speculative_loads: true,
            ..DsConfig::rc().window(64)
        })
        .run(&p, &t)
        .cycles();
        assert!(boosted.abs_diff(plain) <= 2, "{boosted} vs {plain}");
    }

    #[test]
    fn names_encode_configuration() {
        assert_eq!(ds(64).name(), "DS-64/RC");
        let name = Ds::new(DsConfig {
            perfect_branch_prediction: true,
            ignore_data_dependences: true,
            issue_width: 4,
            ..DsConfig::with_model(ConsistencyModel::Sc).window(128)
        })
        .name();
        assert_eq!(name, "DS-128/SC+pbp+nodep+w4");
        let boosted = Ds::new(DsConfig {
            nonbinding_prefetch: true,
            speculative_loads: true,
            ..DsConfig::with_model(ConsistencyModel::Sc)
        })
        .name();
        assert_eq!(boosted, "DS-64/SC+pf+spec");
    }
}
