//! Memory consistency models as ordering constraints — the paper's
//! Figure 1.
//!
//! A consistency model is implemented as a *must-wait matrix*: memory
//! operation `o` may be issued to the memory system only when every
//! earlier (program-order) operation `e` that has not yet *performed*
//! satisfies `!must_wait_for(e.kind, o.kind)`.
//!
//! The four models, following the paper's Figure 1:
//!
//! * **SC** — every access waits for every earlier access: fully
//!   serial.
//! * **PC** — reads may bypass earlier writes; all other pairs stay
//!   ordered (writes are seen in program order; reads are serialized
//!   with respect to reads).
//! * **WO** — ordinary reads and writes between synchronization points
//!   are unordered; any synchronization operation waits for all
//!   earlier accesses, and all later accesses wait for it.
//! * **RC** — refines WO with the acquire/release classification: an
//!   *acquire* blocks only the accesses after it; a *release* waits
//!   only for the accesses before it. Ordinary accesses after a
//!   release need not wait, and an acquire need not wait for ordinary
//!   accesses before it. Special accesses are kept processor-
//!   consistent among themselves (this is the RCpc model of the
//!   paper's reference \[10\], which the paper uses).
//!
//! True same-address dependences (a load after a store to the same
//! word) are *not* the consistency model's business — the load/store
//! unit enforces them via store-buffer checking regardless of model.

use std::fmt;

/// Kinds of memory operations for ordering purposes.
///
/// Barriers act as an acquire *and* a release; the timing models
/// represent a barrier as an [`MemOpKind::Acquire`] that is also
/// release-ordered, via [`MemOpKind::Barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// Ordinary load.
    Read,
    /// Ordinary store.
    Write,
    /// Acquire synchronization (lock, wait-event).
    Acquire,
    /// Release synchronization (unlock, set-event).
    Release,
    /// Barrier: both an acquire and a release.
    Barrier,
}

impl MemOpKind {
    /// Whether the operation has acquire semantics.
    pub fn acquires(self) -> bool {
        matches!(self, MemOpKind::Acquire | MemOpKind::Barrier)
    }

    /// Whether the operation has release semantics.
    pub fn releases(self) -> bool {
        matches!(self, MemOpKind::Release | MemOpKind::Barrier)
    }

    /// Whether this is a synchronization (special) access.
    pub fn is_sync(self) -> bool {
        !matches!(self, MemOpKind::Read | MemOpKind::Write)
    }
}

/// The memory consistency models evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential consistency.
    Sc,
    /// Processor consistency.
    Pc,
    /// Weak ordering.
    Wo,
    /// Release consistency (RCpc).
    Rc,
}

impl ConsistencyModel {
    /// The three models of the paper's evaluation, in figure order.
    pub const EVALUATED: [ConsistencyModel; 3] = [
        ConsistencyModel::Sc,
        ConsistencyModel::Pc,
        ConsistencyModel::Rc,
    ];

    /// All four models described in §2.1.
    pub const ALL: [ConsistencyModel; 4] = [
        ConsistencyModel::Sc,
        ConsistencyModel::Pc,
        ConsistencyModel::Wo,
        ConsistencyModel::Rc,
    ];

    /// Whether a later operation of kind `later` must wait for an
    /// earlier, not-yet-performed operation of kind `earlier` before
    /// being issued to the memory system.
    pub fn must_wait_for(self, earlier: MemOpKind, later: MemOpKind) -> bool {
        use MemOpKind::{Read, Write};
        match self {
            ConsistencyModel::Sc => true,
            ConsistencyModel::Pc => {
                // Only the write -> read ordering is relaxed.
                !(matches!(earlier, Write | MemOpKind::Release)
                    && matches!(later, Read | MemOpKind::Acquire))
            }
            ConsistencyModel::Wo => {
                // Data accesses are unordered among themselves; any
                // synchronization is a full fence.
                earlier.is_sync() || later.is_sync()
            }
            ConsistencyModel::Rc => {
                if earlier.acquires() {
                    // An acquire blocks everything after it.
                    true
                } else if later.releases() {
                    // A release waits for everything before it.
                    true
                } else if earlier.is_sync() && later.is_sync() {
                    // Specials stay processor-consistent: only the
                    // release -> acquire (write -> read) pair relaxes,
                    // and that pair was already handled above when the
                    // earlier op has acquire semantics.
                    !(earlier.releases() && later.acquires())
                } else {
                    // Ordinary accesses are unordered; they need not
                    // wait for earlier releases either.
                    false
                }
            }
        }
    }

    /// The model's conventional abbreviation ("SC", "PC", "WO", "RC").
    pub fn abbrev(self) -> &'static str {
        match self {
            ConsistencyModel::Sc => "SC",
            ConsistencyModel::Pc => "PC",
            ConsistencyModel::Wo => "WO",
            ConsistencyModel::Rc => "RC",
        }
    }

    /// Renders the full must-wait matrix as a table (used by the
    /// `consistency_rules` example to print Figure 1's content).
    pub fn rule_table(self) -> String {
        use MemOpKind::*;
        let kinds = [Read, Write, Acquire, Release, Barrier];
        let mut out = format!("{}: rows = earlier, cols = later\n", self.abbrev());
        out.push_str("          ");
        for k in kinds {
            out.push_str(&format!("{k:>9?}"));
        }
        out.push('\n');
        for e in kinds {
            out.push_str(&format!("{e:>9?} "));
            for l in kinds {
                out.push_str(&format!(
                    "{:>9}",
                    if self.must_wait_for(e, l) {
                        "wait"
                    } else {
                        "-"
                    }
                ));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConsistencyModel::*;
    use MemOpKind::*;

    #[test]
    fn sc_orders_everything() {
        for e in [Read, Write, Acquire, Release, Barrier] {
            for l in [Read, Write, Acquire, Release, Barrier] {
                assert!(Sc.must_wait_for(e, l), "{e:?} -> {l:?}");
            }
        }
    }

    #[test]
    fn pc_relaxes_only_write_to_read() {
        assert!(!Pc.must_wait_for(Write, Read), "reads bypass writes");
        assert!(Pc.must_wait_for(Read, Read), "reads serialize");
        assert!(Pc.must_wait_for(Write, Write), "writes in order");
        assert!(Pc.must_wait_for(Read, Write));
        assert!(
            !Pc.must_wait_for(Release, Acquire),
            "sync write -> sync read relaxes too"
        );
    }

    #[test]
    fn wo_fences_at_synchronization() {
        assert!(!Wo.must_wait_for(Read, Read));
        assert!(!Wo.must_wait_for(Write, Read));
        assert!(!Wo.must_wait_for(Read, Write));
        assert!(!Wo.must_wait_for(Write, Write));
        for s in [Acquire, Release, Barrier] {
            assert!(Wo.must_wait_for(s, Read), "{s:?} blocks later data");
            assert!(Wo.must_wait_for(Write, s), "{s:?} waits for earlier data");
            assert!(Wo.must_wait_for(s, s));
        }
    }

    #[test]
    fn rc_acquire_blocks_following() {
        for l in [Read, Write, Acquire, Release, Barrier] {
            assert!(Rc.must_wait_for(Acquire, l), "acquire -> {l:?}");
            assert!(Rc.must_wait_for(Barrier, l), "barrier -> {l:?}");
        }
    }

    #[test]
    fn rc_release_waits_for_previous() {
        for e in [Read, Write, Acquire, Release, Barrier] {
            assert!(Rc.must_wait_for(e, Release), "{e:?} -> release");
            assert!(Rc.must_wait_for(e, Barrier), "{e:?} -> barrier");
        }
    }

    #[test]
    fn rc_relaxes_ordinary_accesses() {
        assert!(!Rc.must_wait_for(Read, Read));
        assert!(!Rc.must_wait_for(Read, Write));
        assert!(!Rc.must_wait_for(Write, Read));
        assert!(!Rc.must_wait_for(Write, Write));
        // Accesses after a release need not wait for it...
        assert!(!Rc.must_wait_for(Release, Read));
        assert!(!Rc.must_wait_for(Release, Write));
        // ...and an acquire after a release may bypass it (RCpc).
        assert!(!Rc.must_wait_for(Release, Acquire));
    }

    #[test]
    fn models_are_ordered_in_permissiveness() {
        // Over ordinary data accesses the hierarchy is strict:
        // SC orders all 4 pairs, PC relaxes one (W->R), WO and RC
        // relax all of them.
        let data = [Read, Write];
        let count_data = |m: ConsistencyModel| {
            data.iter()
                .flat_map(|&e| data.iter().map(move |&l| (e, l)))
                .filter(|&(e, l)| m.must_wait_for(e, l))
                .count()
        };
        assert_eq!(count_data(Sc), 4);
        assert_eq!(count_data(Pc), 3);
        assert_eq!(count_data(Wo), 0);
        assert_eq!(count_data(Rc), 0);
        // RC strictly relaxes WO around synchronization: data after a
        // release, and data before an acquire, need not wait.
        assert!(Wo.must_wait_for(Release, Read) && !Rc.must_wait_for(Release, Read));
        assert!(Wo.must_wait_for(Read, Acquire) && !Rc.must_wait_for(Read, Acquire));
    }

    #[test]
    fn rule_table_mentions_every_kind() {
        let t = Rc.rule_table();
        for k in ["Read", "Write", "Acquire", "Release", "Barrier"] {
            assert!(t.contains(k), "missing {k} in:\n{t}");
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(Barrier.acquires() && Barrier.releases() && Barrier.is_sync());
        assert!(Acquire.acquires() && !Acquire.releases());
        assert!(Release.releases() && !Release.acquires());
        assert!(!Read.is_sync() && !Write.is_sync());
    }
}
