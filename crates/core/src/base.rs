//! The BASE processor: in-order execution with no overlap at all.
//!
//! BASE "completes each operation before initiating the next one
//! (i.e., no overlap in execution of instructions and memory
//! operations)" (§4.1). It is the left-most, 100%-height bar of
//! Figure 3 that every other configuration is normalized against.
//!
//! Costs per operation: one busy cycle for every instruction, the full
//! memory latency for every load *and* store (nothing is buffered),
//! and wait-plus-access for every synchronization operation. Releases
//! are charged to write time, acquires to sync time, matching the
//! paper's accounting ("release operations are included in the total
//! write miss time").

use crate::model::{ExecutionResult, ProcessorModel};
use lookahead_isa::Program;
#[cfg(feature = "obs")]
use lookahead_obs as obs;
use lookahead_trace::{EntryCols, OpClass, Trace};

/// Records `n` stalled cycles starting at `from`, blamed on `pc`.
#[cfg(feature = "obs")]
fn stall(from: u64, pc: u32, n: u64, class: obs::StallClass, cause: obs::StallCause) {
    obs::with(|r| r.stall_span(from, n, pc, class, cause));
}

/// The no-overlap in-order processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Base;

/// Incremental BASE accounting: one `step` per trace entry, shared by
/// the materialized and streamed paths so they agree by construction.
#[derive(Debug, Default)]
struct Accounting {
    result: ExecutionResult,
    #[cfg(feature = "obs")]
    now: u64,
}

impl Accounting {
    /// Written against the [`EntryCols`] accessors, so the streamed
    /// path reads SoA columns directly and the materialized path runs
    /// the identical body over reconstructed entries.
    fn step<E: EntryCols>(&mut self, entry: &E) {
        let result = &mut self.result;
        #[cfg(feature = "obs")]
        let now = self.now;
        let b = &mut result.breakdown;
        {
            b.busy += 1;
            result.stats.instructions += 1;
            #[cfg(feature = "obs")]
            obs::with(|r| r.busy_cycle());
            // Cycles past the busy one this entry serializes for.
            #[cfg(feature = "obs")]
            let mut spent = 0u64;
            match entry.class() {
                OpClass::Compute | OpClass::Jump => {}
                OpClass::Branch => {
                    result.stats.branches += 1;
                }
                OpClass::Load => {
                    let d = (entry.latency() - 1) as u64;
                    b.read += d;
                    #[cfg(feature = "obs")]
                    {
                        stall(
                            now + 1,
                            entry.pc(),
                            d,
                            obs::StallClass::Read,
                            obs::StallCause::ReadMiss,
                        );
                        spent = d;
                    }
                }
                OpClass::Store => {
                    let d = (entry.latency() - 1) as u64;
                    b.write += d;
                    #[cfg(feature = "obs")]
                    {
                        stall(
                            now + 1,
                            entry.pc(),
                            d,
                            obs::StallClass::Write,
                            obs::StallCause::WriteMiss,
                        );
                        spent = d;
                    }
                }
                OpClass::Sync(kind) => {
                    let d = entry.wait() as u64 + (entry.latency() - 1) as u64;
                    if kind.is_acquire() {
                        b.sync += d;
                        #[cfg(feature = "obs")]
                        stall(
                            now + 1,
                            entry.pc(),
                            d,
                            obs::StallClass::Sync,
                            obs::StallCause::Acquire,
                        );
                    } else {
                        b.write += d;
                        #[cfg(feature = "obs")]
                        stall(
                            now + 1,
                            entry.pc(),
                            d,
                            obs::StallClass::Write,
                            obs::StallCause::WriteMiss,
                        );
                    }
                    #[cfg(feature = "obs")]
                    {
                        spent = d;
                    }
                }
            }
            #[cfg(feature = "obs")]
            {
                self.now = now + 1 + spent;
            }
        }
    }
}

impl ProcessorModel for Base {
    fn name(&self) -> String {
        "BASE".to_string()
    }

    fn run(&self, _program: &Program, trace: &Trace) -> ExecutionResult {
        let mut acc = Accounting::default();
        for entry in trace.iter() {
            acc.step(entry);
        }
        acc.result
    }

    fn run_source(
        &self,
        _program: &Program,
        source: &mut dyn lookahead_trace::TraceSource,
    ) -> Result<ExecutionResult, lookahead_trace::StreamError> {
        let mut acc = Accounting::default();
        while let Some(chunk) = source.next_chunk()? {
            for view in chunk.views() {
                acc.step(&view);
            }
        }
        Ok(acc.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::SyncKind;
    use lookahead_trace::{MemAccess, SyncAccess, TraceEntry, TraceOp};

    fn entry(pc: u32, op: TraceOp) -> TraceEntry {
        TraceEntry { pc, op }
    }

    #[test]
    fn base_serializes_every_latency() {
        let trace = Trace::from_entries(vec![
            entry(0, TraceOp::Compute),
            entry(1, TraceOp::Load(MemAccess::miss(0, 50))),
            entry(2, TraceOp::Store(MemAccess::miss(16, 50))),
            entry(3, TraceOp::Load(MemAccess::hit(0))),
            entry(
                4,
                TraceOp::Sync(SyncAccess {
                    kind: SyncKind::Lock,
                    addr: 8,
                    wait: 30,
                    access: 50,
                }),
            ),
            entry(
                5,
                TraceOp::Sync(SyncAccess {
                    kind: SyncKind::Unlock,
                    addr: 8,
                    wait: 0,
                    access: 50,
                }),
            ),
        ]);
        let r = Base.run(&Program::default(), &trace);
        assert_eq!(r.breakdown.busy, 6);
        assert_eq!(r.breakdown.read, 49, "one read miss");
        assert_eq!(r.breakdown.write, 49 + 49, "store miss + release");
        assert_eq!(r.breakdown.sync, 30 + 49, "lock wait + access");
        assert_eq!(r.cycles(), 6 + 49 + 98 + 79);
        assert_eq!(r.stats.instructions, 6);
    }

    #[test]
    fn base_on_pure_compute_is_trace_length() {
        let trace: Trace = (0..100).map(TraceEntry::compute).collect();
        let r = Base.run(&Program::default(), &trace);
        assert_eq!(r.cycles(), 100);
        assert_eq!(r.breakdown.busy, 100);
    }

    #[test]
    fn name_is_base() {
        assert_eq!(Base.name(), "BASE");
    }
}
