//! The statically scheduled processors: SSBR and SS.
//!
//! **SSBR** (statically scheduled, blocking reads) stalls for every
//! read's return value; writes go into a 16-entry write buffer so the
//! processor can run ahead of them. **SS** issues reads without
//! blocking (into a 16-entry read buffer) and stalls only at the first
//! *use* of the return value — which, as the paper observes (§4.1.1),
//! is usually a few instructions later, so SS gains little over SSBR
//! without compiler rescheduling.
//!
//! Both processors are in-order, so the consistency model's effect is
//! expressed entirely through when buffered operations may *perform*:
//!
//! * a load (or acquire) stalls the processor until every earlier
//!   buffered operation the model orders before it has performed —
//!   under SC that means the write buffer must drain before every
//!   read, which is exactly why SC hides nothing;
//! * a buffered write's completion time is pushed back behind earlier
//!   writes it must not overtake (serialized draining under SC/PC,
//!   overlapped under WO/RC);
//! * a release completes only after everything before it has
//!   performed, under every model.
//!
//! Stall attribution follows the paper: waiting for buffered writes
//! (including releases) is write time, waiting for outstanding reads
//! is read time, the wait-plus-access of an acquire is sync time.

use crate::consistency::{ConsistencyModel, MemOpKind};
use crate::model::{ExecutionResult, ProcessorModel};
use lookahead_isa::{Program, SyncKind};
#[cfg(feature = "obs")]
use lookahead_obs::{self as obs, EventKind};
use lookahead_trace::{EntryCols, OpClass, Trace};
use std::collections::VecDeque;

/// A statically scheduled in-order processor (SSBR or SS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrder {
    /// Consistency model enforced by the load/store unit.
    pub model: ConsistencyModel,
    /// `true` for SSBR (stall for every read), `false` for SS
    /// (stall at first use).
    pub blocking_reads: bool,
    /// Write buffer depth (paper: 16).
    pub write_buffer_depth: usize,
    /// Read buffer depth for SS (paper: 16).
    pub read_buffer_depth: usize,
}

impl InOrder {
    /// The paper's SSBR configuration under `model`.
    pub fn ssbr(model: ConsistencyModel) -> InOrder {
        InOrder {
            model,
            blocking_reads: true,
            write_buffer_depth: 16,
            read_buffer_depth: 16,
        }
    }

    /// The paper's SS configuration under `model`.
    pub fn ss(model: ConsistencyModel) -> InOrder {
        InOrder {
            blocking_reads: false,
            ..InOrder::ssbr(model)
        }
    }
}

/// Which category a stall is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallClass {
    Read,
    Write,
}

#[derive(Debug)]
struct Engine<'a> {
    cfg: InOrder,
    program: &'a Program,
    now: u64,
    /// Buffered writes/releases: (kind, completion time).
    writes: VecDeque<(MemOpKind, u64)>,
    /// Outstanding (non-blocking) reads: completion times.
    reads: VecDeque<u64>,
    /// Per-register value-ready times (ints 0..32, fp 32..64).
    reg_ready: [u64; 64],
    /// PC of the trace entry currently executing, for stall blame.
    #[cfg(feature = "obs")]
    cur_pc: u32,
    result: ExecutionResult,
}

impl<'a> Engine<'a> {
    fn new(cfg: InOrder, program: &'a Program) -> Engine<'a> {
        Engine {
            cfg,
            program,
            now: 0,
            writes: VecDeque::new(),
            reads: VecDeque::new(),
            reg_ready: [0; 64],
            #[cfg(feature = "obs")]
            cur_pc: 0,
            result: ExecutionResult::default(),
        }
    }

    /// Records `cycles` stalled cycles starting at `from`, blamed on
    /// the current instruction.
    #[cfg(feature = "obs")]
    fn obs_stall(&self, from: u64, cycles: u64, class: obs::StallClass, cause: obs::StallCause) {
        let pc = self.cur_pc;
        obs::with(|r| r.stall_span(from, cycles, pc, class, cause));
    }

    fn stall_to(&mut self, t: u64, class: StallClass) {
        if t > self.now {
            let d = t - self.now;
            match class {
                StallClass::Read => self.result.breakdown.read += d,
                StallClass::Write => self.result.breakdown.write += d,
            }
            #[cfg(feature = "obs")]
            {
                // Every read-class wait in this model is ultimately a
                // wait for an outstanding load's value (operand stalls
                // included), so it attributes as a read miss; write-
                // class waits are buffered-write drains.
                let (c, cause) = match class {
                    StallClass::Read => (obs::StallClass::Read, obs::StallCause::ReadMiss),
                    StallClass::Write => (obs::StallClass::Write, obs::StallCause::WriteMiss),
                };
                self.obs_stall(self.now, d, c, cause);
            }
            self.now = t;
        }
    }

    fn retire_buffers(&mut self) {
        let now = self.now;
        while self.writes.front().is_some_and(|&(_, t)| t <= now) {
            self.writes.pop_front();
        }
        while self.reads.front().is_some_and(|&t| t <= now) {
            self.reads.pop_front();
        }
    }

    /// The time by which every earlier buffered operation that `kind`
    /// must wait for will have performed, with the class of the
    /// latest constraint for attribution.
    fn constraint(&self, kind: MemOpKind) -> (u64, StallClass) {
        let mut t = self.now;
        let mut class = StallClass::Read;
        for &(k, done) in &self.writes {
            if self.cfg.model.must_wait_for(k, kind) && done > t {
                t = done;
                class = StallClass::Write;
            }
        }
        for &done in &self.reads {
            if self.cfg.model.must_wait_for(MemOpKind::Read, kind) && done > t {
                t = done;
                class = StallClass::Read;
            }
        }
        (t, class)
    }

    /// Stall until the processor may logically issue an operation of
    /// `kind` (loads and acquires stall the in-order pipe; buffered
    /// writes do not go through here).
    fn wait_for_issue(&mut self, kind: MemOpKind) {
        let (t, class) = self.constraint(kind);
        self.stall_to(t, class);
    }

    /// The completion time a buffered write/release observed now would
    /// have, honoring ordering against earlier buffered operations.
    fn buffered_completion(&self, kind: MemOpKind, latency: u32) -> u64 {
        let (t, _) = self.constraint(kind);
        t.max(self.now) + latency as u64
    }

    /// Stall (as `class`) until the write buffer has a free slot.
    fn wait_for_write_slot(&mut self) {
        // Drop already-completed entries first: `now` may have moved
        // past them during an operand stall, and a buffer that is only
        // stale-full costs nothing.
        self.retire_buffers();
        while self.writes.len() >= self.cfg.write_buffer_depth {
            let (_, head) = *self.writes.front().expect("non-empty");
            self.result.stats.write_buffer_full_stalls += 1;
            self.stall_to(head, StallClass::Write);
            self.retire_buffers();
        }
    }

    /// For SS: stall until all source registers of the instruction at
    /// `pc` are ready (the first-use stall).
    fn wait_for_operands(&mut self, pc: u32) {
        if self.cfg.blocking_reads {
            return; // registers are always ready on a blocking machine
        }
        let Some(instr) = self.program.fetch(pc as usize) else {
            return;
        };
        let mut t = self.now;
        for r in instr.int_sources().iter() {
            t = t.max(self.reg_ready[r.index()]);
        }
        for r in instr.fp_sources().iter() {
            t = t.max(self.reg_ready[32 + r.index()]);
        }
        self.stall_to(t, StallClass::Read);
    }

    fn set_dest_ready(&mut self, pc: u32, at: u64) {
        let Some(instr) = self.program.fetch(pc as usize) else {
            return;
        };
        if let Some(r) = instr.int_dest() {
            self.reg_ready[r.index()] = at;
        }
        if let Some(r) = instr.fp_dest() {
            self.reg_ready[32 + r.index()] = at;
        }
    }

    fn run(mut self, trace: &Trace) -> ExecutionResult {
        for entry in trace.iter() {
            self.step(entry);
        }
        self.finish()
    }

    fn run_source(
        mut self,
        source: &mut dyn lookahead_trace::TraceSource,
    ) -> Result<ExecutionResult, lookahead_trace::StreamError> {
        while let Some(chunk) = source.next_chunk()? {
            for view in chunk.views() {
                self.step(&view);
            }
        }
        Ok(self.finish())
    }

    /// Advances the engine over one trace entry — the single body both
    /// the materialized and streamed passes run, so they agree by
    /// construction. Written against the [`EntryCols`] accessors, it
    /// monomorphizes to direct SoA column reads on the streamed path.
    fn step<E: EntryCols>(&mut self, entry: &E) {
        {
            #[cfg(feature = "obs")]
            {
                self.cur_pc = entry.pc();
            }
            self.retire_buffers();
            self.wait_for_operands(entry.pc());
            self.result.stats.instructions += 1;
            // Every instruction contributes exactly one busy cycle in
            // this model, so attribution's busy count equals the
            // instruction count.
            #[cfg(feature = "obs")]
            obs::with(|r| r.busy_cycle());
            match entry.class() {
                OpClass::Compute | OpClass::Jump => {
                    self.result.breakdown.busy += 1;
                    self.set_dest_ready(entry.pc(), self.now + 1);
                    self.now += 1;
                }
                OpClass::Branch => {
                    self.result.stats.branches += 1;
                    self.result.breakdown.busy += 1;
                    self.now += 1;
                }
                OpClass::Load => {
                    let latency = entry.latency();
                    self.wait_for_issue(MemOpKind::Read);
                    self.retire_buffers();
                    self.result.breakdown.busy += 1;
                    if self.cfg.blocking_reads {
                        self.result.breakdown.read += (latency - 1) as u64;
                        #[cfg(feature = "obs")]
                        self.obs_stall(
                            self.now + 1,
                            (latency - 1) as u64,
                            obs::StallClass::Read,
                            obs::StallCause::ReadMiss,
                        );
                        self.now += latency as u64;
                    } else {
                        // Non-blocking: issue, record availability,
                        // move on. Structural: bounded read buffer.
                        while self.reads.len() >= self.cfg.read_buffer_depth {
                            let head = *self.reads.front().expect("non-empty");
                            self.stall_to(head, StallClass::Read);
                            self.retire_buffers();
                        }
                        let done = self.now + latency as u64;
                        self.reads.push_back(done);
                        self.set_dest_ready(entry.pc(), done);
                        self.now += 1;
                    }
                }
                OpClass::Store => {
                    self.wait_for_write_slot();
                    let done = self.buffered_completion(MemOpKind::Write, entry.latency());
                    self.writes.push_back((MemOpKind::Write, done));
                    self.result.breakdown.busy += 1;
                    self.now += 1;
                }
                OpClass::Sync(sync) => {
                    let kind = sync_mem_kind(sync);
                    match sync {
                        SyncKind::Lock | SyncKind::WaitEvent | SyncKind::Barrier => {
                            let (wait, access) = (entry.wait(), entry.latency());
                            self.wait_for_issue(kind);
                            self.retire_buffers();
                            self.result.breakdown.busy += 1;
                            self.result.breakdown.sync += wait as u64 + (access - 1) as u64;
                            #[cfg(feature = "obs")]
                            {
                                let (now, addr) = (self.now, entry.addr());
                                let dur = wait as u64 + access as u64;
                                obs::with(|r| r.event(now, EventKind::AcquireWait { addr, dur }));
                                self.obs_stall(
                                    self.now + 1,
                                    wait as u64 + (access - 1) as u64,
                                    obs::StallClass::Sync,
                                    obs::StallCause::Acquire,
                                );
                            }
                            self.now += wait as u64 + access as u64;
                        }
                        SyncKind::Unlock | SyncKind::SetEvent => {
                            self.wait_for_write_slot();
                            let done = self.buffered_completion(kind, entry.latency());
                            self.writes.push_back((kind, done));
                            self.result.breakdown.busy += 1;
                            self.now += 1;
                        }
                    }
                }
            }
        }
    }

    /// Settles end-of-trace state and returns the result.
    fn finish(mut self) -> ExecutionResult {
        // Drain: execution ends when the last buffered operation
        // performs. Completion times are not monotonic in issue order
        // (a hit issued after a miss finishes first), so take the max.
        let read_drain = self.reads.iter().copied().max().unwrap_or(0);
        let write_drain = self.writes.iter().map(|&(_, t)| t).max().unwrap_or(0);
        if read_drain > self.now || write_drain > self.now {
            if write_drain >= read_drain {
                self.stall_to(read_drain, StallClass::Read);
                self.stall_to(write_drain, StallClass::Write);
            } else {
                self.stall_to(write_drain, StallClass::Write);
                self.stall_to(read_drain, StallClass::Read);
            }
        }
        self.result
    }
}

fn sync_mem_kind(kind: SyncKind) -> MemOpKind {
    match kind {
        SyncKind::Lock | SyncKind::WaitEvent => MemOpKind::Acquire,
        SyncKind::Unlock | SyncKind::SetEvent => MemOpKind::Release,
        SyncKind::Barrier => MemOpKind::Barrier,
    }
}

impl ProcessorModel for InOrder {
    fn name(&self) -> String {
        format!(
            "{}/{}",
            if self.blocking_reads { "SSBR" } else { "SS" },
            self.model
        )
    }

    fn run(&self, program: &Program, trace: &Trace) -> ExecutionResult {
        Engine::new(*self, program).run(trace)
    }

    fn run_source(
        &self,
        program: &Program,
        source: &mut dyn lookahead_trace::TraceSource,
    ) -> Result<ExecutionResult, lookahead_trace::StreamError> {
        Engine::new(*self, program).run_source(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use lookahead_isa::{Assembler, IntReg};
    use lookahead_trace::{MemAccess, SyncAccess, TraceEntry, TraceOp};

    /// A program/trace pair: two miss stores then a compute tail.
    fn store_heavy() -> (Program, Trace) {
        let mut a = Assembler::new();
        a.li(IntReg::T0, 0);
        a.store(IntReg::T0, IntReg::T0, 0);
        a.store(IntReg::T0, IntReg::T0, 64);
        for _ in 0..10 {
            a.addi(IntReg::T1, IntReg::T1, 1);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut entries = vec![TraceEntry::compute(0)];
        entries.push(TraceEntry {
            pc: 1,
            op: TraceOp::Store(MemAccess::miss(0, 50)),
        });
        entries.push(TraceEntry {
            pc: 2,
            op: TraceOp::Store(MemAccess::miss(64, 50)),
        });
        for i in 0..10 {
            entries.push(TraceEntry::compute(3 + i));
        }
        (p, Trace::from_entries(entries))
    }

    #[test]
    fn write_latency_hidden_under_all_models_with_buffering() {
        // Writes never stall the processor here (buffer is deep
        // enough and nothing reads afterwards), so SSBR under any
        // model beats BASE, which serializes both stores.
        let (p, t) = store_heavy();
        let base = Base.run(&p, &t);
        for model in ConsistencyModel::ALL {
            let r = InOrder::ssbr(model).run(&p, &t);
            assert!(
                r.cycles() < base.cycles(),
                "{model}: {} !< {}",
                r.cycles(),
                base.cycles()
            );
        }
    }

    /// Store miss then load miss to a different line.
    fn store_then_load() -> (Program, Trace) {
        let mut a = Assembler::new();
        a.store(IntReg::T0, IntReg::T0, 0);
        a.load(IntReg::T1, IntReg::T0, 64);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(vec![
            TraceEntry {
                pc: 0,
                op: TraceOp::Store(MemAccess::miss(0, 50)),
            },
            TraceEntry {
                pc: 1,
                op: TraceOp::Load(MemAccess::miss(64, 50)),
            },
        ]);
        (p, t)
    }

    #[test]
    fn sc_read_waits_for_pending_write_but_pc_bypasses() {
        let (p, t) = store_then_load();
        let sc = InOrder::ssbr(ConsistencyModel::Sc).run(&p, &t);
        let pc = InOrder::ssbr(ConsistencyModel::Pc).run(&p, &t);
        // SC: store issues (1 busy), load waits ~49 more for the
        // store to perform, then 50 for itself.
        assert!(sc.breakdown.write >= 45, "SC write stall: {}", sc.breakdown);
        assert_eq!(pc.breakdown.write, 0, "PC read bypasses: {}", pc.breakdown);
        assert!(pc.cycles() < sc.cycles());
    }

    #[test]
    fn serialized_vs_overlapped_write_drain() {
        // Two miss stores: under PC they serialize in the buffer
        // (drain by ~100), under RC they overlap (drain by ~51).
        // A trailing release observes the difference.
        let mut a = Assembler::new();
        a.store(IntReg::T0, IntReg::T0, 0);
        a.store(IntReg::T0, IntReg::T0, 64);
        a.unlock(IntReg::T0, 128);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(vec![
            TraceEntry {
                pc: 0,
                op: TraceOp::Store(MemAccess::miss(0, 50)),
            },
            TraceEntry {
                pc: 1,
                op: TraceOp::Store(MemAccess::miss(64, 50)),
            },
            TraceEntry {
                pc: 2,
                op: TraceOp::Sync(SyncAccess {
                    kind: SyncKind::Unlock,
                    addr: 128,
                    wait: 0,
                    access: 50,
                }),
            },
        ]);
        let pc = InOrder::ssbr(ConsistencyModel::Pc).run(&p, &t);
        let rc = InOrder::ssbr(ConsistencyModel::Rc).run(&p, &t);
        assert!(
            rc.cycles() + 40 < pc.cycles(),
            "RC {} should beat PC {} by ~one miss",
            rc.cycles(),
            pc.cycles()
        );
    }

    #[test]
    fn write_buffer_full_stalls_processor() {
        let mut a = Assembler::new();
        for i in 0..4 {
            a.store(IntReg::T0, IntReg::T0, i * 64);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let entries: Vec<_> = (0..4)
            .map(|i| TraceEntry {
                pc: i,
                op: TraceOp::Store(MemAccess::miss(i as u64 * 64, 50)),
            })
            .collect();
        let t = Trace::from_entries(entries);
        let tiny = InOrder {
            write_buffer_depth: 2,
            ..InOrder::ssbr(ConsistencyModel::Rc)
        };
        let r = tiny.run(&p, &t);
        assert!(r.breakdown.write > 0, "{}", r.breakdown);
        assert!(r.stats.write_buffer_full_stalls > 0);
    }

    /// Load miss whose value is used immediately (load-use).
    fn load_use(gap: usize) -> (Program, Trace) {
        let mut a = Assembler::new();
        a.load(IntReg::T1, IntReg::T0, 0);
        for _ in 0..gap {
            a.addi(IntReg::T2, IntReg::T2, 1); // independent
        }
        a.addi(IntReg::T3, IntReg::T1, 1); // first use
        a.halt();
        let p = a.assemble().unwrap();
        let mut entries = vec![TraceEntry {
            pc: 0,
            op: TraceOp::Load(MemAccess::miss(0, 50)),
        }];
        for i in 0..gap {
            entries.push(TraceEntry::compute(1 + i as u32));
        }
        entries.push(TraceEntry::compute(1 + gap as u32));
        (p, Trace::from_entries(entries))
    }

    #[test]
    fn ss_overlaps_independent_work_until_first_use() {
        let (p0, t0) = load_use(0);
        let (p40, t40) = load_use(40);
        let rc = ConsistencyModel::Rc;
        let ssbr0 = InOrder::ssbr(rc).run(&p0, &t0);
        let ss0 = InOrder::ss(rc).run(&p0, &t0);
        // With no independent work, SS gains roughly nothing.
        assert!(ss0.cycles() + 2 >= ssbr0.cycles());
        let ssbr40 = InOrder::ssbr(rc).run(&p40, &t40);
        let ss40 = InOrder::ss(rc).run(&p40, &t40);
        // With 40 independent instructions, SS hides most of the miss.
        assert!(
            ss40.cycles() + 35 < ssbr40.cycles(),
            "SS {} vs SSBR {}",
            ss40.cycles(),
            ssbr40.cycles()
        );
        assert!(ss40.breakdown.read < ssbr40.breakdown.read);
    }

    #[test]
    fn ss_read_buffer_capacity_limits_overlap() {
        // More outstanding loads than buffer slots forces stalls.
        let mut a = Assembler::new();
        for i in 0..6 {
            a.load(IntReg::T1, IntReg::T0, i * 64);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let entries: Vec<_> = (0..6)
            .map(|i| TraceEntry {
                pc: i,
                op: TraceOp::Load(MemAccess::miss(i as u64 * 64, 50)),
            })
            .collect();
        let t = Trace::from_entries(entries);
        let wide = InOrder::ss(ConsistencyModel::Rc).run(&p, &t);
        let narrow = InOrder {
            read_buffer_depth: 2,
            ..InOrder::ss(ConsistencyModel::Rc)
        }
        .run(&p, &t);
        assert!(narrow.cycles() > wide.cycles());
    }

    #[test]
    fn acquire_charged_to_sync_time() {
        let mut a = Assembler::new();
        a.lock(IntReg::T0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(vec![TraceEntry {
            pc: 0,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Lock,
                addr: 0,
                wait: 100,
                access: 50,
            }),
        }]);
        let r = InOrder::ssbr(ConsistencyModel::Rc).run(&p, &t);
        assert_eq!(r.breakdown.sync, 100 + 49);
        assert_eq!(r.breakdown.busy, 1);
    }

    #[test]
    fn drain_covers_out_of_order_completions() {
        // Regression: a long miss followed by a short hit at end of
        // trace — the drain must wait for the *max* completion, not
        // the last-issued read's.
        let mut a = Assembler::new();
        a.load(IntReg::T1, IntReg::T0, 0);
        a.load(IntReg::T2, IntReg::T0, 64);
        a.halt();
        let p = a.assemble().unwrap();
        let t = Trace::from_entries(vec![
            TraceEntry {
                pc: 0,
                op: TraceOp::Load(MemAccess::miss(0, 50)),
            },
            TraceEntry {
                pc: 1,
                op: TraceOp::Load(MemAccess::hit(64)),
            },
        ]);
        let r = InOrder::ss(ConsistencyModel::Rc).run(&p, &t);
        assert!(
            r.cycles() >= 50,
            "drain dropped the in-flight miss: {} cycles",
            r.cycles()
        );
    }

    #[test]
    fn names() {
        assert_eq!(InOrder::ssbr(ConsistencyModel::Sc).name(), "SSBR/SC");
        assert_eq!(InOrder::ss(ConsistencyModel::Rc).name(), "SS/RC");
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let (p, t) = store_then_load();
        for model in ConsistencyModel::ALL {
            for cfg in [InOrder::ssbr(model), InOrder::ss(model)] {
                let r = cfg.run(&p, &t);
                assert_eq!(r.breakdown.busy, t.len() as u64, "{}", cfg.name());
                assert!(r.cycles() >= t.len() as u64);
            }
        }
    }
}
