//! Processor timing models and consistency enforcement — the paper's
//! contribution.
//!
//! This crate re-times the annotated per-processor traces produced by
//! `lookahead-multiproc` under different processor architectures and
//! memory consistency models, reproducing the experimental apparatus
//! of Gharachorloo, Gupta & Hennessy (ISCA 1992):
//!
//! * [`consistency`] — the ordering rules of sequential consistency
//!   (SC), processor consistency (PC), weak ordering (WO) and release
//!   consistency (RC), expressed as a pairwise must-wait matrix over
//!   memory-operation kinds (the paper's Figure 1);
//! * [`btb`] — the 2048-entry 4-way branch target buffer with 2-bit
//!   counters used for dynamic branch prediction (§3.1, Table 3);
//! * [`base`] — the **BASE** processor: in-order, no overlap at all,
//!   the 100% reference bar of Figure 3;
//! * [`inorder`] — the statically scheduled processors: **SSBR**
//!   (blocking reads, 16-deep write buffer) and **SS** (non-blocking
//!   reads, stall at first use, 16-deep read buffer);
//! * [`ds`] — the dynamically scheduled processor derived from
//!   Johnson's design: reorder buffer (window) of 16–256 entries,
//!   register renaming, speculative execution with BTB prediction,
//!   a store buffer with forwarding, a lockup-free cache with MSHRs
//!   and a single port, FIFO retirement, plus the §4.1.3 ablation
//!   knobs (perfect branch prediction, ignore data dependences);
//! * [`model`] — the [`model::ProcessorModel`] trait
//!   and the result/statistics types shared by all models;
//! * [`prefetch`] — the Baer–Chen stride prefetcher the paper's §6
//!   discusses, as a composable trace transformer;
//! * [`contexts`] — a blocked-multithreading (multiple hardware
//!   contexts) processor, the §5 alternative latency-tolerance
//!   technique, for head-to-head comparison with dynamic scheduling.
//!
//! # Example
//!
//! Re-time a trace under RC with a 64-entry window and compare against
//! the BASE processor:
//!
//! ```
//! use lookahead_core::base::Base;
//! use lookahead_core::consistency::ConsistencyModel;
//! use lookahead_core::ds::{Ds, DsConfig};
//! use lookahead_core::model::ProcessorModel;
//! use lookahead_trace::{Trace, TraceEntry, TraceOp, MemAccess};
//! use lookahead_isa::{Assembler, IntReg};
//!
//! // Two independent load misses: BASE serializes them, DS under RC
//! // overlaps them.
//! let mut a = Assembler::new();
//! a.load(IntReg::T1, IntReg::T0, 0);
//! a.load(IntReg::T2, IntReg::T0, 64);
//! a.halt();
//! let program = a.assemble()?;
//! let trace = Trace::from_entries(vec![
//!     TraceEntry { pc: 0, op: TraceOp::Load(MemAccess::miss(0, 50)) },
//!     TraceEntry { pc: 1, op: TraceOp::Load(MemAccess::miss(64, 50)) },
//! ]);
//!
//! let base = Base.run(&program, &trace);
//! let ds = Ds::new(DsConfig { window_size: 64, ..DsConfig::rc() }).run(&program, &trace);
//! assert!(ds.breakdown.total() < base.breakdown.total());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod base;
pub mod btb;
pub mod consistency;
pub mod contexts;
pub mod ds;
pub mod inorder;
pub mod model;
pub mod prefetch;

pub use btb::{Btb, BtbConfig};
pub use consistency::{ConsistencyModel, MemOpKind};
pub use model::{ExecutionResult, ProcessorModel, RunStats};
