//! The stall-attribution reconciliation invariant (only meaningful
//! with the instrumentation compiled in): for every processor model,
//! every cycle of a run is accounted exactly once, and the per-class
//! attribution sums equal the model's own execution-time breakdown.
//!
//! Concretely, with a fresh recorder installed around a run:
//!
//! * `class_cycles(Read) == breakdown.read` (ditto Write, Sync);
//! * `busy_cycles + class_cycles(Fetch) == breakdown.busy` (the models
//!   fold fetch-limited cycles into busy);
//! * `total_cycles() == cycles()`.
//!
//! This pins the instrumentation to the timing model: a stall path
//! added to a model without a matching attribution call fails here.
#![cfg(feature = "obs")]

use lookahead_core::base::Base;
use lookahead_core::contexts::Contexts;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::{ExecutionResult, ProcessorModel};
use lookahead_core::ConsistencyModel;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_obs::{Recorder, StallAttribution, StallClass};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};

/// A random workload over the full trace vocabulary: loads, stores,
/// compute, and properly paired lock/unlock synchronization.
fn gen_workload(rng: &mut XorShift64) -> (Program, Trace) {
    let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
    let steps = rng.range_usize(99) + 1;
    let mut a = Assembler::new();
    let mut entries = Vec::new();
    let mut pc = 0u32;
    let mut held_lock = false;
    for _ in 0..steps {
        let op = rng.next_below(8);
        let addr = rng.next_below(48) * 8;
        let miss = rng.next_bool();
        let r = *rng.choose(&regs);
        let latency = if miss { 50 } else { 1 };
        match op {
            0..=2 => {
                a.load(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Load(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            3..=4 => {
                a.store(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Store(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            5 => {
                let (kind, wait) = if held_lock {
                    (SyncKind::Unlock, 0)
                } else {
                    (SyncKind::Lock, rng.next_below(120) as u32)
                };
                if held_lock {
                    a.unlock(IntReg::G1, 0);
                } else {
                    a.lock(IntReg::G1, 0);
                }
                held_lock = !held_lock;
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Sync(SyncAccess {
                        kind,
                        addr: 8,
                        wait,
                        access: if miss { 50 } else { 1 },
                    }),
                });
            }
            _ => {
                a.addi(r, r, 1);
                entries.push(TraceEntry::compute(pc));
            }
        }
        pc += 1;
    }
    if held_lock {
        a.unlock(IntReg::G1, 0);
        entries.push(TraceEntry {
            pc,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Unlock,
                addr: 8,
                wait: 0,
                access: 1,
            }),
        });
    }
    a.halt();
    (a.assemble().unwrap(), Trace::from_entries(entries))
}

/// Runs `model` with a fresh recorder installed and returns the result
/// together with the captured attribution.
fn record(
    model: &dyn ProcessorModel,
    program: &Program,
    trace: &Trace,
) -> (ExecutionResult, StallAttribution) {
    lookahead_obs::install(Recorder::new(0));
    let result = model.run(program, trace);
    let rec = lookahead_obs::take().expect("recorder installed above");
    (result, rec.attribution)
}

/// Asserts the full reconciliation for one recorded run.
fn assert_reconciles(tag: &str, result: &ExecutionResult, attr: &StallAttribution) {
    let b = &result.breakdown;
    assert_eq!(
        attr.class_cycles(StallClass::Read),
        b.read,
        "{tag}: read cycles"
    );
    assert_eq!(
        attr.class_cycles(StallClass::Write),
        b.write,
        "{tag}: write cycles"
    );
    assert_eq!(
        attr.class_cycles(StallClass::Sync),
        b.sync,
        "{tag}: sync cycles"
    );
    assert_eq!(
        attr.busy_cycles + attr.class_cycles(StallClass::Fetch),
        b.busy,
        "{tag}: busy cycles"
    );
    assert_eq!(attr.total_cycles(), result.cycles(), "{tag}: total cycles");
}

const MODELS: [ConsistencyModel; 4] = [
    ConsistencyModel::Sc,
    ConsistencyModel::Pc,
    ConsistencyModel::Wo,
    ConsistencyModel::Rc,
];

#[test]
fn ds_attribution_reconciles() {
    let mut rng = XorShift64::seed_from_u64(0xA11);
    for case in 0..24 {
        let (program, trace) = gen_workload(&mut rng);
        for model in MODELS {
            for w in [4, 16, 64] {
                let ds = Ds::new(DsConfig::with_model(model).window(w));
                let (result, attr) = record(&ds, &program, &trace);
                assert_reconciles(&format!("case {case} {}", ds.name()), &result, &attr);
            }
        }
    }
}

#[test]
fn inorder_attribution_reconciles() {
    let mut rng = XorShift64::seed_from_u64(0xA12);
    for case in 0..24 {
        let (program, trace) = gen_workload(&mut rng);
        for model in MODELS {
            for io in [InOrder::ssbr(model), InOrder::ss(model)] {
                let (result, attr) = record(&io, &program, &trace);
                assert_reconciles(&format!("case {case} {}", io.name()), &result, &attr);
            }
        }
    }
}

#[test]
fn base_attribution_reconciles() {
    let mut rng = XorShift64::seed_from_u64(0xA13);
    for case in 0..24 {
        let (program, trace) = gen_workload(&mut rng);
        let (result, attr) = record(&Base, &program, &trace);
        assert_reconciles(&format!("case {case} BASE"), &result, &attr);
    }
}

#[test]
fn contexts_attribution_reconciles() {
    let mut rng = XorShift64::seed_from_u64(0xA14);
    for case in 0..24 {
        // run_traces takes several per-context traces; the program is
        // unused by the contexts model, so record() fits single-trace
        // runs only. Install/take around the multi-trace call by hand.
        let traces: Vec<(Program, Trace)> = (0..3).map(|_| gen_workload(&mut rng)).collect();
        let refs: Vec<&Trace> = traces.iter().map(|(_, t)| t).collect();
        let mc = Contexts::default();
        lookahead_obs::install(Recorder::new(0));
        let result = mc.run_traces(&refs);
        let attr = lookahead_obs::take()
            .expect("recorder installed above")
            .attribution;
        assert_reconciles(&format!("case {case} {}", mc.name()), &result, &attr);
        // Switch overhead is charged to busy; check it is visible.
        assert!(
            attr.busy_cycles >= result.stats.instructions,
            "case {case}: busy must include switch overhead"
        );
    }
}

/// The recorder also journals coalesced stall spans whose durations
/// must sum to the per-cycle attribution totals (the journal and the
/// matrix describe the same cycles at different granularity).
#[test]
fn journal_stall_spans_sum_to_attribution() {
    use lookahead_obs::EventKind;
    let mut rng = XorShift64::seed_from_u64(0xA15);
    for case in 0..24 {
        let (program, trace) = gen_workload(&mut rng);
        let ds = Ds::new(DsConfig::rc().window(16));
        lookahead_obs::install(Recorder::new(0));
        let result = ds.run(&program, &trace);
        let rec = lookahead_obs::take().expect("recorder installed above");
        if rec.journal.dropped() > 0 {
            continue; // ring wrapped: the tail alone cannot sum up
        }
        let span_total: u64 = rec
            .journal
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Stall { dur, .. } => Some(dur),
                _ => None,
            })
            .sum();
        assert_eq!(
            span_total,
            rec.attribution.stall_cycles(),
            "case {case}: journal spans vs attribution matrix"
        );
        assert_eq!(
            rec.attribution.total_cycles(),
            result.cycles(),
            "case {case}"
        );
    }
}
