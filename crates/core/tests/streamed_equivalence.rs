//! The streaming contract of every re-timing engine: pulling the
//! trace chunk-by-chunk through [`ProcessorModel::run_source`] must
//! produce results identical to materializing the whole trace and
//! calling [`ProcessorModel::run`] — the full breakdown and all
//! statistics, for every engine (BASE, SSBR, SS, DS), every
//! consistency model, and chunk sizes chosen to hit every boundary
//! case (single-entry chunks, chunk sizes coprime to the trace
//! length, the default, and one chunk covering the whole trace).

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::{ConsistencyModel, ProcessorModel};
use lookahead_isa::instr::BranchCond;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_trace::{
    MemAccess, SliceSource, SyncAccess, Trace, TraceEntry, TraceOp, DEFAULT_CHUNK_LEN,
};

/// A random workload over the full trace vocabulary (mirrors the
/// skip-equivalence generator: loads, stores, paired lock/unlock,
/// data-dependent branches, varying miss latencies).
fn gen_workload(rng: &mut XorShift64) -> (Program, Trace) {
    let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
    let latencies = [20u32, 50, 100, 200];
    let steps = rng.range_usize(149) + 1;
    let mut a = Assembler::new();
    let mut entries = Vec::new();
    let mut pc = 0u32;
    let mut held_lock = false;
    for _ in 0..steps {
        let op = rng.next_below(10);
        let addr = rng.next_below(48) * 8;
        let miss = rng.next_bool();
        let r = *rng.choose(&regs);
        let latency = if miss { *rng.choose(&latencies) } else { 1 };
        match op {
            0..=2 => {
                a.load(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Load(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            3..=4 => {
                a.store(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Store(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            5 => {
                let (kind, wait) = if held_lock {
                    (SyncKind::Unlock, 0)
                } else {
                    (SyncKind::Lock, rng.next_below(150) as u32)
                };
                if held_lock {
                    a.unlock(IntReg::G1, 0);
                } else {
                    a.lock(IntReg::G1, 0);
                }
                held_lock = !held_lock;
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Sync(SyncAccess {
                        kind,
                        addr: 8,
                        wait,
                        access: if miss { latency.max(2) } else { 1 },
                    }),
                });
            }
            6 => {
                let fall = a.label();
                a.branch(BranchCond::Eq, r, IntReg::ZERO, fall);
                a.bind(fall).unwrap();
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Branch {
                        taken: rng.next_bool(),
                        target: pc + 1,
                    },
                });
            }
            _ => {
                a.addi(r, r, 1);
                entries.push(TraceEntry::compute(pc));
            }
        }
        pc += 1;
    }
    if held_lock {
        a.unlock(IntReg::G1, 0);
        entries.push(TraceEntry {
            pc,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Unlock,
                addr: 8,
                wait: 0,
                access: 1,
            }),
        });
    }
    a.halt();
    (a.assemble().unwrap(), Trace::from_entries(entries))
}

const MODELS: [ConsistencyModel; 4] = [
    ConsistencyModel::Sc,
    ConsistencyModel::Pc,
    ConsistencyModel::Wo,
    ConsistencyModel::Rc,
];

/// Chunk sizes exercising every boundary: one entry per chunk, a size
/// coprime to most trace lengths, the default, and a single chunk
/// larger than the trace.
fn chunk_sizes(trace: &Trace) -> [usize; 4] {
    [1, 7, DEFAULT_CHUNK_LEN, trace.len() + 1]
}

fn assert_streamed_matches(
    tag: &str,
    model: &dyn ProcessorModel,
    program: &Program,
    trace: &Trace,
) {
    let materialized = model.run(program, trace);
    for chunk_len in chunk_sizes(trace) {
        let mut source = SliceSource::with_chunk_len(trace, chunk_len);
        let streamed = model
            .run_source(program, &mut source)
            .unwrap_or_else(|e| panic!("{tag} chunk {chunk_len}: stream failed: {e}"));
        assert_eq!(
            streamed,
            materialized,
            "{tag} ({}) chunk {chunk_len}: streamed and materialized runs disagree",
            model.name()
        );
    }
}

#[test]
fn base_and_inorder_stream_equals_materialized() {
    let mut rng = XorShift64::seed_from_u64(0x57E4_0001);
    for case in 0..16 {
        let (program, trace) = gen_workload(&mut rng);
        assert_streamed_matches(&format!("case {case}"), &Base, &program, &trace);
        for model in MODELS {
            for engine in [InOrder::ssbr(model), InOrder::ss(model)] {
                assert_streamed_matches(&format!("case {case}"), &engine, &program, &trace);
            }
        }
    }
}

#[test]
fn ds_stream_equals_materialized_across_windows_and_models() {
    let mut rng = XorShift64::seed_from_u64(0x57E4_0002);
    for case in 0..12 {
        let (program, trace) = gen_workload(&mut rng);
        for model in MODELS {
            for w in [1, 16, 64] {
                let ds = Ds::new(DsConfig::with_model(model).window(w));
                assert_streamed_matches(&format!("case {case} w{w}"), &ds, &program, &trace);
            }
        }
    }
}

#[test]
fn ds_stream_handles_degenerate_traces() {
    let mut a = Assembler::new();
    a.halt();
    let p = a.assemble().unwrap();
    assert_streamed_matches("empty", &Ds::new(DsConfig::rc()), &p, &Trace::new());

    let mut a = Assembler::new();
    a.load(IntReg::T1, IntReg::G0, 0);
    a.halt();
    let p = a.assemble().unwrap();
    let t = Trace::from_entries(vec![TraceEntry {
        pc: 0,
        op: TraceOp::Load(MemAccess::miss(0, 10_000)),
    }]);
    assert_streamed_matches("one miss", &Ds::new(DsConfig::rc()), &p, &t);
}
