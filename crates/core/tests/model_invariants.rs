//! Cross-model invariants of the processor timing models, checked on
//! generated traces.

use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ProcessorModel;
use lookahead_core::ConsistencyModel;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};

/// A sync-free random workload: loads/stores/compute only.
fn gen_syncfree(rng: &mut XorShift64) -> (Program, Trace) {
    let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
    let steps = rng.range_usize(99) + 1;
    let mut a = Assembler::new();
    let mut entries = Vec::new();
    for pc in 0..steps as u32 {
        let op = rng.next_below(6);
        let addr = rng.next_below(48) * 8;
        let miss = rng.next_bool();
        let r = *rng.choose(&regs);
        let latency = if miss { 50 } else { 1 };
        match op {
            0..=2 => {
                a.load(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Load(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            3 => {
                a.store(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Store(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            _ => {
                a.addi(r, r, 1);
                entries.push(TraceEntry::compute(pc));
            }
        }
    }
    a.halt();
    (a.assemble().unwrap(), Trace::from_entries(entries))
}

/// Without synchronization, WO and RC impose identical constraints —
/// every model pair that differs only in sync handling must produce
/// identical timing on sync-free traces.
#[test]
fn wo_equals_rc_without_sync() {
    let mut rng = XorShift64::seed_from_u64(0xC1);
    for case in 0..48 {
        let (program, trace) = gen_syncfree(&mut rng);
        for w in [16, 64] {
            let wo =
                Ds::new(DsConfig::with_model(ConsistencyModel::Wo).window(w)).run(&program, &trace);
            let rc = Ds::new(DsConfig::rc().window(w)).run(&program, &trace);
            assert_eq!(wo.breakdown, rc.breakdown, "case {case} window {w}");
        }
        let wo = InOrder::ssbr(ConsistencyModel::Wo).run(&program, &trace);
        let rc = InOrder::ssbr(ConsistencyModel::Rc).run(&program, &trace);
        assert_eq!(wo.breakdown, rc.breakdown, "case {case}");
    }
}

/// The DS window is an upper bound on overlap: an infinitely large
/// window (trace length) never loses to 256.
#[test]
fn window_saturates_at_trace_length() {
    let mut rng = XorShift64::seed_from_u64(0xC2);
    for case in 0..48 {
        let (program, trace) = gen_syncfree(&mut rng);
        let big = Ds::new(DsConfig::rc().window(trace.len().max(1)))
            .run(&program, &trace)
            .cycles();
        let w256 = Ds::new(DsConfig::rc().window(256))
            .run(&program, &trace)
            .cycles();
        assert!(
            big <= w256 + w256 / 64,
            "case {case}: big {big} vs 256 {w256}"
        );
    }
}

/// The issue-delay diagnostic records exactly one sample per read
/// miss.
#[test]
fn issue_delays_cover_every_read_miss() {
    let mut rng = XorShift64::seed_from_u64(0xC3);
    for case in 0..48 {
        let (program, trace) = gen_syncfree(&mut rng);
        let misses = trace
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Load(m) if m.miss))
            .count();
        let r = Ds::new(DsConfig::rc().window(64)).run(&program, &trace);
        assert_eq!(r.stats.read_miss_issue_delays.len(), misses, "case {case}");
    }
}

/// Retiming a trace is a pure function: every model gives the same
/// result again (no hidden state between runs).
#[test]
fn models_are_pure() {
    let mut rng = XorShift64::seed_from_u64(0xC4);
    for _ in 0..48 {
        let (program, trace) = gen_syncfree(&mut rng);
        let ds = Ds::new(DsConfig::rc().window(32));
        assert_eq!(ds.run(&program, &trace), ds.run(&program, &trace));
        let ss = InOrder::ss(ConsistencyModel::Pc);
        assert_eq!(ss.run(&program, &trace), ss.run(&program, &trace));
        assert_eq!(Base.run(&program, &trace), Base.run(&program, &trace));
    }
}

/// Acquire wait time is unhidable by construction: however large the
/// window, an acquire's recorded wait appears in full in the sync
/// section.
#[test]
fn acquire_wait_is_never_hidden() {
    let mut a = Assembler::new();
    for _ in 0..30 {
        a.addi(IntReg::T1, IntReg::T1, 1);
    }
    a.lock(IntReg::G1, 0);
    a.unlock(IntReg::G1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let mut entries: Vec<TraceEntry> = (0..30).map(TraceEntry::compute).collect();
    entries.push(TraceEntry {
        pc: 30,
        op: TraceOp::Sync(SyncAccess {
            kind: SyncKind::Lock,
            addr: 8,
            wait: 500,
            access: 50,
        }),
    });
    entries.push(TraceEntry {
        pc: 31,
        op: TraceOp::Sync(SyncAccess {
            kind: SyncKind::Unlock,
            addr: 8,
            wait: 0,
            access: 1,
        }),
    });
    let trace = Trace::from_entries(entries);
    for w in [16, 64, 256] {
        let r = Ds::new(DsConfig::rc().window(w)).run(&program, &trace);
        assert!(
            r.breakdown.sync >= 500,
            "window {w}: wait partially hidden ({})",
            r.breakdown.sync
        );
    }
}

/// The access component of an acquire IS hidable (the paper's PTHOR
/// observation) — but only when an earlier stall lets the window run
/// ahead of retirement (with 1-wide fetch, an acquire cannot decode
/// earlier than its position). A read miss before the acquire gives a
/// big window the chance to issue the lock access underneath the miss.
#[test]
fn acquire_access_is_hidable() {
    let mut a = Assembler::new();
    for _ in 0..5 {
        a.addi(IntReg::T1, IntReg::T1, 1);
    }
    a.load(IntReg::T2, IntReg::G0, 0);
    for _ in 0..5 {
        a.addi(IntReg::T3, IntReg::T3, 1);
    }
    a.lock(IntReg::G1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let mut entries: Vec<TraceEntry> = (0..5).map(TraceEntry::compute).collect();
    entries.push(TraceEntry {
        pc: 5,
        op: TraceOp::Load(MemAccess::miss(128, 50)),
    });
    entries.extend((6..11).map(TraceEntry::compute));
    entries.push(TraceEntry {
        pc: 11,
        op: TraceOp::Sync(SyncAccess {
            kind: SyncKind::Lock,
            addr: 8,
            wait: 0,
            access: 50,
        }),
    });
    let trace = Trace::from_entries(entries);
    let small = Ds::new(DsConfig::rc().window(2)).run(&program, &trace);
    let big = Ds::new(DsConfig::rc().window(64)).run(&program, &trace);
    assert!(
        big.cycles() + 30 < small.cycles(),
        "lock access not overlapped with the miss: small {} big {}",
        small.cycles(),
        big.cycles()
    );
}

/// A mismatched program/trace pair (user error) must degrade to wrong
/// timing, never to a silent hang: a trace *store* entry whose pc maps
/// onto an ALU instruction with a destination register used to leave
/// that register's consumers waiting forever.
#[test]
fn mismatched_program_and_trace_terminate() {
    let mut a = Assembler::new();
    a.addi(IntReg::T1, IntReg::T1, 1); // pc 0: ALU writing T1
    a.addi(IntReg::T2, IntReg::T1, 1); // pc 1: reads T1
    a.halt();
    let program = a.assemble().unwrap();
    // The trace claims pc 0 was a store (so it never "completes" as a
    // register producer) and pc 1 a compute reading T1.
    let trace = Trace::from_entries(vec![
        TraceEntry {
            pc: 0,
            op: TraceOp::Store(MemAccess::miss(64, 50)),
        },
        TraceEntry::compute(1),
    ]);
    let r = Ds::new(DsConfig::rc().window(16)).run(&program, &trace);
    assert!(
        r.cycles() < 10_000,
        "mismatch must not stall: {}",
        r.cycles()
    );
}
