//! The event-driven DS engine's correctness contract: skipping dead
//! cycles must be *invisible* in every reported number. For randomized
//! workloads across window sizes, MSHR limits, latencies, consistency
//! models and the §4.1.3/§6 ablations, the skip-ahead engine
//! ([`Ds::run`]) must produce results identical to the retained
//! cycle-by-cycle reference stepper ([`Ds::run_reference`]) — not just
//! total cycles but the full busy/read/write/sync breakdown and all
//! statistics — and both must satisfy the accounting invariant
//! `busy + read + write + sync == total`.

use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::{ConsistencyModel, ProcessorModel};
use lookahead_isa::instr::BranchCond;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, IntReg, Program, SyncKind};
use lookahead_trace::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};

/// A random workload over the full trace vocabulary — loads, stores,
/// compute, paired lock/unlock, and data-dependent branches (which
/// exercise the misprediction fetch-stall / fetch-resume path the skip
/// logic must respect). Miss latencies vary per access so completion
/// times do not align on a lattice.
fn gen_workload(rng: &mut XorShift64) -> (Program, Trace) {
    let regs = [IntReg::T1, IntReg::T2, IntReg::T3, IntReg::T4];
    let latencies = [20u32, 50, 100, 200];
    let steps = rng.range_usize(149) + 1;
    let mut a = Assembler::new();
    let mut entries = Vec::new();
    let mut pc = 0u32;
    let mut held_lock = false;
    for _ in 0..steps {
        let op = rng.next_below(10);
        let addr = rng.next_below(48) * 8;
        let miss = rng.next_bool();
        let r = *rng.choose(&regs);
        let latency = if miss { *rng.choose(&latencies) } else { 1 };
        match op {
            0..=2 => {
                a.load(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Load(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            3..=4 => {
                a.store(r, IntReg::G0, addr as i64);
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Store(MemAccess {
                        addr,
                        miss,
                        latency,
                    }),
                });
            }
            5 => {
                let (kind, wait) = if held_lock {
                    (SyncKind::Unlock, 0)
                } else {
                    (SyncKind::Lock, rng.next_below(150) as u32)
                };
                if held_lock {
                    a.unlock(IntReg::G1, 0);
                } else {
                    a.lock(IntReg::G1, 0);
                }
                held_lock = !held_lock;
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Sync(SyncAccess {
                        kind,
                        addr: 8,
                        wait,
                        access: if miss { latency.max(2) } else { 1 },
                    }),
                });
            }
            6 => {
                let fall = a.label();
                a.branch(BranchCond::Eq, r, IntReg::ZERO, fall);
                a.bind(fall).unwrap();
                entries.push(TraceEntry {
                    pc,
                    op: TraceOp::Branch {
                        taken: rng.next_bool(),
                        target: pc + 1,
                    },
                });
            }
            _ => {
                a.addi(r, r, 1);
                entries.push(TraceEntry::compute(pc));
            }
        }
        pc += 1;
    }
    if held_lock {
        a.unlock(IntReg::G1, 0);
        entries.push(TraceEntry {
            pc,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Unlock,
                addr: 8,
                wait: 0,
                access: 1,
            }),
        });
    }
    a.halt();
    (a.assemble().unwrap(), Trace::from_entries(entries))
}

const MODELS: [ConsistencyModel; 4] = [
    ConsistencyModel::Sc,
    ConsistencyModel::Pc,
    ConsistencyModel::Wo,
    ConsistencyModel::Rc,
];

/// Runs both engines on one configuration and asserts full equality
/// plus the accounting invariant.
fn assert_equivalent(tag: &str, cfg: DsConfig, program: &Program, trace: &Trace) {
    let ds = Ds::new(cfg);
    let skip = ds.run(program, trace);
    let reference = ds.run_reference(program, trace);
    assert_eq!(
        skip, reference,
        "{tag}: skip-ahead and reference stepper disagree"
    );
    for (engine, r) in [("skip", &skip), ("reference", &reference)] {
        let b = &r.breakdown;
        assert_eq!(
            b.busy + b.read + b.write + b.sync,
            b.total(),
            "{tag} ({engine}): breakdown components must sum to total"
        );
    }
    assert_eq!(
        skip.stats.instructions,
        trace.len() as u64,
        "{tag}: every traced instruction retires"
    );
}

#[test]
fn skip_equals_reference_across_windows_and_models() {
    let mut rng = XorShift64::seed_from_u64(0x5EED_0001);
    for case in 0..20 {
        let (program, trace) = gen_workload(&mut rng);
        for model in MODELS {
            for w in [1, 4, 16, 64, 256] {
                let cfg = DsConfig::with_model(model).window(w);
                assert_equivalent(&format!("case {case} {model} w{w}"), cfg, &program, &trace);
            }
        }
    }
}

#[test]
fn skip_equals_reference_with_mshr_limits() {
    let mut rng = XorShift64::seed_from_u64(0x5EED_0002);
    for case in 0..20 {
        let (program, trace) = gen_workload(&mut rng);
        for model in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
            for mshr_limit in [None, Some(1), Some(4)] {
                for store_buffer_depth in [1, 16] {
                    let cfg = DsConfig {
                        mshr_limit,
                        store_buffer_depth,
                        ..DsConfig::with_model(model).window(16)
                    };
                    assert_equivalent(
                        &format!("case {case} {model} mshr {mshr_limit:?} sb {store_buffer_depth}"),
                        cfg,
                        &program,
                        &trace,
                    );
                }
            }
        }
    }
}

#[test]
fn skip_equals_reference_under_ablations() {
    let mut rng = XorShift64::seed_from_u64(0x5EED_0003);
    for case in 0..16 {
        let (program, trace) = gen_workload(&mut rng);
        for model in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
            let base = DsConfig::with_model(model).window(32);
            let variants = [
                DsConfig {
                    perfect_branch_prediction: true,
                    ..base
                },
                DsConfig {
                    ignore_data_dependences: true,
                    ..base
                },
                DsConfig {
                    nonbinding_prefetch: true,
                    ..base
                },
                DsConfig {
                    speculative_loads: true,
                    ..base
                },
                DsConfig {
                    issue_width: 4,
                    ..base
                },
            ];
            for (i, cfg) in variants.into_iter().enumerate() {
                assert_equivalent(
                    &format!("case {case} {model} ablation {i}"),
                    cfg,
                    &program,
                    &trace,
                );
            }
        }
    }
}

/// Degenerate traces must not trip the skip logic's progress bound.
#[test]
fn skip_handles_tiny_and_uniform_traces() {
    // Empty trace.
    let mut a = Assembler::new();
    a.halt();
    let p = a.assemble().unwrap();
    assert_equivalent("empty", DsConfig::rc(), &p, &Trace::new());

    // One giant miss.
    let mut a = Assembler::new();
    a.load(IntReg::T1, IntReg::G0, 0);
    a.halt();
    let p = a.assemble().unwrap();
    let t = Trace::from_entries(vec![TraceEntry {
        pc: 0,
        op: TraceOp::Load(MemAccess::miss(0, 10_000)),
    }]);
    for w in [1, 64] {
        assert_equivalent("one miss", DsConfig::rc().window(w), &p, &t);
    }

    // A long pure-compute run (fetch-limited, no memops at all).
    let mut a = Assembler::new();
    let mut entries = Vec::new();
    for i in 0..500u32 {
        a.addi(IntReg::T1, IntReg::T1, 1);
        entries.push(TraceEntry::compute(i));
    }
    a.halt();
    let p = a.assemble().unwrap();
    assert_equivalent(
        "pure compute",
        DsConfig::rc().window(8),
        &p,
        &Trace::from_entries(entries),
    );
}
