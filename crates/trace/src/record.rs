//! Trace record types.

use lookahead_isa::{Program, SyncKind};
use std::fmt;

/// Dynamic annotation of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address of the accessed word.
    pub addr: u64,
    /// Whether the access missed in the processor's cache during the
    /// generating multiprocessor run.
    pub miss: bool,
    /// Effective latency in cycles (1 for a hit, the configured miss
    /// penalty for a miss).
    pub latency: u32,
}

impl MemAccess {
    /// A 1-cycle cache hit at `addr`.
    pub fn hit(addr: u64) -> MemAccess {
        MemAccess {
            addr,
            miss: false,
            latency: 1,
        }
    }

    /// A miss at `addr` with the given total latency.
    pub fn miss(addr: u64, latency: u32) -> MemAccess {
        MemAccess {
            addr,
            miss: true,
            latency,
        }
    }
}

/// Dynamic annotation of a synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncAccess {
    /// The kind of synchronization performed.
    pub kind: SyncKind,
    /// Address of the synchronization variable.
    pub addr: u64,
    /// Cycles spent *waiting* for the synchronization condition (lock
    /// held by another processor, barrier not yet full, event unset).
    /// This component reflects load imbalance and contention and is
    /// not hidable by overlap.
    pub wait: u32,
    /// Cycles of memory latency to access the synchronization variable
    /// itself once free (1 on a cache hit, miss penalty otherwise).
    /// This component is hidable exactly like an ordinary access.
    pub access: u32,
}

impl SyncAccess {
    /// Total latency observed for the operation.
    pub fn total_latency(self) -> u32 {
        self.wait + self.access
    }
}

/// The dynamic outcome of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp {
    /// Any single-cycle computational instruction (integer or
    /// floating-point ALU, immediate load, conversion, nop).
    Compute,
    /// A load with its observed address and latency.
    Load(MemAccess),
    /// A store with its observed address and latency.
    Store(MemAccess),
    /// A conditional branch with its resolved direction. `target` is
    /// the branch's static target instruction index.
    Branch { taken: bool, target: u32 },
    /// An unconditional jump (including jump-and-link and indirect
    /// jumps) with its resolved target.
    Jump { target: u32 },
    /// A synchronization operation with its observed wait/access
    /// latencies.
    Sync(SyncAccess),
}

/// One executed instruction in a trace: the PC it executed at plus its
/// dynamic outcome. Static properties (registers read/written, opcode)
/// are recovered from the program at the PC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Instruction index in the program.
    pub pc: u32,
    /// Dynamic outcome.
    pub op: TraceOp,
}

impl TraceEntry {
    /// Convenience constructor for a compute entry.
    pub fn compute(pc: u32) -> TraceEntry {
        TraceEntry {
            pc,
            op: TraceOp::Compute,
        }
    }

    /// The memory access annotation, if this entry is a load or store.
    pub fn mem_access(&self) -> Option<MemAccess> {
        match self.op {
            TraceOp::Load(m) | TraceOp::Store(m) => Some(m),
            _ => None,
        }
    }

    /// The synchronization annotation, if this entry is a sync op.
    pub fn sync_access(&self) -> Option<SyncAccess> {
        match self.op {
            TraceOp::Sync(s) => Some(s),
            _ => None,
        }
    }
}

/// A dynamic instruction trace for a single processor.
///
/// Produced by the multiprocessor simulator
/// (`lookahead-multiproc`) and consumed by the processor timing models
/// (`lookahead-core`). The trace does not own the program; pass the
/// program alongside wherever static instruction properties are
/// needed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates a trace from raw entries.
    pub fn from_entries(entries: Vec<TraceEntry>) -> Trace {
        Trace { entries }
    }

    /// Creates an empty trace with room for `capacity` entries, so
    /// generators that know (or can bound) the final length never
    /// regrow mid-simulation.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Number of memory-system entries (loads, stores, syncs) — the
    /// size of the memory-operation registry a timing model needs.
    pub fn mem_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                matches!(
                    e.op,
                    TraceOp::Load(_) | TraceOp::Store(_) | TraceOp::Sync(_)
                )
            })
            .count()
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The entries in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of executed instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Renders a human-readable listing of the first `limit` entries,
    /// resolving instructions through `program`.
    pub fn listing(&self, program: &Program, limit: usize) -> String {
        let mut out = String::new();
        for e in self.entries.iter().take(limit) {
            let text = program
                .fetch(e.pc as usize)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<bad pc>".to_string());
            let note = match e.op {
                TraceOp::Compute => String::new(),
                TraceOp::Load(m) | TraceOp::Store(m) => format!(
                    "addr={:#x} {} lat={}",
                    m.addr,
                    if m.miss { "MISS" } else { "hit" },
                    m.latency
                ),
                TraceOp::Branch { taken, .. } => {
                    (if taken { "taken" } else { "not-taken" }).to_string()
                }
                TraceOp::Jump { target } => format!("-> {target}"),
                TraceOp::Sync(s) => {
                    format!("addr={:#x} wait={} access={}", s.addr, s.wait, s.access)
                }
            };
            out.push_str(&format!("{:8}  {:<28} {}\n", e.pc, text, note));
        }
        out
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<T: IntoIterator<Item = TraceEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEntry>>(iter: T) -> Trace {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceEntry;
    type IntoIter = std::vec::IntoIter<TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl fmt::Display for Trace {
    /// A one-line summary; use [`Trace::listing`] for a full listing
    /// (it needs the program to resolve instructions).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace of {} instructions", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::{Assembler, IntReg};

    #[test]
    fn mem_access_constructors() {
        let h = MemAccess::hit(64);
        assert!(!h.miss);
        assert_eq!(h.latency, 1);
        let m = MemAccess::miss(64, 50);
        assert!(m.miss);
        assert_eq!(m.latency, 50);
    }

    #[test]
    fn sync_access_total() {
        let s = SyncAccess {
            kind: SyncKind::Lock,
            addr: 8,
            wait: 40,
            access: 50,
        };
        assert_eq!(s.total_latency(), 90);
    }

    #[test]
    fn trace_collect_and_iterate() {
        let t: Trace = (0..5).map(TraceEntry::compute).collect();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 5);
        let pcs: Vec<u32> = (&t).into_iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn entry_accessors() {
        let e = TraceEntry {
            pc: 0,
            op: TraceOp::Load(MemAccess::hit(8)),
        };
        assert_eq!(e.mem_access().unwrap().addr, 8);
        assert!(e.sync_access().is_none());
        assert!(TraceEntry::compute(1).mem_access().is_none());
    }

    #[test]
    fn listing_resolves_instructions() {
        let mut a = Assembler::new();
        a.li(IntReg::T0, 1);
        a.load(IntReg::T1, IntReg::T0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut t = Trace::new();
        t.push(TraceEntry::compute(0));
        t.push(TraceEntry {
            pc: 1,
            op: TraceOp::Load(MemAccess::miss(8, 50)),
        });
        let text = t.listing(&p, 10);
        assert!(text.contains("li r5, 1"));
        assert!(text.contains("MISS"));
        assert_eq!(t.to_string(), "trace of 2 instructions");
    }
}
