//! Compact binary serialization of traces.
//!
//! Traces for realistic workload sizes run to millions of entries;
//! regenerating them for every experiment is wasteful. This module
//! provides a simple, versioned binary format so the harness can cache
//! traces on disk between experiments.
//!
//! The format is deliberately plain: a magic/version header, an entry
//! count, then one tagged record per entry with little-endian fields.

use crate::record::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};
use lookahead_isa::SyncKind;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"LKTR";
const VERSION: u8 = 1;

const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH: u8 = 3;
const TAG_JUMP: u8 = 4;
const TAG_SYNC: u8 = 5;

/// Errors produced when decoding a trace stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Stream did not start with the trace magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown record tag.
    BadTag(u8),
    /// Unknown synchronization kind code.
    BadSyncKind(u8),
    /// A memory access with latency zero (the models require >= 1).
    BadLatency,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            DecodeError::BadMagic => write!(f, "not a lookahead trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown trace record tag {t}"),
            DecodeError::BadSyncKind(k) => write!(f, "unknown sync kind code {k}"),
            DecodeError::BadLatency => {
                write!(f, "memory access with zero latency (minimum is 1 cycle)")
            }
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> DecodeError {
        DecodeError::Io(e)
    }
}

fn sync_kind_code(kind: SyncKind) -> u8 {
    match kind {
        SyncKind::Lock => 0,
        SyncKind::Unlock => 1,
        SyncKind::Barrier => 2,
        SyncKind::WaitEvent => 3,
        SyncKind::SetEvent => 4,
    }
}

fn sync_kind_from_code(code: u8) -> Result<SyncKind, DecodeError> {
    Ok(match code {
        0 => SyncKind::Lock,
        1 => SyncKind::Unlock,
        2 => SyncKind::Barrier,
        3 => SyncKind::WaitEvent,
        4 => SyncKind::SetEvent,
        other => return Err(DecodeError::BadSyncKind(other)),
    })
}

/// Writes `trace` to `w` in the Lookahead binary trace format.
///
/// The writer is taken by value per the usual Rust convention; pass
/// `&mut writer` to keep using it afterwards.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.iter() {
        w.write_all(&e.pc.to_le_bytes())?;
        match e.op {
            TraceOp::Compute => w.write_all(&[TAG_COMPUTE])?,
            TraceOp::Load(m) | TraceOp::Store(m) => {
                let tag = if matches!(e.op, TraceOp::Load(_)) {
                    TAG_LOAD
                } else {
                    TAG_STORE
                };
                w.write_all(&[tag, m.miss as u8])?;
                w.write_all(&m.addr.to_le_bytes())?;
                w.write_all(&m.latency.to_le_bytes())?;
            }
            TraceOp::Branch { taken, target } => {
                w.write_all(&[TAG_BRANCH, taken as u8])?;
                w.write_all(&target.to_le_bytes())?;
            }
            TraceOp::Jump { target } => {
                w.write_all(&[TAG_JUMP])?;
                w.write_all(&target.to_le_bytes())?;
            }
            TraceOp::Sync(s) => {
                w.write_all(&[TAG_SYNC, sync_kind_code(s.kind)])?;
                w.write_all(&s.addr.to_le_bytes())?;
                w.write_all(&s.wait.to_le_bytes())?;
                w.write_all(&s.access.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, DecodeError> {
    let magic: [u8; 4] = read_exact(&mut r)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let [version] = read_exact::<_, 1>(&mut r)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = u64::from_le_bytes(read_exact(&mut r)?);
    let mut entries = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let pc = u32::from_le_bytes(read_exact(&mut r)?);
        let [tag] = read_exact::<_, 1>(&mut r)?;
        let op = match tag {
            TAG_COMPUTE => TraceOp::Compute,
            TAG_LOAD | TAG_STORE => {
                let [miss] = read_exact::<_, 1>(&mut r)?;
                let addr = u64::from_le_bytes(read_exact(&mut r)?);
                let latency = u32::from_le_bytes(read_exact(&mut r)?);
                if latency == 0 {
                    return Err(DecodeError::BadLatency);
                }
                let m = MemAccess {
                    addr,
                    miss: miss != 0,
                    latency,
                };
                if tag == TAG_LOAD {
                    TraceOp::Load(m)
                } else {
                    TraceOp::Store(m)
                }
            }
            TAG_BRANCH => {
                let [taken] = read_exact::<_, 1>(&mut r)?;
                let target = u32::from_le_bytes(read_exact(&mut r)?);
                TraceOp::Branch {
                    taken: taken != 0,
                    target,
                }
            }
            TAG_JUMP => {
                let target = u32::from_le_bytes(read_exact(&mut r)?);
                TraceOp::Jump { target }
            }
            TAG_SYNC => {
                let [kind] = read_exact::<_, 1>(&mut r)?;
                let addr = u64::from_le_bytes(read_exact(&mut r)?);
                let wait = u32::from_le_bytes(read_exact(&mut r)?);
                let access = u32::from_le_bytes(read_exact(&mut r)?);
                if access == 0 {
                    return Err(DecodeError::BadLatency);
                }
                TraceOp::Sync(SyncAccess {
                    kind: sync_kind_from_code(kind)?,
                    addr,
                    wait,
                    access,
                })
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        entries.push(TraceEntry { pc, op });
    }
    Ok(Trace::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::rng::XorShift64;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(roundtrip(&Trace::new()), Trace::new());
    }

    #[test]
    fn all_variants_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEntry::compute(1));
        t.push(TraceEntry {
            pc: 2,
            op: TraceOp::Load(MemAccess::miss(0xdead0, 50)),
        });
        t.push(TraceEntry {
            pc: 3,
            op: TraceOp::Store(MemAccess::hit(0x10)),
        });
        t.push(TraceEntry {
            pc: 4,
            op: TraceOp::Branch {
                taken: true,
                target: 99,
            },
        });
        t.push(TraceEntry {
            pc: 5,
            op: TraceOp::Jump { target: 7 },
        });
        t.push(TraceEntry {
            pc: 6,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Barrier,
                addr: 0x40,
                wait: 123,
                access: 50,
            }),
        });
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::BadVersion(99)
        ));
    }

    #[test]
    fn zero_latency_rejected() {
        let mut t = Trace::new();
        t.push(TraceEntry {
            pc: 0,
            op: TraceOp::Load(MemAccess {
                addr: 8,
                miss: false,
                latency: 0,
            }),
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::BadLatency
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        let mut t = Trace::new();
        t.push(TraceEntry::compute(1));
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::Io(_)
        ));
    }

    const SYNC_KINDS: [SyncKind; 5] = [
        SyncKind::Lock,
        SyncKind::Unlock,
        SyncKind::Barrier,
        SyncKind::WaitEvent,
        SyncKind::SetEvent,
    ];

    fn gen_entry(rng: &mut XorShift64) -> TraceEntry {
        let nonzero_u32 = |rng: &mut XorShift64| (rng.next_u64() as u32).max(1);
        let op = match rng.next_below(6) {
            0 => TraceOp::Compute,
            1 => TraceOp::Load(MemAccess {
                addr: rng.next_u64(),
                miss: rng.next_bool(),
                latency: nonzero_u32(rng),
            }),
            2 => TraceOp::Store(MemAccess {
                addr: rng.next_u64(),
                miss: rng.next_bool(),
                latency: nonzero_u32(rng),
            }),
            3 => TraceOp::Branch {
                taken: rng.next_bool(),
                target: rng.next_u64() as u32,
            },
            4 => TraceOp::Jump {
                target: rng.next_u64() as u32,
            },
            _ => TraceOp::Sync(SyncAccess {
                kind: *rng.choose(&SYNC_KINDS),
                addr: rng.next_u64(),
                wait: rng.next_u64() as u32,
                access: nonzero_u32(rng),
            }),
        };
        TraceEntry {
            pc: rng.next_u64() as u32,
            op,
        }
    }

    #[test]
    fn arbitrary_traces_roundtrip() {
        let mut rng = XorShift64::seed_from_u64(0xF1);
        for case in 0..128 {
            let len = rng.range_usize(200);
            let entries: Vec<TraceEntry> = (0..len).map(|_| gen_entry(&mut rng)).collect();
            let t = Trace::from_entries(entries);
            assert_eq!(roundtrip(&t), t, "case {case}");
        }
    }
}
