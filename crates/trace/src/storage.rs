//! Compact binary serialization of traces.
//!
//! Traces for realistic workload sizes run to millions of entries;
//! regenerating them for every experiment is wasteful. This module
//! provides a simple, versioned binary format so the harness can cache
//! traces on disk between experiments.
//!
//! Two containers share the `LKTR` magic and the per-entry encoding:
//!
//! * **version 1** ([`write_trace`]/[`read_trace`]) — a bare trace:
//!   magic/version header, an entry count, then one tagged record per
//!   entry with little-endian fields;
//! * **version 2** ([`write_archive`]/[`read_archive`]) — a complete
//!   generated run ([`TraceArchive`]): the cache key it was produced
//!   under, the program, the multiprocessor statistics and *all*
//!   per-processor traces, followed by an FNV-1a checksum footer so a
//!   damaged cache file is detected rather than trusted;
//! * **version 3** ([`ArchiveWriter`]/[`ArchiveInfo`]/[`ChunkReader`])
//!   — the same run in *chunked* form: a checksummed header, a stream
//!   of per-chunk-checksummed [`TraceChunk`](crate::stream::TraceChunk)
//!   records (interleavable across processors, so the writer can run
//!   concurrently with trace generation), and a checksummed trailer
//!   found via a trailing length word. Readers stream one processor's
//!   chunks straight off disk without decoding the whole archive.

use crate::breakdown::Breakdown;
use crate::record::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};
use crate::stream::{ChunkMeta, SliceSource, StreamError, TraceChunk, TraceSink, TraceSource};
use lookahead_isa::{
    AluOp, BranchCond, FpCmpOp, FpReg, FpuOp, Instruction, IntReg, Program, SyncKind,
};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"LKTR";
const VERSION: u8 = 1;

/// Version byte of the whole-archive (v2) container, still readable
/// and writable for compatibility tests.
pub const ARCHIVE_V2: u8 = 2;

/// Version byte of the current [`TraceArchive`] container (the chunked
/// v3 layout). Part of the cache fingerprint: bump it whenever the
/// encoding changes and every stale cache entry is regenerated instead
/// of misread.
pub const ARCHIVE_VERSION: u8 = 3;

const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH: u8 = 3;
const TAG_JUMP: u8 = 4;
const TAG_SYNC: u8 = 5;

/// Errors produced when decoding a trace stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Stream did not start with the trace magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown record tag.
    BadTag(u8),
    /// Unknown synchronization kind code.
    BadSyncKind(u8),
    /// A memory access with latency zero (the models require >= 1).
    BadLatency,
    /// An out-of-range code for the named field (archive sections:
    /// instruction tags, opcode codes, register indices).
    BadCode {
        /// What was being decoded ("instruction tag", "register", ...).
        what: &'static str,
        /// The offending value.
        code: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// The archive checksum footer does not match the decoded payload
    /// — the file was truncated, bit-flipped or otherwise damaged.
    BadChecksum {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            DecodeError::BadMagic => write!(f, "not a lookahead trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown trace record tag {t}"),
            DecodeError::BadSyncKind(k) => write!(f, "unknown sync kind code {k}"),
            DecodeError::BadLatency => {
                write!(f, "memory access with zero latency (minimum is 1 cycle)")
            }
            DecodeError::BadCode { what, code } => {
                write!(f, "invalid {what} code {code}")
            }
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadChecksum { stored, computed } => write!(
                f,
                "archive checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — \
                 the file is damaged"
            ),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> DecodeError {
        DecodeError::Io(e)
    }
}

fn sync_kind_code(kind: SyncKind) -> u8 {
    match kind {
        SyncKind::Lock => 0,
        SyncKind::Unlock => 1,
        SyncKind::Barrier => 2,
        SyncKind::WaitEvent => 3,
        SyncKind::SetEvent => 4,
    }
}

fn sync_kind_from_code(code: u8) -> Result<SyncKind, DecodeError> {
    Ok(match code {
        0 => SyncKind::Lock,
        1 => SyncKind::Unlock,
        2 => SyncKind::Barrier,
        3 => SyncKind::WaitEvent,
        4 => SyncKind::SetEvent,
        other => return Err(DecodeError::BadSyncKind(other)),
    })
}

/// Writes `trace` to `w` in the Lookahead binary trace format.
///
/// The writer is taken by value per the usual Rust convention; pass
/// `&mut writer` to keep using it afterwards.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_entries(&mut w, trace)
}

/// Writes the body shared by both container versions: an entry count
/// followed by the tagged records.
fn write_entries<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.iter() {
        write_entry(w, e)?;
    }
    Ok(())
}

fn write_entry<W: Write>(w: &mut W, e: &TraceEntry) -> io::Result<()> {
    w.write_all(&e.pc.to_le_bytes())?;
    match e.op {
        TraceOp::Compute => w.write_all(&[TAG_COMPUTE])?,
        TraceOp::Load(m) | TraceOp::Store(m) => {
            let tag = if matches!(e.op, TraceOp::Load(_)) {
                TAG_LOAD
            } else {
                TAG_STORE
            };
            w.write_all(&[tag, m.miss as u8])?;
            w.write_all(&m.addr.to_le_bytes())?;
            w.write_all(&m.latency.to_le_bytes())?;
        }
        TraceOp::Branch { taken, target } => {
            w.write_all(&[TAG_BRANCH, taken as u8])?;
            w.write_all(&target.to_le_bytes())?;
        }
        TraceOp::Jump { target } => {
            w.write_all(&[TAG_JUMP])?;
            w.write_all(&target.to_le_bytes())?;
        }
        TraceOp::Sync(s) => {
            w.write_all(&[TAG_SYNC, sync_kind_code(s.kind)])?;
            w.write_all(&s.addr.to_le_bytes())?;
            w.write_all(&s.wait.to_le_bytes())?;
            w.write_all(&s.access.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, DecodeError> {
    let magic: [u8; 4] = read_exact(&mut r)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let [version] = read_exact::<_, 1>(&mut r)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    read_entries(&mut r)
}

fn read_entries<R: Read>(r: &mut R) -> Result<Trace, DecodeError> {
    let count = u64::from_le_bytes(read_exact(r)?);
    let mut entries = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        entries.push(read_entry(r)?);
    }
    Ok(Trace::from_entries(entries))
}

fn read_entry<R: Read>(r: &mut R) -> Result<TraceEntry, DecodeError> {
    let pc = u32::from_le_bytes(read_exact(r)?);
    let [tag] = read_exact::<_, 1>(r)?;
    let op = match tag {
        TAG_COMPUTE => TraceOp::Compute,
        TAG_LOAD | TAG_STORE => {
            let [miss] = read_exact::<_, 1>(r)?;
            let addr = u64::from_le_bytes(read_exact(r)?);
            let latency = u32::from_le_bytes(read_exact(r)?);
            if latency == 0 {
                return Err(DecodeError::BadLatency);
            }
            let m = MemAccess {
                addr,
                miss: miss != 0,
                latency,
            };
            if tag == TAG_LOAD {
                TraceOp::Load(m)
            } else {
                TraceOp::Store(m)
            }
        }
        TAG_BRANCH => {
            let [taken] = read_exact::<_, 1>(r)?;
            let target = u32::from_le_bytes(read_exact(r)?);
            TraceOp::Branch {
                taken: taken != 0,
                target,
            }
        }
        TAG_JUMP => {
            let target = u32::from_le_bytes(read_exact(r)?);
            TraceOp::Jump { target }
        }
        TAG_SYNC => {
            let [kind] = read_exact::<_, 1>(r)?;
            let addr = u64::from_le_bytes(read_exact(r)?);
            let wait = u32::from_le_bytes(read_exact(r)?);
            let access = u32::from_le_bytes(read_exact(r)?);
            if access == 0 {
                return Err(DecodeError::BadLatency);
            }
            TraceOp::Sync(SyncAccess {
                kind: sync_kind_from_code(kind)?,
                addr,
                wait,
                access,
            })
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(TraceEntry { pc, op })
}

// ---------------------------------------------------------------------
// Version-2 archives: a complete generated run with a checksum footer.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the workspace's content fingerprint
/// (used for both the archive footer and the cache-file names; no
/// external hashing crate required).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Writer adapter that folds everything written into an FNV-1a hash.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> HashingWriter<W> {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter that folds everything read into an FNV-1a hash.
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> HashingReader<R> {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> Result<String, DecodeError> {
    let len = u32::from_le_bytes(read_exact(r)?) as usize;
    let mut buf = vec![0u8; len.min(1 << 24)];
    if len > buf.len() {
        // A length this large can only come from corruption; don't
        // try to allocate it.
        return Err(DecodeError::BadCode {
            what: "string length",
            code: len as u64,
        });
    }
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| DecodeError::BadUtf8)
}

// Instruction tags of the archive program section.
const ITAG_ALU: u8 = 0;
const ITAG_ALU_IMM: u8 = 1;
const ITAG_LOAD_IMM: u8 = 2;
const ITAG_LOAD_IMM_F: u8 = 3;
const ITAG_FPU: u8 = 4;
const ITAG_FP_CMP: u8 = 5;
const ITAG_INT_TO_FP: u8 = 6;
const ITAG_FP_TO_INT: u8 = 7;
const ITAG_LOAD: u8 = 8;
const ITAG_STORE: u8 = 9;
const ITAG_LOAD_F: u8 = 10;
const ITAG_STORE_F: u8 = 11;
const ITAG_BRANCH: u8 = 12;
const ITAG_JUMP: u8 = 13;
const ITAG_JUMP_AND_LINK: u8 = 14;
const ITAG_JUMP_REG: u8 = 15;
const ITAG_SYNC: u8 = 16;
const ITAG_NOP: u8 = 17;
const ITAG_HALT: u8 = 18;

fn alu_op_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_op_from_code(code: u8) -> Result<AluOp, DecodeError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        other => {
            return Err(DecodeError::BadCode {
                what: "ALU op",
                code: other as u64,
            })
        }
    })
}

fn fpu_op_code(op: FpuOp) -> u8 {
    match op {
        FpuOp::Add => 0,
        FpuOp::Sub => 1,
        FpuOp::Mul => 2,
        FpuOp::Div => 3,
        FpuOp::Neg => 4,
        FpuOp::Abs => 5,
        FpuOp::Max => 6,
        FpuOp::Min => 7,
        FpuOp::Sqrt => 8,
    }
}

fn fpu_op_from_code(code: u8) -> Result<FpuOp, DecodeError> {
    Ok(match code {
        0 => FpuOp::Add,
        1 => FpuOp::Sub,
        2 => FpuOp::Mul,
        3 => FpuOp::Div,
        4 => FpuOp::Neg,
        5 => FpuOp::Abs,
        6 => FpuOp::Max,
        7 => FpuOp::Min,
        8 => FpuOp::Sqrt,
        other => {
            return Err(DecodeError::BadCode {
                what: "FPU op",
                code: other as u64,
            })
        }
    })
}

fn fp_cmp_code(op: FpCmpOp) -> u8 {
    match op {
        FpCmpOp::Eq => 0,
        FpCmpOp::Lt => 1,
        FpCmpOp::Le => 2,
    }
}

fn fp_cmp_from_code(code: u8) -> Result<FpCmpOp, DecodeError> {
    Ok(match code {
        0 => FpCmpOp::Eq,
        1 => FpCmpOp::Lt,
        2 => FpCmpOp::Le,
        other => {
            return Err(DecodeError::BadCode {
                what: "FP compare op",
                code: other as u64,
            })
        }
    })
}

fn branch_cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Le => 4,
        BranchCond::Gt => 5,
    }
}

fn branch_cond_from_code(code: u8) -> Result<BranchCond, DecodeError> {
    Ok(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Le,
        5 => BranchCond::Gt,
        other => {
            return Err(DecodeError::BadCode {
                what: "branch condition",
                code: other as u64,
            })
        }
    })
}

fn int_reg_from_code(code: u8) -> Result<IntReg, DecodeError> {
    IntReg::new(code as usize).map_err(|_| DecodeError::BadCode {
        what: "integer register",
        code: code as u64,
    })
}

fn fp_reg_from_code(code: u8) -> Result<FpReg, DecodeError> {
    FpReg::new(code as usize).map_err(|_| DecodeError::BadCode {
        what: "fp register",
        code: code as u64,
    })
}

fn write_instruction<W: Write>(w: &mut W, i: &Instruction) -> io::Result<()> {
    let ireg = |r: IntReg| r.index() as u8;
    let freg = |r: FpReg| r.index() as u8;
    match *i {
        Instruction::Alu { op, rd, rs1, rs2 } => {
            w.write_all(&[ITAG_ALU, alu_op_code(op), ireg(rd), ireg(rs1), ireg(rs2)])
        }
        Instruction::AluImm { op, rd, rs1, imm } => {
            w.write_all(&[ITAG_ALU_IMM, alu_op_code(op), ireg(rd), ireg(rs1)])?;
            w.write_all(&imm.to_le_bytes())
        }
        Instruction::LoadImm { rd, imm } => {
            w.write_all(&[ITAG_LOAD_IMM, ireg(rd)])?;
            w.write_all(&imm.to_le_bytes())
        }
        Instruction::LoadImmF { fd, value } => {
            w.write_all(&[ITAG_LOAD_IMM_F, freg(fd)])?;
            w.write_all(&value.to_bits().to_le_bytes())
        }
        Instruction::Fpu { op, fd, fs1, fs2 } => {
            w.write_all(&[ITAG_FPU, fpu_op_code(op), freg(fd), freg(fs1), freg(fs2)])
        }
        Instruction::FpCmp { op, rd, fs1, fs2 } => {
            w.write_all(&[ITAG_FP_CMP, fp_cmp_code(op), ireg(rd), freg(fs1), freg(fs2)])
        }
        Instruction::IntToFp { fd, rs } => w.write_all(&[ITAG_INT_TO_FP, freg(fd), ireg(rs)]),
        Instruction::FpToInt { rd, fs } => w.write_all(&[ITAG_FP_TO_INT, ireg(rd), freg(fs)]),
        Instruction::Load { rd, base, offset } => {
            w.write_all(&[ITAG_LOAD, ireg(rd), ireg(base)])?;
            w.write_all(&offset.to_le_bytes())
        }
        Instruction::Store { rs, base, offset } => {
            w.write_all(&[ITAG_STORE, ireg(rs), ireg(base)])?;
            w.write_all(&offset.to_le_bytes())
        }
        Instruction::LoadF { fd, base, offset } => {
            w.write_all(&[ITAG_LOAD_F, freg(fd), ireg(base)])?;
            w.write_all(&offset.to_le_bytes())
        }
        Instruction::StoreF { fs, base, offset } => {
            w.write_all(&[ITAG_STORE_F, freg(fs), ireg(base)])?;
            w.write_all(&offset.to_le_bytes())
        }
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            w.write_all(&[ITAG_BRANCH, branch_cond_code(cond), ireg(rs1), ireg(rs2)])?;
            w.write_all(&(target as u32).to_le_bytes())
        }
        Instruction::Jump { target } => {
            w.write_all(&[ITAG_JUMP])?;
            w.write_all(&(target as u32).to_le_bytes())
        }
        Instruction::JumpAndLink { rd, target } => {
            w.write_all(&[ITAG_JUMP_AND_LINK, ireg(rd)])?;
            w.write_all(&(target as u32).to_le_bytes())
        }
        Instruction::JumpReg { rs } => w.write_all(&[ITAG_JUMP_REG, ireg(rs)]),
        Instruction::Sync { kind, base, offset } => {
            w.write_all(&[ITAG_SYNC, sync_kind_code(kind), ireg(base)])?;
            w.write_all(&offset.to_le_bytes())
        }
        Instruction::Nop => w.write_all(&[ITAG_NOP]),
        Instruction::Halt => w.write_all(&[ITAG_HALT]),
    }
}

fn read_instruction<R: Read>(r: &mut R) -> Result<Instruction, DecodeError> {
    let [tag] = read_exact::<_, 1>(r)?;
    let i64_field =
        |r: &mut R| -> Result<i64, DecodeError> { Ok(i64::from_le_bytes(read_exact(r)?)) };
    let target = |r: &mut R| -> Result<usize, DecodeError> {
        Ok(u32::from_le_bytes(read_exact(r)?) as usize)
    };
    Ok(match tag {
        ITAG_ALU => {
            let [op, rd, rs1, rs2] = read_exact(r)?;
            Instruction::Alu {
                op: alu_op_from_code(op)?,
                rd: int_reg_from_code(rd)?,
                rs1: int_reg_from_code(rs1)?,
                rs2: int_reg_from_code(rs2)?,
            }
        }
        ITAG_ALU_IMM => {
            let [op, rd, rs1] = read_exact(r)?;
            Instruction::AluImm {
                op: alu_op_from_code(op)?,
                rd: int_reg_from_code(rd)?,
                rs1: int_reg_from_code(rs1)?,
                imm: i64_field(r)?,
            }
        }
        ITAG_LOAD_IMM => {
            let [rd] = read_exact(r)?;
            Instruction::LoadImm {
                rd: int_reg_from_code(rd)?,
                imm: i64_field(r)?,
            }
        }
        ITAG_LOAD_IMM_F => {
            let [fd] = read_exact(r)?;
            Instruction::LoadImmF {
                fd: fp_reg_from_code(fd)?,
                value: f64::from_bits(u64::from_le_bytes(read_exact(r)?)),
            }
        }
        ITAG_FPU => {
            let [op, fd, fs1, fs2] = read_exact(r)?;
            Instruction::Fpu {
                op: fpu_op_from_code(op)?,
                fd: fp_reg_from_code(fd)?,
                fs1: fp_reg_from_code(fs1)?,
                fs2: fp_reg_from_code(fs2)?,
            }
        }
        ITAG_FP_CMP => {
            let [op, rd, fs1, fs2] = read_exact(r)?;
            Instruction::FpCmp {
                op: fp_cmp_from_code(op)?,
                rd: int_reg_from_code(rd)?,
                fs1: fp_reg_from_code(fs1)?,
                fs2: fp_reg_from_code(fs2)?,
            }
        }
        ITAG_INT_TO_FP => {
            let [fd, rs] = read_exact(r)?;
            Instruction::IntToFp {
                fd: fp_reg_from_code(fd)?,
                rs: int_reg_from_code(rs)?,
            }
        }
        ITAG_FP_TO_INT => {
            let [rd, fs] = read_exact(r)?;
            Instruction::FpToInt {
                rd: int_reg_from_code(rd)?,
                fs: fp_reg_from_code(fs)?,
            }
        }
        ITAG_LOAD => {
            let [rd, base] = read_exact(r)?;
            Instruction::Load {
                rd: int_reg_from_code(rd)?,
                base: int_reg_from_code(base)?,
                offset: i64_field(r)?,
            }
        }
        ITAG_STORE => {
            let [rs, base] = read_exact(r)?;
            Instruction::Store {
                rs: int_reg_from_code(rs)?,
                base: int_reg_from_code(base)?,
                offset: i64_field(r)?,
            }
        }
        ITAG_LOAD_F => {
            let [fd, base] = read_exact(r)?;
            Instruction::LoadF {
                fd: fp_reg_from_code(fd)?,
                base: int_reg_from_code(base)?,
                offset: i64_field(r)?,
            }
        }
        ITAG_STORE_F => {
            let [fs, base] = read_exact(r)?;
            Instruction::StoreF {
                fs: fp_reg_from_code(fs)?,
                base: int_reg_from_code(base)?,
                offset: i64_field(r)?,
            }
        }
        ITAG_BRANCH => {
            let [cond, rs1, rs2] = read_exact(r)?;
            Instruction::Branch {
                cond: branch_cond_from_code(cond)?,
                rs1: int_reg_from_code(rs1)?,
                rs2: int_reg_from_code(rs2)?,
                target: target(r)?,
            }
        }
        ITAG_JUMP => Instruction::Jump { target: target(r)? },
        ITAG_JUMP_AND_LINK => {
            let [rd] = read_exact(r)?;
            Instruction::JumpAndLink {
                rd: int_reg_from_code(rd)?,
                target: target(r)?,
            }
        }
        ITAG_JUMP_REG => {
            let [rs] = read_exact(r)?;
            Instruction::JumpReg {
                rs: int_reg_from_code(rs)?,
            }
        }
        ITAG_SYNC => {
            let [kind, base] = read_exact(r)?;
            Instruction::Sync {
                kind: sync_kind_from_code(kind)?,
                base: int_reg_from_code(base)?,
                offset: i64_field(r)?,
            }
        }
        ITAG_NOP => Instruction::Nop,
        ITAG_HALT => Instruction::Halt,
        other => {
            return Err(DecodeError::BadCode {
                what: "instruction tag",
                code: other as u64,
            })
        }
    })
}

fn write_program<W: Write>(w: &mut W, p: &Program) -> io::Result<()> {
    w.write_all(&(p.len() as u32).to_le_bytes())?;
    for i in p.instructions() {
        write_instruction(w, i)?;
    }
    let labels: Vec<(usize, &str)> = p.labels().collect();
    w.write_all(&(labels.len() as u32).to_le_bytes())?;
    for (pc, name) in labels {
        w.write_all(&(pc as u32).to_le_bytes())?;
        write_str(w, name)?;
    }
    Ok(())
}

fn read_program<R: Read>(r: &mut R) -> Result<Program, DecodeError> {
    let count = u32::from_le_bytes(read_exact(r)?);
    let mut instructions = Vec::with_capacity(count.min(1 << 22) as usize);
    for _ in 0..count {
        instructions.push(read_instruction(r)?);
    }
    let label_count = u32::from_le_bytes(read_exact(r)?);
    let mut labels = BTreeMap::new();
    for _ in 0..label_count {
        let pc = u32::from_le_bytes(read_exact(r)?) as usize;
        labels.insert(pc, read_str(r)?);
    }
    Ok(Program::with_labels(instructions, labels))
}

fn write_breakdown<W: Write>(w: &mut W, b: &Breakdown) -> io::Result<()> {
    for field in [b.busy, b.sync, b.read, b.write] {
        w.write_all(&field.to_le_bytes())?;
    }
    Ok(())
}

fn read_breakdown<R: Read>(r: &mut R) -> Result<Breakdown, DecodeError> {
    Ok(Breakdown {
        busy: u64::from_le_bytes(read_exact(r)?),
        sync: u64::from_le_bytes(read_exact(r)?),
        read: u64::from_le_bytes(read_exact(r)?),
        write: u64::from_le_bytes(read_exact(r)?),
    })
}

/// A complete generated run in on-disk form: everything the harness
/// needs to re-time an application without re-running the
/// multiprocessor simulation.
///
/// The `key` is the content-addressed cache fingerprint the archive
/// was generated under (workload, size tier, simulation configuration,
/// format version). Consumers must compare it against the key they
/// expect — a mismatch means a different configuration produced this
/// file and it must be regenerated, never trusted.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArchive {
    /// Canonical cache-key string (see `lookahead-harness`'s cache).
    pub key: String,
    /// Application name ("MP3D", "LU", ...).
    pub app: String,
    /// Index of the representative processor within `traces`.
    pub proc: u32,
    /// Total multiprocessor cycles of the generating run.
    pub mp_cycles: u64,
    /// Per-processor execution-time breakdowns of the generating run.
    pub breakdowns: Vec<Breakdown>,
    /// The SPMD program all processors executed.
    pub program: Program,
    /// Every processor's annotated trace.
    pub traces: Vec<Trace>,
}

/// Writes a [`TraceArchive`] in the version-2 `LKTR` container:
/// magic/version header, checksummed payload (key, app, statistics,
/// program and all traces), then an FNV-1a footer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_archive<W: Write>(mut w: W, archive: &TraceArchive) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[ARCHIVE_V2])?;
    let mut hw = HashingWriter::new(&mut w);
    write_str(&mut hw, &archive.key)?;
    write_str(&mut hw, &archive.app)?;
    hw.write_all(&archive.proc.to_le_bytes())?;
    hw.write_all(&archive.mp_cycles.to_le_bytes())?;
    hw.write_all(&(archive.breakdowns.len() as u32).to_le_bytes())?;
    for b in &archive.breakdowns {
        write_breakdown(&mut hw, b)?;
    }
    write_program(&mut hw, &archive.program)?;
    hw.write_all(&(archive.traces.len() as u32).to_le_bytes())?;
    for t in &archive.traces {
        write_entries(&mut hw, t)?;
    }
    let checksum = hw.hash;
    w.write_all(&checksum.to_le_bytes())
}

/// Reads a [`TraceArchive`] previously written by [`write_archive`],
/// verifying the checksum footer.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed or damaged input; a payload
/// that decodes structurally but fails the checksum yields
/// [`DecodeError::BadChecksum`].
pub fn read_archive<R: Read>(mut r: R) -> Result<TraceArchive, DecodeError> {
    let magic: [u8; 4] = read_exact(&mut r)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let [version] = read_exact::<_, 1>(&mut r)?;
    if version != ARCHIVE_V2 {
        return Err(DecodeError::BadVersion(version));
    }
    let mut hr = HashingReader::new(&mut r);
    let key = read_str(&mut hr)?;
    let app = read_str(&mut hr)?;
    let proc = u32::from_le_bytes(read_exact(&mut hr)?);
    let mp_cycles = u64::from_le_bytes(read_exact(&mut hr)?);
    let breakdown_count = u32::from_le_bytes(read_exact(&mut hr)?);
    let mut breakdowns = Vec::with_capacity(breakdown_count.min(1 << 16) as usize);
    for _ in 0..breakdown_count {
        breakdowns.push(read_breakdown(&mut hr)?);
    }
    let program = read_program(&mut hr)?;
    let trace_count = u32::from_le_bytes(read_exact(&mut hr)?);
    let mut traces = Vec::with_capacity(trace_count.min(1 << 16) as usize);
    for _ in 0..trace_count {
        traces.push(read_entries(&mut hr)?);
    }
    let computed = hr.hash;
    let stored = u64::from_le_bytes(read_exact(&mut r)?);
    if stored != computed {
        return Err(DecodeError::BadChecksum { stored, computed });
    }
    let archive = TraceArchive {
        key,
        app,
        proc,
        mp_cycles,
        breakdowns,
        program,
        traces,
    };
    if (archive.proc as usize) >= archive.traces.len().max(1) {
        return Err(DecodeError::BadCode {
            what: "representative processor index",
            code: archive.proc as u64,
        });
    }
    Ok(archive)
}

// ---------------------------------------------------------------------
// Version-3 archives: chunked, streamable, per-chunk checksums.
// ---------------------------------------------------------------------
//
// Layout (all integers little-endian):
//
// ```text
// "LKTR" | version=3
// header payload (FNV-hashed): key str | app str | num_procs u32 | program
// header checksum u64
// chunk record*                 -- any interleaving across processors
// end sentinel u32 = 0xFFFF_FFFF
// trailer payload (FNV-hashed): proc u32 | mp_cycles u64
//                             | breakdown count u32 | breakdowns
//                             | per-proc totals (entries u64,
//                               mem_entries u64, max_latency u32)
// trailer checksum u64
// trailer length u32            -- last 4 bytes; locates the trailer
//
// chunk record = proc u32 | entry_count u32 | byte_len u32
//              | first_index u64 | mem_entries u32 | max_latency u32
//              | entry payload (byte_len bytes)
//              | record checksum u64 (FNV over header + payload)
// ```
//
// The format is append-only — nothing is backpatched — so a writer can
// emit chunks while the multiprocessor simulation is still running and
// only needs the run statistics at `finish` time. The trailing length
// word lets readers find the trailer with two seeks from the end, and
// `byte_len` lets a per-processor reader skip foreign chunks without
// decoding them.

/// End-of-chunks sentinel in the processor field.
const END_PROC: u32 = u32::MAX;

/// Sanity caps rejecting lengths only corruption can produce.
const MAX_CHUNK_ENTRIES: u32 = 1 << 24;
const MAX_CHUNK_BYTES: u32 = 1 << 29;
const MAX_TRAILER_BYTES: u32 = 1 << 24;

fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-processor aggregate totals stored in the v3 trailer, used both
/// to validate chunk streams and to pre-size re-timing structures
/// without scanning the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcTotals {
    /// Total trace entries of the processor.
    pub entries: u64,
    /// Total memory-system entries (loads, stores, syncs).
    pub mem_entries: u64,
    /// Maximum access latency observed anywhere in the trace.
    pub max_latency: u32,
}

/// Everything in a v3 archive except the chunk payloads: the hashed
/// header and trailer sections, plus the file offset where the chunk
/// records begin.
#[derive(Debug, Clone)]
pub struct ArchiveInfo {
    /// Canonical cache-key string the archive was generated under.
    pub key: String,
    /// Application name.
    pub app: String,
    /// The SPMD program all processors executed.
    pub program: Program,
    /// Index of the representative (busiest) processor.
    pub proc: u32,
    /// Total multiprocessor cycles of the generating run.
    pub mp_cycles: u64,
    /// Per-processor execution-time breakdowns of the generating run.
    pub breakdowns: Vec<Breakdown>,
    /// Per-processor trace totals.
    pub totals: Vec<ProcTotals>,
    /// Byte offset of the first chunk record.
    pub chunks_start: u64,
}

impl ArchiveInfo {
    /// Number of per-processor traces in the archive.
    pub fn num_procs(&self) -> usize {
        self.totals.len()
    }
}

/// Incremental v3 archive writer: a [`TraceSink`] that streams chunk
/// records to `w` as they arrive, then seals the trailer once the run
/// statistics are known.
#[derive(Debug)]
pub struct ArchiveWriter<W: Write> {
    w: W,
    totals: Vec<ProcTotals>,
    scratch: Vec<u8>,
}

impl<W: Write> ArchiveWriter<W> {
    /// Starts a v3 archive on `w`, writing the checksummed header.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn new(
        mut w: W,
        key: &str,
        app: &str,
        num_procs: usize,
        program: &Program,
    ) -> io::Result<ArchiveWriter<W>> {
        w.write_all(MAGIC)?;
        w.write_all(&[ARCHIVE_VERSION])?;
        let mut hw = HashingWriter::new(&mut w);
        write_str(&mut hw, key)?;
        write_str(&mut hw, app)?;
        hw.write_all(&(num_procs as u32).to_le_bytes())?;
        write_program(&mut hw, program)?;
        let checksum = hw.hash;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(ArchiveWriter {
            w,
            totals: vec![ProcTotals::default(); num_procs],
            scratch: Vec::new(),
        })
    }

    /// Writes the end sentinel and the checksummed trailer, returning
    /// the inner writer so the caller can flush or sync it.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn finish(
        mut self,
        proc: usize,
        mp_cycles: u64,
        breakdowns: &[Breakdown],
    ) -> io::Result<W> {
        self.w.write_all(&END_PROC.to_le_bytes())?;
        let mut payload = Vec::new();
        payload.extend_from_slice(&(proc as u32).to_le_bytes());
        payload.extend_from_slice(&mp_cycles.to_le_bytes());
        payload.extend_from_slice(&(breakdowns.len() as u32).to_le_bytes());
        for b in breakdowns {
            write_breakdown(&mut payload, b)?;
        }
        for t in &self.totals {
            payload.extend_from_slice(&t.entries.to_le_bytes());
            payload.extend_from_slice(&t.mem_entries.to_le_bytes());
            payload.extend_from_slice(&t.max_latency.to_le_bytes());
        }
        self.w.write_all(&payload)?;
        self.w.write_all(&fnv1a(&payload).to_le_bytes())?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        Ok(self.w)
    }

    /// Per-processor totals accumulated so far.
    pub fn totals(&self) -> &[ProcTotals] {
        &self.totals
    }
}

impl<W: Write> TraceSink for ArchiveWriter<W> {
    fn accept(&mut self, proc: usize, chunk: &TraceChunk) -> io::Result<()> {
        let totals = self.totals.get_mut(proc).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("chunk for processor {proc} outside archive"),
            )
        })?;
        if chunk.first_index != totals.entries {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "chunk of processor {proc} starts at entry {} but {} were written",
                    chunk.first_index, totals.entries
                ),
            ));
        }
        self.scratch.clear();
        for e in chunk.iter() {
            write_entry(&mut self.scratch, &e)?;
        }
        let mut header = [0u8; 28];
        header[0..4].copy_from_slice(&(proc as u32).to_le_bytes());
        header[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        header[12..20].copy_from_slice(&chunk.first_index.to_le_bytes());
        header[20..24].copy_from_slice(&chunk.meta.mem_entries.to_le_bytes());
        header[24..28].copy_from_slice(&chunk.meta.max_latency.to_le_bytes());
        let checksum = fnv1a_fold(fnv1a_fold(FNV_OFFSET, &header), &self.scratch);
        self.w.write_all(&header)?;
        self.w.write_all(&self.scratch)?;
        self.w.write_all(&checksum.to_le_bytes())?;
        totals.entries = chunk.end_index();
        totals.mem_entries += chunk.meta.mem_entries as u64;
        totals.max_latency = totals.max_latency.max(chunk.meta.max_latency);
        Ok(())
    }
}

/// One decoded chunk-record header.
struct ChunkHeader {
    proc: u32,
    entry_count: u32,
    byte_len: u32,
    first_index: u64,
    meta: ChunkMeta,
    raw: [u8; 28],
}

/// Reads the next chunk-record header, or `None` at the end sentinel.
fn read_chunk_header<R: Read>(r: &mut R) -> Result<Option<ChunkHeader>, DecodeError> {
    let proc_bytes: [u8; 4] = read_exact(r)?;
    let proc = u32::from_le_bytes(proc_bytes);
    if proc == END_PROC {
        return Ok(None);
    }
    let rest: [u8; 24] = read_exact(r)?;
    let mut raw = [0u8; 28];
    raw[0..4].copy_from_slice(&proc_bytes);
    raw[4..28].copy_from_slice(&rest);
    let entry_count = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    let byte_len = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if entry_count > MAX_CHUNK_ENTRIES {
        return Err(DecodeError::BadCode {
            what: "chunk entry count",
            code: entry_count as u64,
        });
    }
    if byte_len > MAX_CHUNK_BYTES {
        return Err(DecodeError::BadCode {
            what: "chunk byte length",
            code: byte_len as u64,
        });
    }
    Ok(Some(ChunkHeader {
        proc,
        entry_count,
        byte_len,
        first_index: u64::from_le_bytes(rest[8..16].try_into().unwrap()),
        meta: ChunkMeta {
            mem_entries: u32::from_le_bytes(rest[16..20].try_into().unwrap()),
            max_latency: u32::from_le_bytes(rest[20..24].try_into().unwrap()),
        },
        raw,
    }))
}

/// Reads and checksum-verifies one record's payload into `buf`.
fn read_chunk_payload<R: Read>(
    r: &mut R,
    h: &ChunkHeader,
    buf: &mut Vec<u8>,
) -> Result<(), DecodeError> {
    buf.clear();
    buf.resize(h.byte_len as usize, 0);
    r.read_exact(buf)?;
    let stored = u64::from_le_bytes(read_exact(r)?);
    let computed = fnv1a_fold(fnv1a_fold(FNV_OFFSET, &h.raw), buf);
    if stored != computed {
        return Err(DecodeError::BadChecksum { stored, computed });
    }
    Ok(())
}

/// Reads a v3 archive's header and trailer (both checksum-verified)
/// without touching the chunk payloads — two seeks plus the header
/// read, regardless of archive size.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed or damaged input, including
/// [`DecodeError::BadVersion`] for v1/v2 files.
pub fn read_archive_info<R: Read + Seek>(mut r: R) -> Result<ArchiveInfo, DecodeError> {
    r.seek(SeekFrom::Start(0))?;
    let magic: [u8; 4] = read_exact(&mut r)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let [version] = read_exact::<_, 1>(&mut r)?;
    if version != ARCHIVE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let mut hr = HashingReader::new(&mut r);
    let key = read_str(&mut hr)?;
    let app = read_str(&mut hr)?;
    let num_procs = u32::from_le_bytes(read_exact(&mut hr)?);
    if num_procs == 0 || num_procs > 1 << 16 {
        return Err(DecodeError::BadCode {
            what: "processor count",
            code: num_procs as u64,
        });
    }
    let program = read_program(&mut hr)?;
    let computed = hr.hash;
    let stored = u64::from_le_bytes(read_exact(&mut r)?);
    if stored != computed {
        return Err(DecodeError::BadChecksum { stored, computed });
    }
    let chunks_start = r.stream_position()?;

    let file_len = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::End(-4))?;
    let trailer_len = u32::from_le_bytes(read_exact(&mut r)?);
    if trailer_len > MAX_TRAILER_BYTES || (trailer_len as u64) + 12 > file_len - chunks_start {
        return Err(DecodeError::BadCode {
            what: "trailer length",
            code: trailer_len as u64,
        });
    }
    r.seek(SeekFrom::End(-(trailer_len as i64 + 12)))?;
    let mut payload = vec![0u8; trailer_len as usize];
    r.read_exact(&mut payload)?;
    let stored = u64::from_le_bytes(read_exact(&mut r)?);
    let computed = fnv1a(&payload);
    if stored != computed {
        return Err(DecodeError::BadChecksum { stored, computed });
    }

    let p = &mut payload.as_slice();
    let proc = u32::from_le_bytes(read_exact(p)?);
    let mp_cycles = u64::from_le_bytes(read_exact(p)?);
    let breakdown_count = u32::from_le_bytes(read_exact(p)?);
    if breakdown_count != num_procs {
        return Err(DecodeError::BadCode {
            what: "breakdown count",
            code: breakdown_count as u64,
        });
    }
    let mut breakdowns = Vec::with_capacity(num_procs as usize);
    for _ in 0..breakdown_count {
        breakdowns.push(read_breakdown(p)?);
    }
    let mut totals = Vec::with_capacity(num_procs as usize);
    for _ in 0..num_procs {
        totals.push(ProcTotals {
            entries: u64::from_le_bytes(read_exact(p)?),
            mem_entries: u64::from_le_bytes(read_exact(p)?),
            max_latency: u32::from_le_bytes(read_exact(p)?),
        });
    }
    if !p.is_empty() {
        return Err(DecodeError::BadCode {
            what: "trailer length",
            code: trailer_len as u64,
        });
    }
    if proc >= num_procs {
        return Err(DecodeError::BadCode {
            what: "representative processor index",
            code: proc as u64,
        });
    }
    Ok(ArchiveInfo {
        key,
        app,
        program,
        proc,
        mp_cycles,
        breakdowns,
        totals,
        chunks_start,
    })
}

/// Sequentially verifies every chunk record of a v3 archive against
/// its per-record checksum and the trailer totals, without decoding a
/// single entry. Memory use is one chunk payload, regardless of
/// archive size.
///
/// A cache can therefore establish, in one bounded pass at load time,
/// that streaming any processor's chunks later cannot fail on damaged
/// data — corruption is handled by eviction up front, not by surprise
/// mid-re-timing.
///
/// # Errors
///
/// Returns a [`DecodeError`] naming the first inconsistency.
pub fn validate_archive_chunks<R: Read + Seek>(
    mut r: R,
    info: &ArchiveInfo,
) -> Result<(), DecodeError> {
    r.seek(SeekFrom::Start(info.chunks_start))?;
    let mut seen = vec![ProcTotals::default(); info.totals.len()];
    let mut buf = Vec::new();
    while let Some(h) = read_chunk_header(&mut r)? {
        let proc = h.proc as usize;
        let Some(acc) = seen.get_mut(proc) else {
            return Err(DecodeError::BadCode {
                what: "chunk processor index",
                code: h.proc as u64,
            });
        };
        if h.first_index != acc.entries {
            return Err(DecodeError::BadCode {
                what: "chunk first index",
                code: h.first_index,
            });
        }
        read_chunk_payload(&mut r, &h, &mut buf)?;
        acc.entries += h.entry_count as u64;
        acc.mem_entries += h.meta.mem_entries as u64;
        acc.max_latency = acc.max_latency.max(h.meta.max_latency);
    }
    if seen != info.totals {
        return Err(DecodeError::BadCode {
            what: "per-processor totals",
            code: 0,
        });
    }
    Ok(())
}

/// A [`TraceSource`] streaming one processor's chunks out of a v3
/// archive, skipping other processors' records via their length
/// fields. Each record is checksum-verified as it is read.
#[derive(Debug)]
pub struct ChunkReader<R: Read + Seek> {
    r: R,
    proc: u32,
    totals: ProcTotals,
    next_index: u64,
    done: bool,
    buf: Vec<u8>,
}

impl<R: Read + Seek> ChunkReader<R> {
    /// A source for processor `proc` of the archive described by
    /// `info`, reading from `r` (typically a buffered clone of the
    /// archive's file handle).
    ///
    /// # Errors
    ///
    /// Fails if `proc` is out of range or the initial seek fails.
    pub fn new(mut r: R, info: &ArchiveInfo, proc: usize) -> Result<ChunkReader<R>, DecodeError> {
        let totals = *info.totals.get(proc).ok_or(DecodeError::BadCode {
            what: "processor index",
            code: proc as u64,
        })?;
        r.seek(SeekFrom::Start(info.chunks_start))?;
        Ok(ChunkReader {
            r,
            proc: proc as u32,
            totals,
            next_index: 0,
            done: false,
            buf: Vec::new(),
        })
    }
}

impl<R: Read + Seek> TraceSource for ChunkReader<R> {
    fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let Some(h) = read_chunk_header(&mut self.r)? else {
                self.done = true;
                if self.next_index != self.totals.entries {
                    return Err(StreamError::Corrupt(format!(
                        "processor {} stream ended at entry {} of {}",
                        self.proc, self.next_index, self.totals.entries
                    )));
                }
                return Ok(None);
            };
            if h.proc != self.proc {
                self.r
                    .seek(SeekFrom::Current(h.byte_len as i64 + 8))
                    .map_err(DecodeError::Io)?;
                continue;
            }
            read_chunk_payload(&mut self.r, &h, &mut self.buf)?;
            let mut chunk = TraceChunk::with_capacity(h.first_index, h.entry_count as usize);
            let payload = &mut self.buf.as_slice();
            for _ in 0..h.entry_count {
                chunk.push(read_entry(payload)?);
            }
            if !payload.is_empty() {
                return Err(StreamError::Corrupt(format!(
                    "chunk of processor {} has {} trailing bytes",
                    self.proc,
                    payload.len()
                )));
            }
            if chunk.meta != h.meta {
                return Err(StreamError::Corrupt(format!(
                    "chunk of processor {} declares metadata {:?} but decodes to {:?}",
                    self.proc, h.meta, chunk.meta
                )));
            }
            self.next_index = chunk.end_index();
            return Ok(Some(Arc::new(chunk)));
        }
    }

    fn entries_hint(&self) -> Option<u64> {
        Some(self.totals.entries)
    }

    fn mem_entries_hint(&self) -> Option<u64> {
        Some(self.totals.mem_entries)
    }

    fn max_latency_hint(&self) -> Option<u32> {
        Some(self.totals.max_latency)
    }
}

/// Writes a complete [`TraceArchive`] in the v3 chunked container,
/// slicing each trace into chunks of `chunk_len` entries. Entries are
/// encoded straight from the trace slices — nothing is deep-copied.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_archive_v3<W: Write>(
    w: W,
    archive: &TraceArchive,
    chunk_len: usize,
) -> io::Result<()> {
    let mut aw = ArchiveWriter::new(
        w,
        &archive.key,
        &archive.app,
        archive.traces.len(),
        &archive.program,
    )?;
    for (proc, trace) in archive.traces.iter().enumerate() {
        let mut src = SliceSource::with_chunk_len(trace, chunk_len.max(1));
        while let Some(chunk) = src.next_chunk().expect("slice sources cannot fail") {
            aw.accept(proc, &chunk)?;
        }
    }
    aw.finish(
        archive.proc as usize,
        archive.mp_cycles,
        &archive.breakdowns,
    )?;
    Ok(())
}

/// Reads a whole v3 archive back into a materialized [`TraceArchive`]
/// — the round-trip counterpart of [`write_archive_v3`], used by tests
/// and anything that genuinely needs every trace in memory.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed or damaged input.
pub fn read_archive_v3<R: Read + Seek>(mut r: R) -> Result<TraceArchive, DecodeError> {
    let info = read_archive_info(&mut r)?;
    let mut traces = Vec::with_capacity(info.num_procs());
    for proc in 0..info.num_procs() {
        let mut src = ChunkReader::new(&mut r, &info, proc)?;
        let trace = crate::stream::collect_source(&mut src).map_err(|e| match e {
            StreamError::Io(e) => DecodeError::Io(e),
            StreamError::Decode(e) => e,
            StreamError::Corrupt(m) => DecodeError::BadCode {
                what: "chunk stream",
                code: fnv1a(m.as_bytes()),
            },
        })?;
        if trace.len() as u64 != info.totals[proc].entries {
            return Err(DecodeError::BadCode {
                what: "per-processor totals",
                code: trace.len() as u64,
            });
        }
        traces.push(trace);
    }
    Ok(TraceArchive {
        key: info.key,
        app: info.app,
        proc: info.proc,
        mp_cycles: info.mp_cycles,
        breakdowns: info.breakdowns,
        program: info.program,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_isa::rng::XorShift64;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(roundtrip(&Trace::new()), Trace::new());
    }

    #[test]
    fn all_variants_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEntry::compute(1));
        t.push(TraceEntry {
            pc: 2,
            op: TraceOp::Load(MemAccess::miss(0xdead0, 50)),
        });
        t.push(TraceEntry {
            pc: 3,
            op: TraceOp::Store(MemAccess::hit(0x10)),
        });
        t.push(TraceEntry {
            pc: 4,
            op: TraceOp::Branch {
                taken: true,
                target: 99,
            },
        });
        t.push(TraceEntry {
            pc: 5,
            op: TraceOp::Jump { target: 7 },
        });
        t.push(TraceEntry {
            pc: 6,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Barrier,
                addr: 0x40,
                wait: 123,
                access: 50,
            }),
        });
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::BadVersion(99)
        ));
    }

    #[test]
    fn zero_latency_rejected() {
        let mut t = Trace::new();
        t.push(TraceEntry {
            pc: 0,
            op: TraceOp::Load(MemAccess {
                addr: 8,
                miss: false,
                latency: 0,
            }),
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::BadLatency
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        let mut t = Trace::new();
        t.push(TraceEntry::compute(1));
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            DecodeError::Io(_)
        ));
    }

    const SYNC_KINDS: [SyncKind; 5] = [
        SyncKind::Lock,
        SyncKind::Unlock,
        SyncKind::Barrier,
        SyncKind::WaitEvent,
        SyncKind::SetEvent,
    ];

    fn gen_entry(rng: &mut XorShift64) -> TraceEntry {
        let nonzero_u32 = |rng: &mut XorShift64| (rng.next_u64() as u32).max(1);
        let op = match rng.next_below(6) {
            0 => TraceOp::Compute,
            1 => TraceOp::Load(MemAccess {
                addr: rng.next_u64(),
                miss: rng.next_bool(),
                latency: nonzero_u32(rng),
            }),
            2 => TraceOp::Store(MemAccess {
                addr: rng.next_u64(),
                miss: rng.next_bool(),
                latency: nonzero_u32(rng),
            }),
            3 => TraceOp::Branch {
                taken: rng.next_bool(),
                target: rng.next_u64() as u32,
            },
            4 => TraceOp::Jump {
                target: rng.next_u64() as u32,
            },
            _ => TraceOp::Sync(SyncAccess {
                kind: *rng.choose(&SYNC_KINDS),
                addr: rng.next_u64(),
                wait: rng.next_u64() as u32,
                access: nonzero_u32(rng),
            }),
        };
        TraceEntry {
            pc: rng.next_u64() as u32,
            op,
        }
    }

    #[test]
    fn arbitrary_traces_roundtrip() {
        let mut rng = XorShift64::seed_from_u64(0xF1);
        for case in 0..128 {
            let len = rng.range_usize(200);
            let entries: Vec<TraceEntry> = (0..len).map(|_| gen_entry(&mut rng)).collect();
            let t = Trace::from_entries(entries);
            assert_eq!(roundtrip(&t), t, "case {case}");
        }
    }

    fn sample_archive(rng: &mut XorShift64, num_procs: usize) -> TraceArchive {
        use lookahead_isa::{Assembler, IntReg};
        let mut a = Assembler::new();
        a.li(IntReg::T0, 1);
        a.halt();
        TraceArchive {
            key: "lktr-v3;app=TEST".to_string(),
            app: "TEST".to_string(),
            proc: (num_procs - 1) as u32,
            mp_cycles: 123_456,
            breakdowns: (0..num_procs)
                .map(|i| Breakdown {
                    busy: i as u64,
                    sync: 1,
                    read: 2,
                    write: 3,
                })
                .collect(),
            program: a.assemble().unwrap(),
            traces: (0..num_procs)
                .map(|_| {
                    let len = rng.range_usize(300);
                    Trace::from_entries((0..len).map(|_| gen_entry(rng)).collect())
                })
                .collect(),
        }
    }

    #[test]
    fn v3_roundtrips_at_awkward_chunk_sizes() {
        let mut rng = XorShift64::seed_from_u64(0xA3);
        for chunk_len in [1usize, 7, crate::stream::DEFAULT_CHUNK_LEN, 100_000] {
            let archive = sample_archive(&mut rng, 4);
            let mut buf = Vec::new();
            write_archive_v3(&mut buf, &archive, chunk_len).unwrap();
            let got = read_archive_v3(io::Cursor::new(&buf)).unwrap();
            assert_eq!(got, archive, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn v3_info_and_validation_agree_with_content() {
        let mut rng = XorShift64::seed_from_u64(0xB4);
        let archive = sample_archive(&mut rng, 3);
        let mut buf = Vec::new();
        write_archive_v3(&mut buf, &archive, 16).unwrap();
        let info = read_archive_info(io::Cursor::new(&buf)).unwrap();
        assert_eq!(info.key, archive.key);
        assert_eq!(info.proc, archive.proc);
        assert_eq!(info.mp_cycles, archive.mp_cycles);
        assert_eq!(info.breakdowns, archive.breakdowns);
        for (p, t) in archive.traces.iter().enumerate() {
            assert_eq!(info.totals[p].entries, t.len() as u64);
            assert_eq!(info.totals[p].mem_entries, t.mem_entries() as u64);
        }
        validate_archive_chunks(io::Cursor::new(&buf), &info).unwrap();
    }

    #[test]
    fn v3_chunk_reader_hints_and_skip_foreign_procs() {
        let mut rng = XorShift64::seed_from_u64(0xC5);
        let archive = sample_archive(&mut rng, 4);
        let mut buf = Vec::new();
        write_archive_v3(&mut buf, &archive, 9).unwrap();
        let info = read_archive_info(io::Cursor::new(&buf)).unwrap();
        for (p, want) in archive.traces.iter().enumerate() {
            let mut src = ChunkReader::new(io::Cursor::new(&buf), &info, p).unwrap();
            assert_eq!(src.entries_hint(), Some(want.len() as u64));
            assert_eq!(src.mem_entries_hint(), Some(want.mem_entries() as u64));
            let got = crate::stream::collect_source(&mut src).unwrap();
            assert_eq!(&got, want, "proc {p}");
        }
    }

    #[test]
    fn v3_flipped_bit_is_detected_wherever_it_lands() {
        let mut rng = XorShift64::seed_from_u64(0xD6);
        let archive = sample_archive(&mut rng, 2);
        let mut clean = Vec::new();
        write_archive_v3(&mut clean, &archive, 8).unwrap();
        for case in 0..64 {
            let mut buf = clean.clone();
            let pos = rng.range_usize(buf.len() - 5) + 5; // keep magic/version intact
            let bit = 1u8 << rng.next_below(8);
            buf[pos] ^= bit;
            let damaged = match read_archive_info(io::Cursor::new(&buf)) {
                Err(_) => true,
                Ok(info) => validate_archive_chunks(io::Cursor::new(&buf), &info).is_err(),
            };
            assert!(damaged, "case {case}: flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn v3_reader_rejects_v2_files_as_bad_version() {
        let mut rng = XorShift64::seed_from_u64(0xE7);
        let archive = sample_archive(&mut rng, 2);
        let mut buf = Vec::new();
        write_archive(&mut buf, &archive).unwrap();
        assert!(matches!(
            read_archive_info(io::Cursor::new(&buf)).unwrap_err(),
            DecodeError::BadVersion(2)
        ));
    }

    #[test]
    fn v3_writer_streams_interleaved_procs() {
        let t0 = Trace::from_entries((0..10).map(TraceEntry::compute).collect());
        let t1 = Trace::from_entries((10..14).map(TraceEntry::compute).collect());
        let mut a = lookahead_isa::Assembler::new();
        a.halt();
        let program = a.assemble().unwrap();
        let mut buf = Vec::new();
        let mut w = ArchiveWriter::new(&mut buf, "k", "APP", 2, &program).unwrap();
        // Interleave: proc 1, proc 0, proc 0, proc 1 — per-proc order holds.
        w.accept(1, &TraceChunk::from_slice(0, &t1.entries()[0..2]))
            .unwrap();
        w.accept(0, &TraceChunk::from_slice(0, &t0.entries()[0..6]))
            .unwrap();
        w.accept(0, &TraceChunk::from_slice(6, &t0.entries()[6..10]))
            .unwrap();
        w.accept(1, &TraceChunk::from_slice(2, &t1.entries()[2..4]))
            .unwrap();
        let breakdowns = vec![Breakdown::default(); 2];
        w.finish(0, 7, &breakdowns).unwrap();
        let got = read_archive_v3(io::Cursor::new(&buf)).unwrap();
        assert_eq!(got.traces, vec![t0, t1]);
        assert_eq!(got.mp_cycles, 7);
    }

    #[test]
    fn v3_writer_rejects_out_of_order_chunks() {
        let mut a = lookahead_isa::Assembler::new();
        a.halt();
        let program = a.assemble().unwrap();
        let mut buf = Vec::new();
        let mut w = ArchiveWriter::new(&mut buf, "k", "APP", 1, &program).unwrap();
        let err = w
            .accept(0, &TraceChunk::from_slice(5, &[TraceEntry::compute(0)]))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
