//! Chunked trace streaming: bounded-memory producers and consumers.
//!
//! The materialized [`Trace`] representation costs O(full trace) memory
//! per processor at every pipeline stage — generation, caching and
//! re-timing each held complete entry vectors. This module introduces
//! the streaming counterparts the whole pipeline is built on:
//!
//! * a [`TraceChunk`] is a fixed-size block of consecutive entries plus
//!   the per-chunk metadata consumers pre-size from (memory-entry
//!   count, maximum observed latency). The payload is stored as
//!   structure-of-arrays columns (`pc`, packed op kind, address,
//!   latency, sync wait), decoded once per chunk and shared by every
//!   consumer holding the chunk's [`Arc`];
//! * a [`TraceSink`] accepts chunks as a producer emits them (the
//!   multiprocessor simulator pushes per-processor chunks through a
//!   sink instead of growing owned `Vec`s);
//! * a [`TraceSource`] yields refcounted chunks on demand (a sliced
//!   in-memory trace, or an archive file read incrementally from
//!   disk);
//! * a [`TraceCursor`] adapts a source to the random-access-within-a-
//!   window pattern the re-timing engines use, retaining only the
//!   chunks that cover the engine's live instruction window;
//! * a [`GangCursor`] fans one source out to N concurrent subscribers,
//!   so a whole sweep's worth of engines re-times the same trace from
//!   a single decode pass.
//!
//! Memory is therefore O(chunk × processors) during generation and
//! O(window) during re-timing, instead of O(full trace × processors).

use crate::record::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};
use crate::storage::DecodeError;
use lookahead_isa::SyncKind;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::sync::{Arc, Condvar, Mutex};

/// Default chunk granularity, in entries. At ~21 bytes per entry a
/// chunk is ~170 KiB: large enough to amortize per-chunk overhead,
/// small enough that a 16-processor generation holds only a few MiB of
/// in-flight trace.
pub const DEFAULT_CHUNK_LEN: usize = 8192;

/// Per-chunk metadata, aggregated as entries are appended. Consumers
/// use it to pre-size their structures (e.g. the DS engine's memop
/// list) without scanning entries twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkMeta {
    /// Number of entries that perform a memory access (loads, stores,
    /// synchronization accesses).
    pub mem_entries: u32,
    /// Maximum access latency observed in the chunk (0 if none).
    pub max_latency: u32,
}

impl ChunkMeta {
    /// Folds one entry into the running metadata.
    pub fn observe(&mut self, e: &TraceEntry) {
        match e.op {
            TraceOp::Load(m) | TraceOp::Store(m) => {
                self.mem_entries += 1;
                self.max_latency = self.max_latency.max(m.latency);
            }
            TraceOp::Sync(s) => {
                self.mem_entries += 1;
                self.max_latency = self.max_latency.max(s.access);
            }
            TraceOp::Compute | TraceOp::Branch { .. } | TraceOp::Jump { .. } => {}
        }
    }

    /// The metadata of a whole slice (what `observe` over every entry
    /// accumulates).
    pub fn of_entries(entries: &[TraceEntry]) -> ChunkMeta {
        let mut m = ChunkMeta::default();
        for e in entries {
            m.observe(e);
        }
        m
    }
}

// The packed op-kind byte of the SoA layout: bits 0-2 select the
// operation, bit 3 is the per-op flag (cache miss for loads/stores,
// taken for branches), bits 4-6 carry the sync kind.
const KIND_COMPUTE: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_BRANCH: u8 = 3;
const KIND_JUMP: u8 = 4;
const KIND_SYNC: u8 = 5;
const KIND_OP_MASK: u8 = 0x07;
const KIND_FLAG: u8 = 0x08;
const KIND_SYNC_SHIFT: u8 = 4;

fn sync_kind_bits(kind: SyncKind) -> u8 {
    (match kind {
        SyncKind::Lock => 0u8,
        SyncKind::Unlock => 1,
        SyncKind::Barrier => 2,
        SyncKind::WaitEvent => 3,
        SyncKind::SetEvent => 4,
    }) << KIND_SYNC_SHIFT
}

fn sync_kind_from_bits(k: u8) -> SyncKind {
    match (k >> KIND_SYNC_SHIFT) & 0x07 {
        0 => SyncKind::Lock,
        1 => SyncKind::Unlock,
        2 => SyncKind::Barrier,
        3 => SyncKind::WaitEvent,
        _ => SyncKind::SetEvent,
    }
}

/// A block of consecutive trace entries from one processor's stream,
/// stored as structure-of-arrays columns.
///
/// The columns are decoded once (at generation or archive read) and
/// then shared read-only by every consumer via `Arc<TraceChunk>`: the
/// hot fields a re-timing engine touches per entry (`pc`, the packed
/// kind byte) are dense 4- and 1-byte columns instead of a 24-byte
/// tagged union, and entries are reconstructed on access with
/// [`entry`](Self::entry) / iterated with [`iter`](Self::iter).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChunk {
    /// Global index (within the processor's trace) of the first entry.
    pub first_index: u64,
    /// Aggregate metadata over the entries.
    pub meta: ChunkMeta,
    pc: Vec<u32>,
    kind: Vec<u8>,
    /// Memory/sync address, or branch/jump target (as u64).
    addr: Vec<u64>,
    /// Memory latency, or sync access latency.
    lat: Vec<u32>,
    /// Sync wait cycles (0 for everything else).
    wait: Vec<u32>,
}

impl TraceChunk {
    /// An empty chunk starting at `first_index` with room for
    /// `capacity` entries in every column.
    pub fn with_capacity(first_index: u64, capacity: usize) -> TraceChunk {
        TraceChunk {
            first_index,
            meta: ChunkMeta::default(),
            pc: Vec::with_capacity(capacity),
            kind: Vec::with_capacity(capacity),
            addr: Vec::with_capacity(capacity),
            lat: Vec::with_capacity(capacity),
            wait: Vec::with_capacity(capacity),
        }
    }

    /// Builds a chunk from a slice starting at `first_index`,
    /// transposing the entries into columns (no intermediate clone of
    /// the slice is made).
    pub fn from_slice(first_index: u64, entries: &[TraceEntry]) -> TraceChunk {
        let mut c = TraceChunk::with_capacity(first_index, entries.len());
        for e in entries {
            c.push(*e);
        }
        c
    }

    /// Builds a chunk by consuming an owned entry vector — the
    /// move-only constructor for producers that already own their
    /// entries (nothing is cloned; the vector is transposed in place
    /// and dropped).
    pub fn from_vec(first_index: u64, entries: Vec<TraceEntry>) -> TraceChunk {
        let mut c = TraceChunk::with_capacity(first_index, entries.len());
        for e in entries {
            c.push(e);
        }
        c
    }

    /// Appends one entry, folding it into the chunk metadata.
    pub fn push(&mut self, e: TraceEntry) {
        self.meta.observe(&e);
        self.pc.push(e.pc);
        let (kind, addr, lat, wait) = match e.op {
            TraceOp::Compute => (KIND_COMPUTE, 0, 0, 0),
            TraceOp::Load(m) => (
                KIND_LOAD | if m.miss { KIND_FLAG } else { 0 },
                m.addr,
                m.latency,
                0,
            ),
            TraceOp::Store(m) => (
                KIND_STORE | if m.miss { KIND_FLAG } else { 0 },
                m.addr,
                m.latency,
                0,
            ),
            TraceOp::Branch { taken, target } => (
                KIND_BRANCH | if taken { KIND_FLAG } else { 0 },
                u64::from(target),
                0,
                0,
            ),
            TraceOp::Jump { target } => (KIND_JUMP, u64::from(target), 0, 0),
            TraceOp::Sync(s) => (KIND_SYNC | sync_kind_bits(s.kind), s.addr, s.access, s.wait),
        };
        self.kind.push(kind);
        self.addr.push(addr);
        self.lat.push(lat);
        self.wait.push(wait);
    }

    /// Number of entries in the chunk.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the chunk holds no entries.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Index one past the last entry of this chunk.
    pub fn end_index(&self) -> u64 {
        self.first_index + self.pc.len() as u64
    }

    /// The PC column value at `i` — the fast path for consumers that
    /// only need the instruction index (a dense 4-byte column read,
    /// no entry reconstruction).
    #[inline]
    pub fn pc_at(&self, i: usize) -> u32 {
        self.pc[i]
    }

    /// Reconstructs the entry at `i` from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn entry(&self, i: usize) -> TraceEntry {
        let k = self.kind[i];
        let op = match k & KIND_OP_MASK {
            KIND_COMPUTE => TraceOp::Compute,
            KIND_LOAD => TraceOp::Load(MemAccess {
                addr: self.addr[i],
                miss: k & KIND_FLAG != 0,
                latency: self.lat[i],
            }),
            KIND_STORE => TraceOp::Store(MemAccess {
                addr: self.addr[i],
                miss: k & KIND_FLAG != 0,
                latency: self.lat[i],
            }),
            KIND_BRANCH => TraceOp::Branch {
                taken: k & KIND_FLAG != 0,
                target: self.addr[i] as u32,
            },
            KIND_JUMP => TraceOp::Jump {
                target: self.addr[i] as u32,
            },
            _ => TraceOp::Sync(SyncAccess {
                kind: sync_kind_from_bits(k),
                addr: self.addr[i],
                wait: self.wait[i],
                access: self.lat[i],
            }),
        };
        TraceEntry { pc: self.pc[i], op }
    }

    /// Iterates the entries in order, reconstructing each from the
    /// columns.
    pub fn iter(&self) -> ChunkIter<'_> {
        ChunkIter { chunk: self, i: 0 }
    }

    /// Borrowed column view of the entry at `i` — accessors read the
    /// backing columns directly, nothing is reconstructed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn view(&self, i: usize) -> EntryView<'_> {
        assert!(i < self.len(), "view index {i} out of range");
        EntryView { chunk: self, i }
    }

    /// Iterates borrowed column views over the entries in order — the
    /// allocation-free counterpart of [`iter`](Self::iter) for
    /// consumers written against [`EntryCols`].
    pub fn views(&self) -> impl Iterator<Item = EntryView<'_>> {
        (0..self.len()).map(move |i| EntryView { chunk: self, i })
    }
}

/// The operation class of one entry: [`TraceOp`] without its payload,
/// decodable straight from the packed kind byte of the SoA layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A compute (ALU) instruction.
    Compute,
    /// A load.
    Load,
    /// A store.
    Store,
    /// A conditional branch.
    Branch,
    /// An unconditional jump.
    Jump,
    /// A synchronization operation of the given kind.
    Sync(SyncKind),
}

/// Per-column access to one trace entry.
///
/// Implemented by the materialized [`TraceEntry`] and by the borrowed
/// [`EntryView`], so an engine's per-entry body is written once
/// against these accessors yet monomorphizes to direct column reads on
/// the streamed path: no [`TraceOp`] union is built per entry, and
/// columns the engine never asks for (addresses, say) are never
/// touched.
pub trait EntryCols {
    /// Program counter (instruction index).
    fn pc(&self) -> u32;
    /// Payload-free operation class.
    fn class(&self) -> OpClass;
    /// Memory/sync address, or branch/jump target widened to `u64`.
    fn addr(&self) -> u64;
    /// Memory latency or sync access latency; 0 for everything else.
    fn latency(&self) -> u32;
    /// Sync wait cycles; 0 for everything else.
    fn wait(&self) -> u32;
}

impl EntryCols for TraceEntry {
    #[inline]
    fn pc(&self) -> u32 {
        self.pc
    }

    #[inline]
    fn class(&self) -> OpClass {
        match self.op {
            TraceOp::Compute => OpClass::Compute,
            TraceOp::Load(_) => OpClass::Load,
            TraceOp::Store(_) => OpClass::Store,
            TraceOp::Branch { .. } => OpClass::Branch,
            TraceOp::Jump { .. } => OpClass::Jump,
            TraceOp::Sync(s) => OpClass::Sync(s.kind),
        }
    }

    #[inline]
    fn addr(&self) -> u64 {
        match self.op {
            TraceOp::Compute => 0,
            TraceOp::Load(m) | TraceOp::Store(m) => m.addr,
            TraceOp::Branch { target, .. } | TraceOp::Jump { target } => u64::from(target),
            TraceOp::Sync(s) => s.addr,
        }
    }

    #[inline]
    fn latency(&self) -> u32 {
        match self.op {
            TraceOp::Load(m) | TraceOp::Store(m) => m.latency,
            TraceOp::Sync(s) => s.access,
            _ => 0,
        }
    }

    #[inline]
    fn wait(&self) -> u32 {
        match self.op {
            TraceOp::Sync(s) => s.wait,
            _ => 0,
        }
    }
}

/// A borrowed view of one entry's columns within a [`TraceChunk`].
///
/// Copy-cheap (a pointer and an index); every accessor is a single
/// column load.
#[derive(Debug, Clone, Copy)]
pub struct EntryView<'a> {
    chunk: &'a TraceChunk,
    i: usize,
}

impl EntryCols for EntryView<'_> {
    #[inline]
    fn pc(&self) -> u32 {
        self.chunk.pc[self.i]
    }

    #[inline]
    fn class(&self) -> OpClass {
        let k = self.chunk.kind[self.i];
        match k & KIND_OP_MASK {
            KIND_COMPUTE => OpClass::Compute,
            KIND_LOAD => OpClass::Load,
            KIND_STORE => OpClass::Store,
            KIND_BRANCH => OpClass::Branch,
            KIND_JUMP => OpClass::Jump,
            _ => OpClass::Sync(sync_kind_from_bits(k)),
        }
    }

    #[inline]
    fn addr(&self) -> u64 {
        self.chunk.addr[self.i]
    }

    #[inline]
    fn latency(&self) -> u32 {
        self.chunk.lat[self.i]
    }

    #[inline]
    fn wait(&self) -> u32 {
        self.chunk.wait[self.i]
    }
}

/// Iterator over a chunk's reconstructed entries.
#[derive(Debug)]
pub struct ChunkIter<'a> {
    chunk: &'a TraceChunk,
    i: usize,
}

impl Iterator for ChunkIter<'_> {
    type Item = TraceEntry;

    #[inline]
    fn next(&mut self) -> Option<TraceEntry> {
        if self.i >= self.chunk.len() {
            return None;
        }
        let e = self.chunk.entry(self.i);
        self.i += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.chunk.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChunkIter<'_> {}

/// Consumes per-processor chunks as a producer emits them.
///
/// The error type is [`io::Error`] because the interesting sinks write
/// archives to disk; in-memory sinks simply never fail.
pub trait TraceSink {
    /// Accepts the next chunk of processor `proc`'s trace. Chunks of
    /// one processor arrive in trace order; chunks of different
    /// processors may interleave arbitrarily. Sinks only read the
    /// chunk, so producers keep ownership (and can hand the same chunk
    /// to several sinks).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from disk-backed sinks.
    fn accept(&mut self, proc: usize, chunk: &TraceChunk) -> io::Result<()>;
}

/// A sink that reassembles the chunk stream into whole [`Trace`]s —
/// the adapter that keeps the materialized `SimOutcome::traces` API
/// working on top of the streamed producer.
#[derive(Debug)]
pub struct CollectSink {
    traces: Vec<Trace>,
}

impl CollectSink {
    /// A collector for `num_procs` processors.
    pub fn new(num_procs: usize) -> CollectSink {
        CollectSink {
            traces: (0..num_procs).map(|_| Trace::new()).collect(),
        }
    }

    /// The reassembled traces, one per processor.
    pub fn into_traces(self) -> Vec<Trace> {
        self.traces
    }
}

impl TraceSink for CollectSink {
    fn accept(&mut self, proc: usize, chunk: &TraceChunk) -> io::Result<()> {
        debug_assert_eq!(
            chunk.first_index,
            self.traces[proc].len() as u64,
            "chunks of one processor must arrive in trace order"
        );
        self.traces[proc].extend(chunk.iter());
        Ok(())
    }
}

/// A sink that discards every chunk (for producers whose side effects
/// — statistics, final memory — are all the caller wants).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn accept(&mut self, _proc: usize, _chunk: &TraceChunk) -> io::Result<()> {
        Ok(())
    }
}

/// Accumulates one processor's entries into fixed-capacity chunks.
///
/// The column buffers never grow past their construction capacity
/// (asserted in debug builds): a full buffer is handed out as a chunk
/// and fresh columns are allocated. Entries are pushed straight into
/// the chunk's SoA columns, so the generation path is move-only — no
/// intermediate entry vector is built or cloned.
#[derive(Debug)]
pub struct ChunkBuilder {
    chunk: TraceChunk,
    capacity: usize,
    ready: Option<TraceChunk>,
}

impl ChunkBuilder {
    /// A builder emitting chunks of at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ChunkBuilder {
        assert!(capacity > 0, "chunk capacity must be positive");
        ChunkBuilder {
            chunk: TraceChunk::with_capacity(0, capacity),
            capacity,
            ready: None,
        }
    }

    /// Appends one entry. When the buffer fills, the completed chunk
    /// becomes available from [`take_ready`](Self::take_ready); the
    /// caller must drain it before another `capacity` entries arrive.
    pub fn push(&mut self, e: TraceEntry) {
        debug_assert!(
            self.chunk.len() < self.capacity,
            "ready chunk not drained before the buffer refilled"
        );
        self.chunk.push(e);
        if self.chunk.len() == self.capacity {
            self.seal();
        }
    }

    /// Total entries pushed so far (across all chunks).
    pub fn entries_pushed(&self) -> u64 {
        self.chunk.end_index()
    }

    /// The completed chunk, if the buffer filled since the last call.
    pub fn take_ready(&mut self) -> Option<TraceChunk> {
        self.ready.take()
    }

    /// Seals any buffered entries into a final (possibly short) chunk.
    /// Returns `None` if nothing is buffered.
    pub fn finish(&mut self) -> Option<TraceChunk> {
        if self.chunk.is_empty() {
            return self.ready.take();
        }
        debug_assert!(self.ready.is_none(), "ready chunk not drained at finish");
        self.seal();
        self.ready.take()
    }

    fn seal(&mut self) {
        debug_assert_eq!(
            self.chunk.pc.capacity(),
            self.capacity,
            "chunk buffer must never reallocate mid-run"
        );
        let next_index = self.chunk.end_index();
        let chunk = std::mem::replace(
            &mut self.chunk,
            TraceChunk::with_capacity(next_index, self.capacity),
        );
        debug_assert!(self.ready.is_none(), "ready chunk not drained before seal");
        self.ready = Some(chunk);
    }
}

/// Errors produced while pulling chunks from a [`TraceSource`].
#[derive(Debug)]
pub enum StreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A chunk failed its checksum or could not be decoded.
    Decode(DecodeError),
    /// The stream's structure is inconsistent (e.g. a gap between
    /// consecutive chunks of one processor).
    Corrupt(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error reading trace stream: {e}"),
            StreamError::Decode(e) => write!(f, "bad chunk in trace stream: {e}"),
            StreamError::Corrupt(m) => write!(f, "inconsistent trace stream: {m}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Decode(e) => Some(e),
            StreamError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> StreamError {
        StreamError::Decode(e)
    }
}

/// Produces one processor's trace as a sequence of refcounted chunks.
///
/// Chunks are handed out as `Arc` so fan-out consumers (the
/// [`GangCursor`], cursors with live lookback windows) can share one
/// decoded chunk without copying it.
pub trait TraceSource {
    /// The next chunk in trace order, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] on I/O failure or a damaged chunk.
    fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError>;

    /// Total entry count, when known up front (archives know it from
    /// their trailer; live generators do not).
    fn entries_hint(&self) -> Option<u64> {
        None
    }

    /// Total memory-entry count, when known up front.
    fn mem_entries_hint(&self) -> Option<u64> {
        None
    }

    /// Maximum access latency in the stream, when known up front.
    fn max_latency_hint(&self) -> Option<u32> {
        None
    }
}

/// A mutable reference to a source is itself a source, so engines
/// taking `&mut dyn TraceSource` can hand it to a [`TraceCursor`]
/// without taking ownership.
impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
        (**self).next_chunk()
    }

    fn entries_hint(&self) -> Option<u64> {
        (**self).entries_hint()
    }

    fn mem_entries_hint(&self) -> Option<u64> {
        (**self).mem_entries_hint()
    }

    fn max_latency_hint(&self) -> Option<u32> {
        (**self).max_latency_hint()
    }
}

/// A source over an in-memory entry slice, split into fixed-size
/// chunks — the bridge from materialized traces to streamed consumers
/// (and the reference producer for chunk-boundary tests).
#[derive(Debug)]
pub struct SliceSource<'a> {
    entries: &'a [TraceEntry],
    pos: usize,
    chunk_len: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over `trace` with the default chunk size.
    pub fn new(trace: &'a Trace) -> SliceSource<'a> {
        SliceSource::with_chunk_len(trace, DEFAULT_CHUNK_LEN)
    }

    /// A source over `trace` emitting chunks of `chunk_len` entries.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(trace: &'a Trace, chunk_len: usize) -> SliceSource<'a> {
        assert!(chunk_len > 0, "chunk length must be positive");
        SliceSource {
            entries: trace.entries(),
            pos: 0,
            chunk_len,
        }
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
        if self.pos >= self.entries.len() {
            return Ok(None);
        }
        let end = (self.pos + self.chunk_len).min(self.entries.len());
        let chunk = TraceChunk::from_slice(self.pos as u64, &self.entries[self.pos..end]);
        self.pos = end;
        Ok(Some(Arc::new(chunk)))
    }

    fn entries_hint(&self) -> Option<u64> {
        Some(self.entries.len() as u64)
    }
}

/// Drains a source into a materialized [`Trace`] — the fallback
/// adapter for consumers without a streaming implementation.
///
/// # Errors
///
/// Propagates the source's first error.
pub fn collect_source(source: &mut dyn TraceSource) -> Result<Trace, StreamError> {
    let mut trace = Trace::with_capacity(source.entries_hint().unwrap_or(0) as usize);
    while let Some(chunk) = source.next_chunk()? {
        if chunk.first_index != trace.len() as u64 {
            return Err(StreamError::Corrupt(format!(
                "chunk starts at entry {} but {} entries were read",
                chunk.first_index,
                trace.len()
            )));
        }
        trace.extend(chunk.iter());
    }
    Ok(trace)
}

/// Random access within a sliding window over a trace, backed either
/// by a materialized slice (zero overhead) or by a [`TraceSource`]
/// pulled on demand.
///
/// The re-timing engines access entries at indices that never precede
/// the oldest instruction of their live window and never exceed the
/// decode frontier; the cursor keeps exactly the chunks covering that
/// range, releasing older ones as the window retires past them.
///
/// Source errors do not surface in the per-entry accessors (which
/// would poison the engines' hot loops): a failing source behaves as
/// if the trace ended at the last good entry, and the deferred error
/// is retrieved with [`take_error`](Self::take_error) after the run.
#[derive(Debug)]
pub struct TraceCursor<'a> {
    inner: Inner<'a>,
}

enum Inner<'a> {
    Slice {
        entries: &'a [TraceEntry],
        mem_entries: usize,
    },
    Stream {
        source: Box<dyn TraceSource + 'a>,
        chunks: VecDeque<Arc<TraceChunk>>,
        /// Global index of the first retained entry.
        base: u64,
        /// Global index one past the last pulled entry.
        loaded: u64,
        done: bool,
        error: Option<StreamError>,
    },
}

impl fmt::Debug for Inner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inner::Slice { entries, .. } => f
                .debug_struct("Slice")
                .field("len", &entries.len())
                .finish(),
            Inner::Stream {
                base,
                loaded,
                done,
                chunks,
                ..
            } => f
                .debug_struct("Stream")
                .field("base", base)
                .field("loaded", loaded)
                .field("done", done)
                .field("chunks", &chunks.len())
                .finish(),
        }
    }
}

impl<'a> TraceCursor<'a> {
    /// A cursor over a materialized trace (the zero-overhead fast
    /// path; entry access compiles to a bounds-checked index).
    pub fn slice(trace: &'a Trace) -> TraceCursor<'a> {
        TraceCursor {
            inner: Inner::Slice {
                entries: trace.entries(),
                mem_entries: trace.mem_entries(),
            },
        }
    }

    /// A cursor pulling chunks from `source` on demand.
    pub fn stream(source: Box<dyn TraceSource + 'a>) -> TraceCursor<'a> {
        TraceCursor {
            inner: Inner::Stream {
                source,
                chunks: VecDeque::new(),
                base: 0,
                loaded: 0,
                done: false,
                error: None,
            },
        }
    }

    /// Whether `idx` lies beyond the end of the trace, pulling chunks
    /// as needed to decide. After a source error this reports the
    /// truncated end; check [`take_error`](Self::take_error).
    #[inline]
    pub fn past_end(&mut self, idx: usize) -> bool {
        match &mut self.inner {
            Inner::Slice { entries, .. } => idx >= entries.len(),
            Inner::Stream {
                source,
                chunks,
                loaded,
                done,
                error,
                ..
            } => {
                while (idx as u64) >= *loaded && !*done && error.is_none() {
                    match source.next_chunk() {
                        Ok(Some(chunk)) => {
                            if chunk.first_index != *loaded {
                                *error = Some(StreamError::Corrupt(format!(
                                    "chunk starts at entry {} but {} entries were pulled",
                                    chunk.first_index, *loaded
                                )));
                                break;
                            }
                            *loaded = chunk.end_index();
                            chunks.push_back(chunk);
                        }
                        Ok(None) => *done = true,
                        Err(e) => *error = Some(e),
                    }
                }
                (idx as u64) >= *loaded
            }
        }
    }

    /// Locates the retained chunk covering `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was released or never loaded.
    #[inline]
    fn chunk_for(
        chunks: &VecDeque<Arc<TraceChunk>>,
        base: u64,
        loaded: u64,
        idx: u64,
    ) -> &TraceChunk {
        assert!(
            idx >= base && idx < loaded,
            "entry {idx} outside retained range [{base}, {loaded})"
        );
        // The window spans very few chunks; scan from the back since
        // accesses cluster at the decode frontier.
        for c in chunks.iter().rev() {
            if idx >= c.first_index {
                return c;
            }
        }
        unreachable!("retained range covers idx")
    }

    /// The entry at `idx`. The caller must have established
    /// `!past_end(idx)`; the entry must not have been released.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was released or never loaded.
    #[inline]
    pub fn entry(&self, idx: usize) -> TraceEntry {
        match &self.inner {
            Inner::Slice { entries, .. } => entries[idx],
            Inner::Stream {
                chunks,
                base,
                loaded,
                ..
            } => {
                let idx = idx as u64;
                let c = Self::chunk_for(chunks, *base, *loaded, idx);
                c.entry((idx - c.first_index) as usize)
            }
        }
    }

    /// The PC of the entry at `idx` — same contract as
    /// [`entry`](Self::entry), but touches only the dense PC column.
    #[inline]
    pub fn pc(&self, idx: usize) -> u32 {
        match &self.inner {
            Inner::Slice { entries, .. } => entries[idx].pc,
            Inner::Stream {
                chunks,
                base,
                loaded,
                ..
            } => {
                let idx = idx as u64;
                let c = Self::chunk_for(chunks, *base, *loaded, idx);
                c.pc_at((idx - c.first_index) as usize)
            }
        }
    }

    /// Entries loaded so far — for a slice, the full length; for a
    /// stream, a monotonically growing lower bound on the length.
    pub fn loaded_len(&self) -> usize {
        match &self.inner {
            Inner::Slice { entries, .. } => entries.len(),
            Inner::Stream { loaded, .. } => *loaded as usize,
        }
    }

    /// Declares that entries before `idx` will never be accessed
    /// again, allowing whole chunks to be dropped.
    #[inline]
    pub fn release_before(&mut self, idx: usize) {
        if let Inner::Stream { chunks, base, .. } = &mut self.inner {
            while let Some(front) = chunks.front() {
                if front.end_index() <= idx as u64 {
                    *base = front.end_index();
                    chunks.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Memory-entry count for pre-sizing: exact for slices, the
    /// source's hint (or 0) for streams.
    pub fn mem_entries_hint(&self) -> usize {
        match &self.inner {
            Inner::Slice { mem_entries, .. } => *mem_entries,
            Inner::Stream { source, .. } => source.mem_entries_hint().unwrap_or(0) as usize,
        }
    }

    /// The deferred source error, if the stream failed mid-run. A run
    /// whose cursor carries an error is truncated and must be
    /// discarded.
    pub fn take_error(&mut self) -> Option<StreamError> {
        match &mut self.inner {
            Inner::Slice { .. } => None,
            Inner::Stream { error, .. } => error.take(),
        }
    }
}

/// Counters a [`GangCursor`] accumulates over its pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GangStats {
    /// Chunks decoded from the underlying source (once each).
    pub chunks: u64,
    /// Largest number of chunks simultaneously retained in the ring.
    pub peak_ring: usize,
}

struct GangInner<'a> {
    /// Dropped once the stream ends or fails.
    source: Option<Box<dyn TraceSource + Send + 'a>>,
    /// Decoded chunks not yet consumed by every subscriber, oldest
    /// first. `ring[0]` has sequence number `base_seq`.
    ring: VecDeque<Arc<TraceChunk>>,
    base_seq: u64,
    /// Per-subscriber next chunk sequence (`u64::MAX` once the
    /// subscriber is dropped, so it never holds the ring back).
    next_seq: Vec<u64>,
    done: bool,
    /// First source failure, fanned out to every subscriber.
    error: Option<String>,
    stats: GangStats,
}

struct GangShared<'a> {
    inner: Mutex<GangInner<'a>>,
    /// Signalled when ring space frees up or the stream ends/fails.
    space: Condvar,
    max_lead: usize,
    entries: Option<u64>,
    mem_entries: Option<u64>,
    max_latency: Option<u32>,
}

/// Fans one seek-free pass over a trace source out to N concurrent
/// subscribers.
///
/// Each decoded chunk is pushed once into a bounded ring and handed to
/// every [`GangMember`] as an `Arc` clone; the ring drops its oldest
/// chunk exactly when the *slowest* subscriber has consumed it (a
/// subscriber's engine may additionally retain the `Arc` for its own
/// lookback window — the chunk is freed when the last holder lets go).
/// A subscriber that reaches the decode frontier performs the next
/// pull itself, under the gang lock; one that races `max_lead` chunks
/// ahead of the slowest blocks until the ring drains.
///
/// The protocol cannot deadlock: whenever the ring is non-empty, the
/// slowest subscriber's next chunk is in it, so that subscriber always
/// makes progress, eventually popping the front and waking blocked
/// leaders. Dropping a member (engine error, early exit) marks it
/// infinitely fast so it never stalls the others.
pub struct GangCursor<'a> {
    shared: Arc<GangShared<'a>>,
    members: usize,
    taken: bool,
}

impl fmt::Debug for GangCursor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GangCursor")
            .field("members", &self.members)
            .finish()
    }
}

impl<'a> GangCursor<'a> {
    /// A gang of `members` subscribers over `source`, retaining at
    /// most `max_lead` chunks between the fastest and slowest.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn new(
        source: Box<dyn TraceSource + Send + 'a>,
        members: usize,
        max_lead: usize,
    ) -> GangCursor<'a> {
        assert!(members > 0, "a gang needs at least one member");
        let shared = GangShared {
            max_lead: max_lead.max(1),
            entries: source.entries_hint(),
            mem_entries: source.mem_entries_hint(),
            max_latency: source.max_latency_hint(),
            inner: Mutex::new(GangInner {
                source: Some(source),
                ring: VecDeque::new(),
                base_seq: 0,
                next_seq: vec![0; members],
                done: false,
                error: None,
                stats: GangStats::default(),
            }),
            space: Condvar::new(),
        };
        GangCursor {
            shared: Arc::new(shared),
            members,
            taken: false,
        }
    }

    /// The subscriber handles, one per member.
    ///
    /// # Panics
    ///
    /// Panics if called twice — each member's position is tracked by
    /// identity, so handles must not be duplicated.
    pub fn members(&mut self) -> Vec<GangMember<'a>> {
        assert!(!self.taken, "gang members already handed out");
        self.taken = true;
        (0..self.members)
            .map(|id| GangMember {
                shared: Arc::clone(&self.shared),
                id,
                done: false,
            })
            .collect()
    }

    /// Counters observed so far (complete once every member finished).
    pub fn stats(&self) -> GangStats {
        self.shared.inner.lock().expect("gang lock").stats
    }
}

/// One subscriber of a [`GangCursor`] — a [`TraceSource`] yielding the
/// shared chunk sequence.
pub struct GangMember<'a> {
    shared: Arc<GangShared<'a>>,
    id: usize,
    done: bool,
}

impl fmt::Debug for GangMember<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GangMember").field("id", &self.id).finish()
    }
}

impl GangInner<'_> {
    /// Pops every ring chunk the slowest subscriber has passed.
    /// Returns whether anything was released (waiters need a wakeup).
    fn release_front(&mut self) -> bool {
        let min = self.next_seq.iter().copied().min().unwrap_or(u64::MAX);
        let mut released = false;
        while self.base_seq < min && !self.ring.is_empty() {
            self.ring.pop_front();
            self.base_seq += 1;
            released = true;
        }
        released
    }
}

impl TraceSource for GangMember<'_> {
    fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
        if self.done {
            return Ok(None);
        }
        let shared = &*self.shared;
        let mut inner = shared.inner.lock().expect("gang lock");
        loop {
            let my = inner.next_seq[self.id];
            let frontier = inner.base_seq + inner.ring.len() as u64;
            if my < frontier {
                let chunk = Arc::clone(&inner.ring[(my - inner.base_seq) as usize]);
                inner.next_seq[self.id] = my + 1;
                if inner.release_front() {
                    shared.space.notify_all();
                }
                return Ok(Some(chunk));
            }
            if let Some(msg) = &inner.error {
                return Err(StreamError::Corrupt(msg.clone()));
            }
            if inner.done {
                self.done = true;
                return Ok(None);
            }
            if inner.ring.len() >= shared.max_lead {
                // Too far ahead of the slowest member; wait for the
                // ring to drain (it always will: the slowest member's
                // next chunk is in the ring).
                inner = shared.space.wait(inner).expect("gang lock");
                continue;
            }
            // At the decode frontier with ring space: this member
            // performs the pull on everyone's behalf.
            match inner
                .source
                .as_mut()
                .expect("source until done")
                .next_chunk()
            {
                Ok(Some(chunk)) => {
                    inner.ring.push_back(chunk);
                    inner.stats.chunks += 1;
                    let len = inner.ring.len();
                    inner.stats.peak_ring = inner.stats.peak_ring.max(len);
                }
                Ok(None) => {
                    inner.done = true;
                    inner.source = None;
                    shared.space.notify_all();
                }
                Err(e) => {
                    inner.error = Some(e.to_string());
                    inner.source = None;
                    shared.space.notify_all();
                    return Err(e);
                }
            }
        }
    }

    fn entries_hint(&self) -> Option<u64> {
        self.shared.entries
    }

    fn mem_entries_hint(&self) -> Option<u64> {
        self.shared.mem_entries
    }

    fn max_latency_hint(&self) -> Option<u32> {
        self.shared.max_latency
    }
}

impl Drop for GangMember<'_> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("gang lock");
        // An abandoned member (panic, early engine exit) must never
        // hold the ring back or block leaders forever.
        inner.next_seq[self.id] = u64::MAX;
        inner.release_front();
        self.shared.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemAccess;

    fn trace_of(n: usize) -> Trace {
        let entries: Vec<TraceEntry> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    TraceEntry {
                        pc: i as u32,
                        op: TraceOp::Load(MemAccess::miss(i as u64 * 8, 10 + (i % 7) as u32)),
                    }
                } else {
                    TraceEntry::compute(i as u32)
                }
            })
            .collect();
        Trace::from_entries(entries)
    }

    #[test]
    fn gang_releases_each_chunk_exactly_at_the_slowest_horizon() {
        // The gang release property: a chunk stays alive while any
        // member still needs it (the ring) or retains it (its engine's
        // lookback horizon), and is freed the moment the slowest
        // covering horizon has passed — no early free, no unbounded
        // retention. Members emulate engines with mixed DS-style
        // lookback windows by holding the most recent `horizon` Arcs.
        let t = trace_of(57);
        let entries = 57usize;
        for chunk_len in [1usize, 7, DEFAULT_CHUNK_LEN, 60] {
            let horizons = [0usize, 3, 1];
            let weaks: Arc<Mutex<Vec<std::sync::Weak<TraceChunk>>>> = Arc::default();
            struct Tracking<'a> {
                inner: SliceSource<'a>,
                weaks: Arc<Mutex<Vec<std::sync::Weak<TraceChunk>>>>,
            }
            impl TraceSource for Tracking<'_> {
                fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
                    let got = self.inner.next_chunk()?;
                    if let Some(c) = &got {
                        self.weaks.lock().unwrap().push(Arc::downgrade(c));
                    }
                    Ok(got)
                }
            }
            let source = Tracking {
                inner: SliceSource::with_chunk_len(&t, chunk_len),
                weaks: Arc::clone(&weaks),
            };
            let mut gang = GangCursor::new(Box::new(source), horizons.len(), 4);
            let mut members = gang.members();
            let mut held: Vec<VecDeque<Arc<TraceChunk>>> = vec![VecDeque::new(); horizons.len()];
            let total = entries.div_ceil(chunk_len);
            for seq in 0..total {
                for (m, member) in members.iter_mut().enumerate() {
                    {
                        // Until the last member has consumed chunk
                        // `seq`, the ring must keep it alive even
                        // though faster members dropped their refs.
                        let w = weaks.lock().unwrap();
                        if seq < w.len() {
                            assert!(
                                w[seq].upgrade().is_some(),
                                "chunk {seq} freed before member {m} consumed it \
                                 (chunk_len {chunk_len})"
                            );
                        }
                    }
                    let chunk = member.next_chunk().unwrap().expect("stream not exhausted");
                    assert_eq!(chunk.first_index, (seq * chunk_len) as u64);
                    held[m].push_back(chunk);
                    while held[m].len() > horizons[m] {
                        held[m].pop_front();
                    }
                }
                // Every member consumed `seq` and trimmed to its
                // horizon: a chunk must now be alive exactly while
                // some member's lookback still covers it.
                let w = weaks.lock().unwrap();
                for (j, weak) in w.iter().enumerate().take(seq + 1) {
                    let covered = horizons.iter().any(|&h| j + h > seq);
                    assert_eq!(
                        weak.upgrade().is_some(),
                        covered,
                        "chunk {j} after round {seq} (chunk_len {chunk_len}): \
                         alive must equal covered-by-slowest-horizon"
                    );
                }
            }
            for member in &mut members {
                assert!(member.next_chunk().unwrap().is_none());
            }
            let stats = gang.stats();
            assert_eq!(stats.chunks as usize, total, "one decode per chunk");
            assert_eq!(
                stats.peak_ring, 1,
                "lockstep members keep the ring at one chunk"
            );
            drop(members);
            drop(held);
            assert!(
                weaks.lock().unwrap().iter().all(|w| w.upgrade().is_none()),
                "nothing may outlive the gang and the horizons (chunk_len {chunk_len})"
            );
        }
    }

    #[test]
    fn slice_source_roundtrips_at_awkward_chunk_sizes() {
        let t = trace_of(23);
        for chunk_len in [1, 7, DEFAULT_CHUNK_LEN, 100] {
            let mut src = SliceSource::with_chunk_len(&t, chunk_len);
            let got = collect_source(&mut src).unwrap();
            assert_eq!(got, t, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn soa_columns_roundtrip_every_op_kind() {
        use lookahead_isa::SyncKind;
        let entries = vec![
            TraceEntry::compute(7),
            TraceEntry {
                pc: 8,
                op: TraceOp::Load(MemAccess::hit(0x40)),
            },
            TraceEntry {
                pc: 9,
                op: TraceOp::Store(MemAccess::miss(0x48, 50)),
            },
            TraceEntry {
                pc: 10,
                op: TraceOp::Branch {
                    taken: true,
                    target: 3,
                },
            },
            TraceEntry {
                pc: 11,
                op: TraceOp::Branch {
                    taken: false,
                    target: 90,
                },
            },
            TraceEntry {
                pc: 12,
                op: TraceOp::Jump { target: 42 },
            },
            TraceEntry {
                pc: 13,
                op: TraceOp::Sync(SyncAccess {
                    kind: SyncKind::Barrier,
                    addr: 0x100,
                    wait: 17,
                    access: 50,
                }),
            },
            TraceEntry {
                pc: 14,
                op: TraceOp::Sync(SyncAccess {
                    kind: SyncKind::SetEvent,
                    addr: 0x108,
                    wait: 0,
                    access: 1,
                }),
            },
        ];
        let chunk = TraceChunk::from_slice(5, &entries);
        assert_eq!(chunk.len(), entries.len());
        assert_eq!(chunk.end_index(), 5 + entries.len() as u64);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(chunk.entry(i), *e, "entry {i}");
            assert_eq!(chunk.pc_at(i), e.pc, "pc {i}");
        }
        let via_iter: Vec<TraceEntry> = chunk.iter().collect();
        assert_eq!(via_iter, entries);
        assert_eq!(chunk.meta, ChunkMeta::of_entries(&entries));
        // The owned constructor agrees with the borrowing one.
        assert_eq!(TraceChunk::from_vec(5, entries.clone()), chunk);
    }

    #[test]
    fn chunk_meta_counts_mem_entries_and_max_latency() {
        let t = trace_of(9);
        let meta = ChunkMeta::of_entries(t.entries());
        assert_eq!(meta.mem_entries as usize, t.mem_entries());
        assert_eq!(meta.max_latency, 16, "max of 10 + (i%7) over i=0,3,6");
    }

    #[test]
    fn builder_emits_fixed_chunks_then_remainder() {
        let mut b = ChunkBuilder::new(4);
        let mut got = Vec::new();
        for i in 0..10 {
            b.push(TraceEntry::compute(i));
            if let Some(c) = b.take_ready() {
                got.push(c);
            }
        }
        if let Some(c) = b.finish() {
            got.push(c);
        }
        assert_eq!(
            got.iter().map(TraceChunk::len).collect::<Vec<_>>(),
            [4, 4, 2]
        );
        assert_eq!(
            got.iter().map(|c| c.first_index).collect::<Vec<_>>(),
            [0, 4, 8]
        );
        assert_eq!(b.entries_pushed(), 10);
    }

    #[test]
    fn collect_sink_reassembles_interleaved_procs() {
        let mut sink = CollectSink::new(2);
        sink.accept(0, &TraceChunk::from_slice(0, &[TraceEntry::compute(0)]))
            .unwrap();
        sink.accept(1, &TraceChunk::from_slice(0, &[TraceEntry::compute(10)]))
            .unwrap();
        sink.accept(0, &TraceChunk::from_slice(1, &[TraceEntry::compute(1)]))
            .unwrap();
        let traces = sink.into_traces();
        assert_eq!(traces[0].len(), 2);
        assert_eq!(traces[1].len(), 1);
        assert_eq!(traces[0].entries()[1].pc, 1);
    }

    #[test]
    fn cursor_slice_and_stream_agree() {
        let t = trace_of(50);
        let mut slice = TraceCursor::slice(&t);
        let mut stream = TraceCursor::stream(Box::new(SliceSource::with_chunk_len(&t, 7)));
        for i in 0..50 {
            assert!(!slice.past_end(i));
            assert!(!stream.past_end(i));
            assert_eq!(slice.entry(i), stream.entry(i), "entry {i}");
            assert_eq!(slice.pc(i), stream.pc(i), "pc {i}");
        }
        assert!(slice.past_end(50));
        assert!(stream.past_end(50));
        assert!(stream.take_error().is_none());
    }

    #[test]
    fn cursor_release_drops_chunks_and_forbids_rereads() {
        let t = trace_of(30);
        let mut c = TraceCursor::stream(Box::new(SliceSource::with_chunk_len(&t, 5)));
        assert!(!c.past_end(17));
        c.release_before(12);
        // 12 falls inside the chunk [10, 15): only [0,10) dropped.
        assert_eq!(c.entry(10), t.entries()[10]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.entry(3)));
        assert!(result.is_err(), "released entries must not be readable");
    }

    #[test]
    fn cursor_reports_gap_as_error() {
        struct Gappy(u32);
        impl TraceSource for Gappy {
            fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
                self.0 += 1;
                match self.0 {
                    1 => Ok(Some(Arc::new(TraceChunk::from_slice(
                        0,
                        &[TraceEntry::compute(0)],
                    )))),
                    2 => Ok(Some(Arc::new(TraceChunk::from_slice(
                        5,
                        &[TraceEntry::compute(5)],
                    )))),
                    _ => Ok(None),
                }
            }
        }
        let mut c = TraceCursor::stream(Box::new(Gappy(0)));
        assert!(!c.past_end(0));
        assert!(c.past_end(1), "gap truncates the stream");
        assert!(matches!(c.take_error(), Some(StreamError::Corrupt(_))));
    }

    #[test]
    fn gang_members_all_see_the_full_stream() {
        let t = trace_of(100);
        for members in [1, 2, 5] {
            let mut gang =
                GangCursor::new(Box::new(SliceSource::with_chunk_len(&t, 9)), members, 3);
            let handles = gang.members();
            let collected: Vec<Trace> = std::thread::scope(|s| {
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut m| s.spawn(move || collect_source(&mut m).unwrap()))
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            for got in &collected {
                assert_eq!(*got, t, "{members} members");
            }
            let stats = gang.stats();
            assert_eq!(stats.chunks, 100usize.div_ceil(9) as u64);
            assert!(stats.peak_ring <= 3, "ring bounded by max_lead");
        }
    }

    #[test]
    fn gang_fans_out_one_error_to_every_member() {
        struct Failing(u32);
        impl TraceSource for Failing {
            fn next_chunk(&mut self) -> Result<Option<Arc<TraceChunk>>, StreamError> {
                self.0 += 1;
                if self.0 <= 2 {
                    Ok(Some(Arc::new(TraceChunk::from_slice(
                        u64::from(self.0 - 1),
                        &[TraceEntry::compute(self.0 - 1)],
                    ))))
                } else {
                    Err(StreamError::Corrupt("boom".into()))
                }
            }
        }
        let mut gang = GangCursor::new(Box::new(Failing(0)), 3, 2);
        let handles = gang.members();
        let outcomes: Vec<Result<Trace, StreamError>> = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut m| s.spawn(move || collect_source(&mut m)))
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for o in &outcomes {
            let e = o.as_ref().expect_err("every member sees the failure");
            assert!(e.to_string().contains("boom"), "got {e}");
        }
    }

    #[test]
    fn gang_dropped_member_does_not_stall_the_rest() {
        let t = trace_of(60);
        let mut gang = GangCursor::new(Box::new(SliceSource::with_chunk_len(&t, 4)), 2, 2);
        let mut handles = gang.members();
        let slowpoke = handles.pop().unwrap();
        let mut leader = handles.pop().unwrap();
        // The abandoned member would otherwise cap the leader at
        // max_lead chunks.
        drop(slowpoke);
        let got = collect_source(&mut leader).unwrap();
        assert_eq!(got, t);
    }
}
