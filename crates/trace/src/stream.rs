//! Chunked trace streaming: bounded-memory producers and consumers.
//!
//! The materialized [`Trace`] representation costs O(full trace) memory
//! per processor at every pipeline stage — generation, caching and
//! re-timing each held complete entry vectors. This module introduces
//! the streaming counterparts the whole pipeline is built on:
//!
//! * a [`TraceChunk`] is a fixed-size block of consecutive entries plus
//!   the per-chunk metadata consumers pre-size from (memory-entry
//!   count, maximum observed latency);
//! * a [`TraceSink`] accepts chunks as a producer emits them (the
//!   multiprocessor simulator pushes per-processor chunks through a
//!   sink instead of growing owned `Vec`s);
//! * a [`TraceSource`] yields chunks on demand (a sliced in-memory
//!   trace, or an archive file read incrementally from disk);
//! * a [`TraceCursor`] adapts a source to the random-access-within-a-
//!   window pattern the re-timing engines use, retaining only the
//!   chunks that cover the engine's live instruction window.
//!
//! Memory is therefore O(chunk × processors) during generation and
//! O(window) during re-timing, instead of O(full trace × processors).

use crate::record::{Trace, TraceEntry, TraceOp};
use crate::storage::DecodeError;
use std::collections::VecDeque;
use std::fmt;
use std::io;

/// Default chunk granularity, in entries. At ~17 bytes per entry a
/// chunk is ~140 KiB: large enough to amortize per-chunk overhead,
/// small enough that a 16-processor generation holds only a few MiB of
/// in-flight trace.
pub const DEFAULT_CHUNK_LEN: usize = 8192;

/// Per-chunk metadata, aggregated as entries are appended. Consumers
/// use it to pre-size their structures (e.g. the DS engine's memop
/// list) without scanning entries twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkMeta {
    /// Number of entries that perform a memory access (loads, stores,
    /// synchronization accesses).
    pub mem_entries: u32,
    /// Maximum access latency observed in the chunk (0 if none).
    pub max_latency: u32,
}

impl ChunkMeta {
    /// Folds one entry into the running metadata.
    pub fn observe(&mut self, e: &TraceEntry) {
        match e.op {
            TraceOp::Load(m) | TraceOp::Store(m) => {
                self.mem_entries += 1;
                self.max_latency = self.max_latency.max(m.latency);
            }
            TraceOp::Sync(s) => {
                self.mem_entries += 1;
                self.max_latency = self.max_latency.max(s.access);
            }
            TraceOp::Compute | TraceOp::Branch { .. } | TraceOp::Jump { .. } => {}
        }
    }

    /// The metadata of a whole slice (what `observe` over every entry
    /// accumulates).
    pub fn of_entries(entries: &[TraceEntry]) -> ChunkMeta {
        let mut m = ChunkMeta::default();
        for e in entries {
            m.observe(e);
        }
        m
    }
}

/// A block of consecutive trace entries from one processor's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChunk {
    /// Global index (within the processor's trace) of `entries[0]`.
    pub first_index: u64,
    /// The entries, in trace order.
    pub entries: Vec<TraceEntry>,
    /// Aggregate metadata over `entries`.
    pub meta: ChunkMeta,
}

impl TraceChunk {
    /// Builds a chunk from a slice starting at `first_index`.
    pub fn from_slice(first_index: u64, entries: &[TraceEntry]) -> TraceChunk {
        TraceChunk {
            first_index,
            entries: entries.to_vec(),
            meta: ChunkMeta::of_entries(entries),
        }
    }

    /// Index one past the last entry of this chunk.
    pub fn end_index(&self) -> u64 {
        self.first_index + self.entries.len() as u64
    }
}

/// Consumes per-processor chunks as a producer emits them.
///
/// The error type is [`io::Error`] because the interesting sinks write
/// archives to disk; in-memory sinks simply never fail.
pub trait TraceSink {
    /// Accepts the next chunk of processor `proc`'s trace. Chunks of
    /// one processor arrive in trace order; chunks of different
    /// processors may interleave arbitrarily.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from disk-backed sinks.
    fn accept(&mut self, proc: usize, chunk: TraceChunk) -> io::Result<()>;
}

/// A sink that reassembles the chunk stream into whole [`Trace`]s —
/// the adapter that keeps the materialized `SimOutcome::traces` API
/// working on top of the streamed producer.
#[derive(Debug)]
pub struct CollectSink {
    traces: Vec<Trace>,
}

impl CollectSink {
    /// A collector for `num_procs` processors.
    pub fn new(num_procs: usize) -> CollectSink {
        CollectSink {
            traces: (0..num_procs).map(|_| Trace::new()).collect(),
        }
    }

    /// The reassembled traces, one per processor.
    pub fn into_traces(self) -> Vec<Trace> {
        self.traces
    }
}

impl TraceSink for CollectSink {
    fn accept(&mut self, proc: usize, chunk: TraceChunk) -> io::Result<()> {
        debug_assert_eq!(
            chunk.first_index,
            self.traces[proc].len() as u64,
            "chunks of one processor must arrive in trace order"
        );
        self.traces[proc].extend(chunk.entries);
        Ok(())
    }
}

/// A sink that discards every chunk (for producers whose side effects
/// — statistics, final memory — are all the caller wants).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn accept(&mut self, _proc: usize, _chunk: TraceChunk) -> io::Result<()> {
        Ok(())
    }
}

/// Accumulates one processor's entries into fixed-capacity chunks.
///
/// The buffer never grows past its construction capacity (asserted in
/// debug builds): a full buffer is handed out as a chunk and the
/// allocation is reused. This replaces the old whole-trace
/// `Trace::with_capacity` guess with a bounded, per-processor buffer.
#[derive(Debug)]
pub struct ChunkBuilder {
    entries: Vec<TraceEntry>,
    capacity: usize,
    next_index: u64,
    meta: ChunkMeta,
    ready: Option<TraceChunk>,
}

impl ChunkBuilder {
    /// A builder emitting chunks of at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ChunkBuilder {
        assert!(capacity > 0, "chunk capacity must be positive");
        ChunkBuilder {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_index: 0,
            meta: ChunkMeta::default(),
            ready: None,
        }
    }

    /// Appends one entry. When the buffer fills, the completed chunk
    /// becomes available from [`take_ready`](Self::take_ready); the
    /// caller must drain it before another `capacity` entries arrive.
    pub fn push(&mut self, e: TraceEntry) {
        debug_assert!(
            self.entries.len() < self.capacity,
            "ready chunk not drained before the buffer refilled"
        );
        self.meta.observe(&e);
        self.entries.push(e);
        if self.entries.len() == self.capacity {
            self.seal();
        }
    }

    /// Total entries pushed so far (across all chunks).
    pub fn entries_pushed(&self) -> u64 {
        self.next_index + self.entries.len() as u64
    }

    /// The completed chunk, if the buffer filled since the last call.
    pub fn take_ready(&mut self) -> Option<TraceChunk> {
        self.ready.take()
    }

    /// Seals any buffered entries into a final (possibly short) chunk.
    /// Returns `None` if nothing is buffered.
    pub fn finish(&mut self) -> Option<TraceChunk> {
        if self.entries.is_empty() {
            return self.ready.take();
        }
        debug_assert!(self.ready.is_none(), "ready chunk not drained at finish");
        self.seal();
        self.ready.take()
    }

    fn seal(&mut self) {
        debug_assert_eq!(
            self.entries.capacity(),
            self.capacity,
            "chunk buffer must never reallocate mid-run"
        );
        let entries = std::mem::replace(&mut self.entries, Vec::with_capacity(self.capacity));
        let chunk = TraceChunk {
            first_index: self.next_index,
            meta: self.meta,
            entries,
        };
        self.next_index = chunk.end_index();
        self.meta = ChunkMeta::default();
        debug_assert!(self.ready.is_none(), "ready chunk not drained before seal");
        self.ready = Some(chunk);
    }
}

/// Errors produced while pulling chunks from a [`TraceSource`].
#[derive(Debug)]
pub enum StreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A chunk failed its checksum or could not be decoded.
    Decode(DecodeError),
    /// The stream's structure is inconsistent (e.g. a gap between
    /// consecutive chunks of one processor).
    Corrupt(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error reading trace stream: {e}"),
            StreamError::Decode(e) => write!(f, "bad chunk in trace stream: {e}"),
            StreamError::Corrupt(m) => write!(f, "inconsistent trace stream: {m}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Decode(e) => Some(e),
            StreamError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> StreamError {
        StreamError::Decode(e)
    }
}

/// Produces one processor's trace as a sequence of chunks.
pub trait TraceSource {
    /// The next chunk in trace order, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] on I/O failure or a damaged chunk.
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError>;

    /// Total entry count, when known up front (archives know it from
    /// their trailer; live generators do not).
    fn entries_hint(&self) -> Option<u64> {
        None
    }

    /// Total memory-entry count, when known up front.
    fn mem_entries_hint(&self) -> Option<u64> {
        None
    }

    /// Maximum access latency in the stream, when known up front.
    fn max_latency_hint(&self) -> Option<u32> {
        None
    }
}

/// A mutable reference to a source is itself a source, so engines
/// taking `&mut dyn TraceSource` can hand it to a [`TraceCursor`]
/// without taking ownership.
impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        (**self).next_chunk()
    }

    fn entries_hint(&self) -> Option<u64> {
        (**self).entries_hint()
    }

    fn mem_entries_hint(&self) -> Option<u64> {
        (**self).mem_entries_hint()
    }

    fn max_latency_hint(&self) -> Option<u32> {
        (**self).max_latency_hint()
    }
}

/// A source over an in-memory entry slice, split into fixed-size
/// chunks — the bridge from materialized traces to streamed consumers
/// (and the reference producer for chunk-boundary tests).
#[derive(Debug)]
pub struct SliceSource<'a> {
    entries: &'a [TraceEntry],
    pos: usize,
    chunk_len: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over `trace` with the default chunk size.
    pub fn new(trace: &'a Trace) -> SliceSource<'a> {
        SliceSource::with_chunk_len(trace, DEFAULT_CHUNK_LEN)
    }

    /// A source over `trace` emitting chunks of `chunk_len` entries.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(trace: &'a Trace, chunk_len: usize) -> SliceSource<'a> {
        assert!(chunk_len > 0, "chunk length must be positive");
        SliceSource {
            entries: trace.entries(),
            pos: 0,
            chunk_len,
        }
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        if self.pos >= self.entries.len() {
            return Ok(None);
        }
        let end = (self.pos + self.chunk_len).min(self.entries.len());
        let chunk = TraceChunk::from_slice(self.pos as u64, &self.entries[self.pos..end]);
        self.pos = end;
        Ok(Some(chunk))
    }

    fn entries_hint(&self) -> Option<u64> {
        Some(self.entries.len() as u64)
    }
}

/// Drains a source into a materialized [`Trace`] — the fallback
/// adapter for consumers without a streaming implementation.
///
/// # Errors
///
/// Propagates the source's first error.
pub fn collect_source(source: &mut dyn TraceSource) -> Result<Trace, StreamError> {
    let mut trace = Trace::with_capacity(source.entries_hint().unwrap_or(0) as usize);
    while let Some(chunk) = source.next_chunk()? {
        if chunk.first_index != trace.len() as u64 {
            return Err(StreamError::Corrupt(format!(
                "chunk starts at entry {} but {} entries were read",
                chunk.first_index,
                trace.len()
            )));
        }
        trace.extend(chunk.entries);
    }
    Ok(trace)
}

/// Random access within a sliding window over a trace, backed either
/// by a materialized slice (zero overhead) or by a [`TraceSource`]
/// pulled on demand.
///
/// The re-timing engines access entries at indices that never precede
/// the oldest instruction of their live window and never exceed the
/// decode frontier; the cursor keeps exactly the chunks covering that
/// range, releasing older ones as the window retires past them.
///
/// Source errors do not surface in the per-entry accessors (which
/// would poison the engines' hot loops): a failing source behaves as
/// if the trace ended at the last good entry, and the deferred error
/// is retrieved with [`take_error`](Self::take_error) after the run.
#[derive(Debug)]
pub struct TraceCursor<'a> {
    inner: Inner<'a>,
}

enum Inner<'a> {
    Slice {
        entries: &'a [TraceEntry],
        mem_entries: usize,
    },
    Stream {
        source: Box<dyn TraceSource + 'a>,
        chunks: VecDeque<TraceChunk>,
        /// Global index of the first retained entry.
        base: u64,
        /// Global index one past the last pulled entry.
        loaded: u64,
        done: bool,
        error: Option<StreamError>,
    },
}

impl fmt::Debug for Inner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inner::Slice { entries, .. } => f
                .debug_struct("Slice")
                .field("len", &entries.len())
                .finish(),
            Inner::Stream {
                base,
                loaded,
                done,
                chunks,
                ..
            } => f
                .debug_struct("Stream")
                .field("base", base)
                .field("loaded", loaded)
                .field("done", done)
                .field("chunks", &chunks.len())
                .finish(),
        }
    }
}

impl<'a> TraceCursor<'a> {
    /// A cursor over a materialized trace (the zero-overhead fast
    /// path; entry access compiles to a bounds-checked index).
    pub fn slice(trace: &'a Trace) -> TraceCursor<'a> {
        TraceCursor {
            inner: Inner::Slice {
                entries: trace.entries(),
                mem_entries: trace.mem_entries(),
            },
        }
    }

    /// A cursor pulling chunks from `source` on demand.
    pub fn stream(source: Box<dyn TraceSource + 'a>) -> TraceCursor<'a> {
        TraceCursor {
            inner: Inner::Stream {
                source,
                chunks: VecDeque::new(),
                base: 0,
                loaded: 0,
                done: false,
                error: None,
            },
        }
    }

    /// Whether `idx` lies beyond the end of the trace, pulling chunks
    /// as needed to decide. After a source error this reports the
    /// truncated end; check [`take_error`](Self::take_error).
    #[inline]
    pub fn past_end(&mut self, idx: usize) -> bool {
        match &mut self.inner {
            Inner::Slice { entries, .. } => idx >= entries.len(),
            Inner::Stream {
                source,
                chunks,
                loaded,
                done,
                error,
                ..
            } => {
                while (idx as u64) >= *loaded && !*done && error.is_none() {
                    match source.next_chunk() {
                        Ok(Some(chunk)) => {
                            if chunk.first_index != *loaded {
                                *error = Some(StreamError::Corrupt(format!(
                                    "chunk starts at entry {} but {} entries were pulled",
                                    chunk.first_index, *loaded
                                )));
                                break;
                            }
                            *loaded = chunk.end_index();
                            chunks.push_back(chunk);
                        }
                        Ok(None) => *done = true,
                        Err(e) => *error = Some(e),
                    }
                }
                (idx as u64) >= *loaded
            }
        }
    }

    /// The entry at `idx`. The caller must have established
    /// `!past_end(idx)`; the entry must not have been released.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was released or never loaded.
    #[inline]
    pub fn entry(&self, idx: usize) -> TraceEntry {
        match &self.inner {
            Inner::Slice { entries, .. } => entries[idx],
            Inner::Stream {
                chunks,
                base,
                loaded,
                ..
            } => {
                let idx = idx as u64;
                assert!(
                    idx >= *base && idx < *loaded,
                    "entry {idx} outside retained range [{base}, {loaded})"
                );
                // The window spans very few chunks; scan from the back
                // since accesses cluster at the decode frontier.
                for c in chunks.iter().rev() {
                    if idx >= c.first_index {
                        return c.entries[(idx - c.first_index) as usize];
                    }
                }
                unreachable!("retained range covers idx")
            }
        }
    }

    /// Entries loaded so far — for a slice, the full length; for a
    /// stream, a monotonically growing lower bound on the length.
    pub fn loaded_len(&self) -> usize {
        match &self.inner {
            Inner::Slice { entries, .. } => entries.len(),
            Inner::Stream { loaded, .. } => *loaded as usize,
        }
    }

    /// Declares that entries before `idx` will never be accessed
    /// again, allowing whole chunks to be dropped.
    #[inline]
    pub fn release_before(&mut self, idx: usize) {
        if let Inner::Stream { chunks, base, .. } = &mut self.inner {
            while let Some(front) = chunks.front() {
                if front.end_index() <= idx as u64 {
                    *base = front.end_index();
                    chunks.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Memory-entry count for pre-sizing: exact for slices, the
    /// source's hint (or 0) for streams.
    pub fn mem_entries_hint(&self) -> usize {
        match &self.inner {
            Inner::Slice { mem_entries, .. } => *mem_entries,
            Inner::Stream { source, .. } => source.mem_entries_hint().unwrap_or(0) as usize,
        }
    }

    /// The deferred source error, if the stream failed mid-run. A run
    /// whose cursor carries an error is truncated and must be
    /// discarded.
    pub fn take_error(&mut self) -> Option<StreamError> {
        match &mut self.inner {
            Inner::Slice { .. } => None,
            Inner::Stream { error, .. } => error.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemAccess;

    fn trace_of(n: usize) -> Trace {
        let entries: Vec<TraceEntry> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    TraceEntry {
                        pc: i as u32,
                        op: TraceOp::Load(MemAccess::miss(i as u64 * 8, 10 + (i % 7) as u32)),
                    }
                } else {
                    TraceEntry::compute(i as u32)
                }
            })
            .collect();
        Trace::from_entries(entries)
    }

    #[test]
    fn slice_source_roundtrips_at_awkward_chunk_sizes() {
        let t = trace_of(23);
        for chunk_len in [1, 7, DEFAULT_CHUNK_LEN, 100] {
            let mut src = SliceSource::with_chunk_len(&t, chunk_len);
            let got = collect_source(&mut src).unwrap();
            assert_eq!(got, t, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn chunk_meta_counts_mem_entries_and_max_latency() {
        let t = trace_of(9);
        let meta = ChunkMeta::of_entries(t.entries());
        assert_eq!(meta.mem_entries as usize, t.mem_entries());
        assert_eq!(meta.max_latency, 16, "max of 10 + (i%7) over i=0,3,6");
    }

    #[test]
    fn builder_emits_fixed_chunks_then_remainder() {
        let mut b = ChunkBuilder::new(4);
        let mut got = Vec::new();
        for i in 0..10 {
            b.push(TraceEntry::compute(i));
            if let Some(c) = b.take_ready() {
                got.push(c);
            }
        }
        if let Some(c) = b.finish() {
            got.push(c);
        }
        assert_eq!(
            got.iter().map(|c| c.entries.len()).collect::<Vec<_>>(),
            [4, 4, 2]
        );
        assert_eq!(
            got.iter().map(|c| c.first_index).collect::<Vec<_>>(),
            [0, 4, 8]
        );
        assert_eq!(b.entries_pushed(), 10);
    }

    #[test]
    fn collect_sink_reassembles_interleaved_procs() {
        let mut sink = CollectSink::new(2);
        sink.accept(0, TraceChunk::from_slice(0, &[TraceEntry::compute(0)]))
            .unwrap();
        sink.accept(1, TraceChunk::from_slice(0, &[TraceEntry::compute(10)]))
            .unwrap();
        sink.accept(0, TraceChunk::from_slice(1, &[TraceEntry::compute(1)]))
            .unwrap();
        let traces = sink.into_traces();
        assert_eq!(traces[0].len(), 2);
        assert_eq!(traces[1].len(), 1);
        assert_eq!(traces[0].entries()[1].pc, 1);
    }

    #[test]
    fn cursor_slice_and_stream_agree() {
        let t = trace_of(50);
        let mut slice = TraceCursor::slice(&t);
        let mut stream = TraceCursor::stream(Box::new(SliceSource::with_chunk_len(&t, 7)));
        for i in 0..50 {
            assert!(!slice.past_end(i));
            assert!(!stream.past_end(i));
            assert_eq!(slice.entry(i), stream.entry(i), "entry {i}");
        }
        assert!(slice.past_end(50));
        assert!(stream.past_end(50));
        assert!(stream.take_error().is_none());
    }

    #[test]
    fn cursor_release_drops_chunks_and_forbids_rereads() {
        let t = trace_of(30);
        let mut c = TraceCursor::stream(Box::new(SliceSource::with_chunk_len(&t, 5)));
        assert!(!c.past_end(17));
        c.release_before(12);
        // 12 falls inside the chunk [10, 15): only [0,10) dropped.
        assert_eq!(c.entry(10), t.entries()[10]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.entry(3)));
        assert!(result.is_err(), "released entries must not be readable");
    }

    #[test]
    fn cursor_reports_gap_as_error() {
        struct Gappy(u32);
        impl TraceSource for Gappy {
            fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
                self.0 += 1;
                match self.0 {
                    1 => Ok(Some(TraceChunk::from_slice(0, &[TraceEntry::compute(0)]))),
                    2 => Ok(Some(TraceChunk::from_slice(5, &[TraceEntry::compute(5)]))),
                    _ => Ok(None),
                }
            }
        }
        let mut c = TraceCursor::stream(Box::new(Gappy(0)));
        assert!(!c.past_end(0));
        assert!(c.past_end(1), "gap truncates the stream");
        assert!(matches!(c.take_error(), Some(StreamError::Corrupt(_))));
    }
}
