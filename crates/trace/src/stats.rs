//! Trace statistics: the quantities the paper reports in Tables 1–3.
//!
//! * [`DataRefStats`] — Table 1: reads, writes, read misses and write
//!   misses, as counts and as references per thousand instructions.
//! * [`SyncStats`] — Table 2: locks, unlocks, wait/set events and
//!   barriers, plus the acquire wait/access cycle split.
//! * [`BranchStats`] — Table 3: branch frequency, average distance
//!   between branches, prediction accuracy (given a branch predictor,
//!   normally the BTB model from `lookahead-core`), and average
//!   distance between mispredictions.

use crate::record::{Trace, TraceOp};
use lookahead_isa::SyncKind;
use std::fmt;

/// Direction/target predictor interface used to score traces.
///
/// The paper's Table 3 reports the accuracy of a 2048-entry 4-way
/// branch target buffer; that model lives in `lookahead-core` and
/// implements this trait. A trivial always-taken predictor is provided
/// here as [`AlwaysTaken`] for baselines and tests.
pub trait BranchPredictor {
    /// Predicts the branch at `pc`, then updates the predictor with the
    /// actual outcome. Returns `true` if the prediction (direction and,
    /// for taken branches, target) was correct.
    fn predict_and_update(&mut self, pc: u32, taken: bool, target: u32) -> bool;

    /// Resets all prediction state.
    fn reset(&mut self);
}

/// The degenerate static predictor: always predicts taken with a
/// correct target (i.e. scores direction only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict_and_update(&mut self, _pc: u32, taken: bool, _target: u32) -> bool {
        taken
    }

    fn reset(&mut self) {}
}

/// Table 1 quantities: data reference statistics for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataRefStats {
    /// Useful (busy) cycles — the number of executed instructions on a
    /// 1-IPC processor.
    pub busy_cycles: u64,
    /// Number of loads executed.
    pub reads: u64,
    /// Number of stores executed.
    pub writes: u64,
    /// Loads that missed in the data cache.
    pub read_misses: u64,
    /// Stores that missed in the data cache.
    pub write_misses: u64,
}

impl DataRefStats {
    /// References per thousand instructions for an event count.
    pub fn per_thousand(&self, count: u64) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.busy_cycles as f64
        }
    }

    /// Fraction of loads that missed.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Fraction of stores that missed.
    pub fn write_miss_ratio(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_misses as f64 / self.writes as f64
        }
    }
}

impl fmt::Display for DataRefStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} reads={} ({:.1}/k) writes={} ({:.1}/k) rmiss={} ({:.1}/k) wmiss={} ({:.1}/k)",
            self.busy_cycles,
            self.reads,
            self.per_thousand(self.reads),
            self.writes,
            self.per_thousand(self.writes),
            self.read_misses,
            self.per_thousand(self.read_misses),
            self.write_misses,
            self.per_thousand(self.write_misses),
        )
    }
}

/// Table 2 quantities: synchronization statistics for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    pub locks: u64,
    pub unlocks: u64,
    pub wait_events: u64,
    pub set_events: u64,
    pub barriers: u64,
    /// Total cycles spent waiting at acquires (contention/imbalance).
    pub acquire_wait_cycles: u64,
    /// Total memory-access cycles at acquires (hidable component).
    pub acquire_access_cycles: u64,
}

impl SyncStats {
    /// Total acquire-type operations (locks, wait events, barriers).
    pub fn acquires(&self) -> u64 {
        self.locks + self.wait_events + self.barriers
    }

    /// Fraction of total acquire overhead that is memory-access latency
    /// (the hidable component); the paper reports ~30% for PTHOR.
    pub fn hidable_acquire_fraction(&self) -> f64 {
        let total = self.acquire_wait_cycles + self.acquire_access_cycles;
        if total == 0 {
            0.0
        } else {
            self.acquire_access_cycles as f64 / total as f64
        }
    }
}

impl fmt::Display for SyncStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "locks={} unlocks={} waitev={} setev={} barriers={} wait_cyc={} access_cyc={}",
            self.locks,
            self.unlocks,
            self.wait_events,
            self.set_events,
            self.barriers,
            self.acquire_wait_cycles,
            self.acquire_access_cycles,
        )
    }
}

/// Table 3 quantities: conditional-branch behaviour for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Total executed instructions.
    pub instructions: u64,
    /// Executed conditional branches.
    pub branches: u64,
    /// Branches the supplied predictor got wrong (`None` if no
    /// predictor was supplied).
    pub mispredictions: Option<u64>,
}

impl BranchStats {
    /// Percentage of instructions that are conditional branches.
    pub fn branch_percent(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 * 100.0 / self.instructions as f64
        }
    }

    /// Average distance between branches, in instructions.
    pub fn avg_branch_distance(&self) -> f64 {
        if self.branches == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / self.branches as f64
        }
    }

    /// Percentage of branches correctly predicted, if scored.
    pub fn predicted_percent(&self) -> Option<f64> {
        let miss = self.mispredictions?;
        Some(if self.branches == 0 {
            100.0
        } else {
            (self.branches - miss) as f64 * 100.0 / self.branches as f64
        })
    }

    /// Average distance between mispredictions, in instructions, if
    /// scored.
    pub fn avg_mispredict_distance(&self) -> Option<f64> {
        let miss = self.mispredictions?;
        Some(if miss == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / miss as f64
        })
    }
}

impl fmt::Display for BranchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "branches={} ({:.1}% of instrs, every {:.1})",
            self.branches,
            self.branch_percent(),
            self.avg_branch_distance()
        )?;
        if let Some(pct) = self.predicted_percent() {
            write!(
                f,
                " predicted={:.1}% mispredict-every={:.1}",
                pct,
                self.avg_mispredict_distance().unwrap_or(f64::INFINITY)
            )?;
        }
        Ok(())
    }
}

/// All per-trace statistics together.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    pub data: DataRefStats,
    pub sync: SyncStats,
    pub branch: BranchStats,
}

impl TraceStats {
    /// Collects statistics over a trace. If a `predictor` is supplied,
    /// every conditional branch is run through it (in trace order) to
    /// score prediction accuracy.
    pub fn collect(trace: &Trace, mut predictor: Option<&mut dyn BranchPredictor>) -> TraceStats {
        let mut s = TraceStats::default();
        for e in trace.iter() {
            s.data.busy_cycles += 1;
            s.branch.instructions += 1;
            match e.op {
                TraceOp::Compute | TraceOp::Jump { .. } => {}
                TraceOp::Load(m) => {
                    s.data.reads += 1;
                    if m.miss {
                        s.data.read_misses += 1;
                    }
                }
                TraceOp::Store(m) => {
                    s.data.writes += 1;
                    if m.miss {
                        s.data.write_misses += 1;
                    }
                }
                TraceOp::Branch { taken, target } => {
                    s.branch.branches += 1;
                    if let Some(p) = predictor.as_deref_mut() {
                        let correct = p.predict_and_update(e.pc, taken, target);
                        let miss = s.branch.mispredictions.get_or_insert(0);
                        if !correct {
                            *miss += 1;
                        }
                    }
                }
                TraceOp::Sync(sa) => {
                    match sa.kind {
                        SyncKind::Lock => s.sync.locks += 1,
                        SyncKind::Unlock => s.sync.unlocks += 1,
                        SyncKind::WaitEvent => s.sync.wait_events += 1,
                        SyncKind::SetEvent => s.sync.set_events += 1,
                        SyncKind::Barrier => s.sync.barriers += 1,
                    }
                    if sa.kind.is_acquire() {
                        s.sync.acquire_wait_cycles += sa.wait as u64;
                        s.sync.acquire_access_cycles += sa.access as u64;
                    }
                }
            }
        }
        // Ensure mispredictions is Some(0) rather than None when a
        // predictor was supplied but the trace had no branches.
        if let (Some(_), None) = (&predictor, s.branch.mispredictions) {
            s.branch.mispredictions = Some(0);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MemAccess, SyncAccess, TraceEntry};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEntry::compute(0));
        t.push(TraceEntry {
            pc: 1,
            op: TraceOp::Load(MemAccess::miss(64, 50)),
        });
        t.push(TraceEntry {
            pc: 2,
            op: TraceOp::Store(MemAccess::hit(64)),
        });
        t.push(TraceEntry {
            pc: 3,
            op: TraceOp::Branch {
                taken: true,
                target: 0,
            },
        });
        t.push(TraceEntry {
            pc: 4,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Lock,
                addr: 8,
                wait: 30,
                access: 50,
            }),
        });
        t.push(TraceEntry {
            pc: 5,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Unlock,
                addr: 8,
                wait: 0,
                access: 1,
            }),
        });
        t
    }

    #[test]
    fn collects_data_ref_stats() {
        let s = TraceStats::collect(&sample_trace(), None);
        assert_eq!(s.data.busy_cycles, 6);
        assert_eq!(s.data.reads, 1);
        assert_eq!(s.data.read_misses, 1);
        assert_eq!(s.data.writes, 1);
        assert_eq!(s.data.write_misses, 0);
        assert_eq!(s.data.read_miss_ratio(), 1.0);
        assert_eq!(s.data.write_miss_ratio(), 0.0);
    }

    #[test]
    fn collects_sync_stats_with_acquire_split() {
        let s = TraceStats::collect(&sample_trace(), None);
        assert_eq!(s.sync.locks, 1);
        assert_eq!(s.sync.unlocks, 1);
        assert_eq!(s.sync.acquires(), 1);
        assert_eq!(s.sync.acquire_wait_cycles, 30);
        assert_eq!(s.sync.acquire_access_cycles, 50);
        assert!((s.sync.hidable_acquire_fraction() - 50.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn branch_stats_without_predictor() {
        let s = TraceStats::collect(&sample_trace(), None);
        assert_eq!(s.branch.branches, 1);
        assert_eq!(s.branch.mispredictions, None);
        assert_eq!(s.branch.predicted_percent(), None);
        assert!((s.branch.branch_percent() - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn branch_stats_with_always_taken() {
        let mut p = AlwaysTaken;
        let s = TraceStats::collect(&sample_trace(), Some(&mut p));
        assert_eq!(s.branch.mispredictions, Some(0));
        assert_eq!(s.branch.predicted_percent(), Some(100.0));
        assert_eq!(s.branch.avg_mispredict_distance(), Some(f64::INFINITY));
    }

    #[test]
    fn per_thousand_rates() {
        let d = DataRefStats {
            busy_cycles: 2000,
            reads: 500,
            writes: 100,
            read_misses: 10,
            write_misses: 4,
        };
        assert_eq!(d.per_thousand(d.reads), 250.0);
        assert_eq!(d.per_thousand(d.write_misses), 2.0);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let s = TraceStats::collect(&Trace::new(), None);
        assert_eq!(s.data, DataRefStats::default());
        assert_eq!(s.branch.avg_branch_distance(), f64::INFINITY);
    }

    #[test]
    fn display_impls_are_nonempty() {
        let s = TraceStats::collect(&sample_trace(), Some(&mut AlwaysTaken));
        assert!(!s.data.to_string().is_empty());
        assert!(!s.sync.to_string().is_empty());
        assert!(s.branch.to_string().contains("predicted"));
    }
}
