//! Annotated dynamic instruction traces.
//!
//! The paper's methodology (§3.2) is *trace-driven*: a multiprocessor
//! simulation of simple in-order processors generates a dynamic
//! instruction trace per processor, augmented with effective addresses
//! and the effective latency of every memory and synchronization
//! operation; the processor timing models then re-time one processor's
//! trace. This crate defines that trace format and the statistics the
//! paper reports about it (Tables 1, 2 and 3).
//!
//! A [`Trace`] is a sequence of [`TraceEntry`] values. Each entry
//! holds only the *dynamic* facts of one executed instruction — the
//! PC, the effective address and observed latency of a memory access,
//! a branch's direction. The *static* facts (operand registers,
//! opcode) are recovered from the [`Program`](lookahead_isa::Program)
//! via the PC, which keeps traces compact.
//!
//! Acquire-type synchronization latencies are split into a **wait**
//! component (lock contention, barrier load imbalance — not hidable by
//! any processor technique the paper studies) and an **access**
//! component (the memory latency of reaching a free synchronization
//! variable — hidable exactly like an ordinary read miss). The split
//! mirrors the paper's §4.1.2 discussion of PTHOR's acquire overhead.

pub mod breakdown;
pub mod record;
pub mod stats;
pub mod storage;
pub mod stream;

pub use breakdown::Breakdown;
pub use record::{MemAccess, SyncAccess, Trace, TraceEntry, TraceOp};
pub use stats::{BranchPredictor, BranchStats, DataRefStats, SyncStats, TraceStats};
pub use storage::{
    fnv1a, read_archive, read_trace, write_archive, write_trace, DecodeError, TraceArchive,
    ARCHIVE_VERSION,
};
pub use stream::{
    collect_source, ChunkBuilder, ChunkMeta, CollectSink, EntryCols, EntryView, GangCursor,
    GangMember, GangStats, NullSink, OpClass, SliceSource, StreamError, TraceChunk, TraceCursor,
    TraceSink, TraceSource, DEFAULT_CHUNK_LEN,
};
