//! Execution-time breakdowns — the stacked bars of the paper's
//! Figures 3 and 4.
//!
//! Every timing model in Lookahead accounts each simulated cycle to
//! exactly one of four categories:
//!
//! * **busy** — a useful instruction completed (on the 1-IPC models,
//!   one cycle per instruction);
//! * **sync** — stalled on acquire synchronization (lock wait, barrier
//!   wait, event wait, plus the memory latency of accessing the
//!   synchronization variable);
//! * **read** — stalled on read-miss latency;
//! * **write** — stalled on write-miss latency (including releases,
//!   which the paper folds into write-miss time, and stalls caused by
//!   a full write buffer).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Cycle counts by stall category. See the module docs for the
/// category definitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Cycles retiring useful instructions.
    pub busy: u64,
    /// Cycles stalled on acquire synchronization.
    pub sync: u64,
    /// Cycles stalled on read latency.
    pub read: u64,
    /// Cycles stalled on write latency (including releases).
    pub write: u64,
}

impl Breakdown {
    /// A zeroed breakdown.
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Total execution time in cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.sync + self.read + self.write
    }

    /// Each category as a fraction of the total (busy, sync, read,
    /// write). Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.busy as f64 / t,
            self.sync as f64 / t,
            self.read as f64 / t,
            self.write as f64 / t,
        ]
    }

    /// Execution time normalized to a baseline's total, times 100 —
    /// the y-axis of the paper's Figure 3 (baseline = 100).
    pub fn normalized_to(&self, baseline: &Breakdown) -> f64 {
        if baseline.total() == 0 {
            0.0
        } else {
            self.total() as f64 * 100.0 / baseline.total() as f64
        }
    }

    /// Fraction of the baseline's read-stall time that this breakdown
    /// hides: `1 - read/baseline.read`. The headline metric of the
    /// paper ("the average percentage of read latency hidden ... was
    /// 33% for window size 16"). Returns `None` when the baseline has
    /// no read stall.
    pub fn read_latency_hidden_vs(&self, baseline: &Breakdown) -> Option<f64> {
        if baseline.read == 0 {
            None
        } else {
            Some(1.0 - self.read as f64 / baseline.read as f64)
        }
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            busy: self.busy + rhs.busy,
            sync: self.sync + rhs.sync,
            read: self.read + rhs.read,
            write: self.write + rhs.write,
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        *self = *self + rhs;
    }
}

impl Sum for Breakdown {
    fn sum<I: Iterator<Item = Breakdown>>(iter: I) -> Breakdown {
        iter.fold(Breakdown::new(), Add::add)
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} busy={} sync={} read={} write={}",
            self.total(),
            self.busy,
            self.sync,
            self.read,
            self.write
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Breakdown {
        Breakdown {
            busy: 50,
            sync: 10,
            read: 30,
            write: 10,
        }
    }

    #[test]
    fn total_and_fractions() {
        let b = sample();
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert_eq!(f, [0.5, 0.1, 0.3, 0.1]);
        assert_eq!(Breakdown::new().fractions(), [0.0; 4]);
    }

    #[test]
    fn normalization() {
        let base = sample();
        let faster = Breakdown {
            busy: 50,
            sync: 10,
            read: 0,
            write: 0,
        };
        assert_eq!(faster.normalized_to(&base), 60.0);
        assert_eq!(base.normalized_to(&base), 100.0);
    }

    #[test]
    fn read_latency_hidden() {
        let base = sample();
        let half = Breakdown {
            read: 15,
            ..sample()
        };
        assert_eq!(half.read_latency_hidden_vs(&base), Some(0.5));
        assert_eq!(base.read_latency_hidden_vs(&base), Some(0.0));
        let no_read = Breakdown {
            read: 0,
            ..sample()
        };
        assert_eq!(no_read.read_latency_hidden_vs(&base), Some(1.0));
        assert_eq!(base.read_latency_hidden_vs(&no_read), None);
    }

    #[test]
    fn arithmetic() {
        let two = sample() + sample();
        assert_eq!(two.total(), 200);
        let sum: Breakdown = vec![sample(), sample(), sample()].into_iter().sum();
        assert_eq!(sum.busy, 150);
        let mut acc = Breakdown::new();
        acc += sample();
        assert_eq!(acc, sample());
    }

    #[test]
    fn display_nonempty() {
        assert!(sample().to_string().contains("total=100"));
    }
}
