//! Property tests that pin the LKTR wire format.
//!
//! The on-disk trace cache trusts `read_archive` to either reproduce
//! the exact `TraceArchive` that was stored or fail with a typed
//! [`DecodeError`] so the caller regenerates. These tests enforce that
//! contract from outside the crate: randomized archives round-trip
//! exactly, and *every* single-bit flip and *every* truncation of an
//! encoded stream yields an error — never a panic, never a silently
//! wrong answer.

use std::collections::BTreeMap;

use lookahead_isa::rng::XorShift64;
use lookahead_isa::{
    AluOp, BranchCond, FpCmpOp, FpReg, FpuOp, Instruction, IntReg, Program, SyncKind,
};
use lookahead_trace::{
    fnv1a, read_archive, read_trace, write_archive, write_trace, Breakdown, DecodeError, MemAccess,
    SyncAccess, Trace, TraceArchive, TraceEntry, TraceOp,
};

const SYNC_KINDS: [SyncKind; 5] = [
    SyncKind::Lock,
    SyncKind::Unlock,
    SyncKind::Barrier,
    SyncKind::WaitEvent,
    SyncKind::SetEvent,
];

fn nonzero_u32(rng: &mut XorShift64) -> u32 {
    (rng.next_below(u32::MAX as u64) + 1) as u32
}

/// One random entry; the tag distribution covers all six record kinds.
fn gen_entry(rng: &mut XorShift64) -> TraceEntry {
    let pc = rng.next_u64() as u32;
    let op = match rng.next_below(6) {
        0 => TraceOp::Compute,
        1 => TraceOp::Load(MemAccess {
            addr: rng.next_u64(),
            miss: rng.next_bool(),
            latency: nonzero_u32(rng),
        }),
        2 => TraceOp::Store(MemAccess {
            addr: rng.next_u64(),
            miss: rng.next_bool(),
            latency: nonzero_u32(rng),
        }),
        3 => TraceOp::Branch {
            taken: rng.next_bool(),
            target: rng.next_u64() as u32,
        },
        4 => TraceOp::Jump {
            target: rng.next_u64() as u32,
        },
        _ => TraceOp::Sync(SyncAccess {
            kind: *rng.choose(&SYNC_KINDS),
            addr: rng.next_u64(),
            wait: rng.next_u64() as u32,
            access: nonzero_u32(rng),
        }),
    };
    TraceEntry { pc, op }
}

fn gen_trace(rng: &mut XorShift64, max_len: usize) -> Trace {
    let len = rng.range_usize(max_len + 1);
    Trace::from_entries((0..len).map(|_| gen_entry(rng)).collect())
}

/// A program exercising every instruction variant and every label
/// path of the codec, with extreme immediates.
fn every_instruction_program() -> Program {
    let r = |i: usize| IntReg::new(i).unwrap();
    let f = |i: usize| FpReg::new(i).unwrap();
    let instrs = vec![
        Instruction::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        },
        Instruction::AluImm {
            op: AluOp::Xor,
            rd: r(4),
            rs1: r(5),
            imm: i64::MIN,
        },
        Instruction::LoadImm {
            rd: r(6),
            imm: i64::MAX,
        },
        Instruction::LoadImmF {
            fd: f(0),
            value: f64::MIN_POSITIVE,
        },
        Instruction::Fpu {
            op: FpuOp::Sqrt,
            fd: f(1),
            fs1: f(2),
            fs2: f(3),
        },
        Instruction::FpCmp {
            op: FpCmpOp::Le,
            rd: r(7),
            fs1: f(4),
            fs2: f(5),
        },
        Instruction::IntToFp { fd: f(6), rs: r(8) },
        Instruction::FpToInt { rd: r(9), fs: f(7) },
        Instruction::Load {
            rd: r(10),
            base: r(11),
            offset: -8,
        },
        Instruction::Store {
            rs: r(12),
            base: r(13),
            offset: 16,
        },
        Instruction::LoadF {
            fd: f(8),
            base: r(14),
            offset: i64::MIN,
        },
        Instruction::StoreF {
            fs: f(9),
            base: r(15),
            offset: i64::MAX,
        },
        Instruction::Branch {
            cond: BranchCond::Ge,
            rs1: r(16),
            rs2: r(17),
            target: 0,
        },
        Instruction::Jump { target: 5 },
        Instruction::JumpAndLink {
            rd: r(18),
            target: 2,
        },
        Instruction::JumpReg { rs: r(19) },
        Instruction::Sync {
            kind: SyncKind::Barrier,
            base: r(20),
            offset: 32,
        },
        Instruction::Nop,
        Instruction::Halt,
    ];
    let mut labels = BTreeMap::new();
    labels.insert(0, "entry".to_string());
    labels.insert(12, "loop_head".to_string());
    Program::with_labels(instrs, labels)
}

fn sample_archive(rng: &mut XorShift64, max_trace_len: usize) -> TraceArchive {
    let num_procs = 1 + rng.range_usize(4);
    let traces: Vec<Trace> = (0..num_procs)
        .map(|_| gen_trace(rng, max_trace_len))
        .collect();
    let breakdowns = (0..num_procs)
        .map(|_| Breakdown {
            busy: rng.next_u64(),
            sync: rng.next_u64(),
            read: rng.next_u64(),
            write: rng.next_u64(),
        })
        .collect();
    TraceArchive {
        key: "lktr-v2;app=LU;tier=small;procs=4;cache=16384/16/1;hit=1;miss=50;wb=16;\
              membytes=1048576;maxcycles=0;bw=none"
            .to_string(),
        app: "LU".to_string(),
        proc: rng.range_usize(num_procs) as u32,
        mp_cycles: rng.next_u64(),
        breakdowns,
        program: every_instruction_program(),
        traces,
    }
}

fn encode_archive(archive: &TraceArchive) -> Vec<u8> {
    let mut buf = Vec::new();
    write_archive(&mut buf, archive).unwrap();
    buf
}

#[test]
fn randomized_archives_roundtrip_exactly() {
    for seed in 0..48u64 {
        let mut rng = XorShift64::seed_from_u64(0x5eed_0000 + seed);
        let archive = sample_archive(&mut rng, 60);
        let buf = encode_archive(&archive);
        let back = read_archive(&buf[..]).expect("decode of own encoding must succeed");
        assert_eq!(archive, back, "seed {seed} did not round-trip");
    }
}

#[test]
fn extreme_latencies_and_addresses_roundtrip() {
    let entries = vec![
        TraceEntry {
            pc: u32::MAX,
            op: TraceOp::Load(MemAccess {
                addr: u64::MAX,
                miss: true,
                latency: u32::MAX,
            }),
        },
        TraceEntry {
            pc: 0,
            op: TraceOp::Store(MemAccess {
                addr: 0,
                miss: false,
                latency: 1,
            }),
        },
        TraceEntry {
            pc: 1,
            op: TraceOp::Branch {
                taken: true,
                target: u32::MAX,
            },
        },
    ];
    let trace = Trace::from_entries(entries);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let back = read_trace(&buf[..]).unwrap();
    assert_eq!(trace.entries(), back.entries());
}

#[test]
fn acquire_wait_access_split_is_preserved_exactly() {
    // The wait component may legitimately be zero (uncontended lock)
    // or enormous (barrier imbalance); the access component is a
    // memory latency and must stay nonzero. Both extremes round-trip.
    for (wait, access) in [(0u32, u32::MAX), (u32::MAX, 1u32)] {
        let trace = Trace::from_entries(vec![TraceEntry {
            pc: 7,
            op: TraceOp::Sync(SyncAccess {
                kind: SyncKind::Lock,
                addr: 0xdead_beef,
                wait,
                access,
            }),
        }]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace.entries(), back.entries());
    }
}

#[test]
fn zero_sync_access_latency_is_rejected() {
    // The writer does not validate; the reader must. A zero access
    // latency would let a timing model hide a sync for free.
    let trace = Trace::from_entries(vec![TraceEntry {
        pc: 0,
        op: TraceOp::Sync(SyncAccess {
            kind: SyncKind::Unlock,
            addr: 8,
            wait: 3,
            access: 0,
        }),
    }]);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    assert!(matches!(read_trace(&buf[..]), Err(DecodeError::BadLatency)));
}

#[test]
fn every_truncation_of_a_trace_is_a_typed_error() {
    let mut rng = XorShift64::seed_from_u64(0xabcd);
    let trace = gen_trace(&mut rng, 24);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    for cut in 0..buf.len() {
        match read_trace(&buf[..cut]) {
            Err(_) => {}
            Ok(_) => panic!(
                "prefix of {cut}/{} bytes decoded as a full trace",
                buf.len()
            ),
        }
    }
}

#[test]
fn every_truncation_of_an_archive_is_a_typed_error() {
    let mut rng = XorShift64::seed_from_u64(0xfeed);
    let archive = sample_archive(&mut rng, 16);
    let buf = encode_archive(&archive);
    for cut in 0..buf.len() {
        match read_archive(&buf[..cut]) {
            Err(_) => {}
            Ok(_) => panic!(
                "prefix of {cut}/{} bytes decoded as a full archive",
                buf.len()
            ),
        }
    }
}

#[test]
fn every_single_bit_flip_of_an_archive_is_detected() {
    // FNV-1a's per-byte XOR-then-multiply chain means a single flipped
    // input bit always changes the final hash, so a flip anywhere in
    // the payload is caught by the checksum even when it still parses
    // structurally; flips in the magic, version or footer are caught
    // by their own checks. Every flip must surface as Err, not as a
    // panic and never as an Ok with altered contents.
    let mut rng = XorShift64::seed_from_u64(0xb17f);
    let archive = sample_archive(&mut rng, 8);
    let buf = encode_archive(&archive);
    assert!(buf.len() < 8192, "keep the fixture small: {}", buf.len());
    for byte in 0..buf.len() {
        for bit in 0..8 {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 1 << bit;
            match read_archive(&corrupt[..]) {
                Err(_) => {}
                Ok(_) => panic!("flip of bit {bit} in byte {byte} went undetected"),
            }
        }
    }
}

#[test]
fn bit_flips_that_parse_structurally_fail_the_checksum() {
    // Flip one bit inside a trace entry's effective address: the
    // stream still parses, so only the checksum can catch it.
    let archive = TraceArchive {
        key: "k".to_string(),
        app: "LU".to_string(),
        proc: 0,
        mp_cycles: 1,
        breakdowns: vec![Breakdown::default()],
        program: Program::new(vec![Instruction::Halt]),
        traces: vec![Trace::from_entries(vec![TraceEntry {
            pc: 0,
            op: TraceOp::Load(MemAccess {
                addr: 0,
                miss: false,
                latency: 9,
            }),
        }])],
    };
    let mut buf = encode_archive(&archive);
    // The addr field is eight zero bytes followed by the latency; the
    // last byte before the 8-byte footer belongs to the final entry's
    // payload region. Flip a middle bit of the addr by searching for
    // the latency value 9 and flipping a bit well before it.
    let len = buf.len();
    let target = len - 8 - 6; // inside the final entry, before the footer
    buf[target] ^= 0x10;
    match read_archive(&buf[..]) {
        Err(DecodeError::BadChecksum { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected BadChecksum, got {other:?}"),
    }
}

#[test]
fn version_confusion_is_rejected() {
    let mut rng = XorShift64::seed_from_u64(0x77);
    let archive = sample_archive(&mut rng, 4);
    let archive_bytes = encode_archive(&archive);
    assert!(
        matches!(
            read_trace(&archive_bytes[..]),
            Err(DecodeError::BadVersion(2))
        ),
        "a v2 archive must not decode as a bare v1 trace"
    );

    let mut trace_bytes = Vec::new();
    write_trace(&mut trace_bytes, &gen_trace(&mut rng, 4)).unwrap();
    assert!(
        matches!(
            read_archive(&trace_bytes[..]),
            Err(DecodeError::BadVersion(1))
        ),
        "a bare v1 trace must not decode as an archive"
    );
}

#[test]
fn out_of_range_representative_proc_is_rejected() {
    let mut rng = XorShift64::seed_from_u64(0x99);
    let mut archive = sample_archive(&mut rng, 4);
    archive.proc = archive.traces.len() as u32 + 3;
    let buf = encode_archive(&archive);
    match read_archive(&buf[..]) {
        Err(DecodeError::BadCode { what, .. }) => {
            assert_eq!(what, "representative processor index");
        }
        other => panic!("expected BadCode, got {other:?}"),
    }
}

#[test]
fn fnv1a_matches_published_test_vectors() {
    // Draft-eastlake FNV-1a 64-bit vectors; the cache's file naming
    // and the archive checksum both depend on these exact values.
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
}
