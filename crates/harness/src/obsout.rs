//! Per-run observability artifacts.
//!
//! An instrumented run (a [`lookahead_obs::Recorder`] captured around
//! trace generation or a re-timing pass) is written as a directory of
//! three files:
//!
//! * `manifest.json` — the run name, git revision, configuration
//!   key/values, every metric, and the full stall-attribution matrix;
//! * `journal.jsonl` — the event journal, one JSON object per line;
//! * `trace.json` — the same journal as Chrome `trace_event` JSON,
//!   loadable directly in chrome://tracing or https://ui.perfetto.dev.
//!
//! The writers live in the harness (not the obs crate) because only
//! here do runs have names, configurations, and a place on disk.

use lookahead_obs::{json, Recorder};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Where one run's artifacts were written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsArtifacts {
    /// The per-run directory (`<out>/<sanitized name>/`).
    pub dir: PathBuf,
    pub manifest: PathBuf,
    pub journal: PathBuf,
    pub chrome_trace: PathBuf,
}

/// The current git revision, or `"unknown"` outside a repository.
pub fn git_revision() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Replaces path-hostile characters so a run name like `DS-64/RC` maps
/// to one directory component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '/' | '\\' | ':' | ' ' => '-',
            c => c,
        })
        .collect()
}

/// Writes `manifest.json`, `journal.jsonl`, and `trace.json` for one
/// recorded run into `<out_dir>/<sanitized name>/`.
///
/// `config` is a flat list of configuration key/values recorded
/// verbatim in the manifest; `extra` is a list of `(key, raw JSON)`
/// pairs spliced in unquoted (for pre-rendered values such as a
/// breakdown object).
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_run_artifacts(
    out_dir: &Path,
    name: &str,
    config: &[(&str, String)],
    extra: &[(&str, String)],
    rec: &Recorder,
) -> io::Result<ObsArtifacts> {
    let dir = out_dir.join(sanitize(name));
    fs::create_dir_all(&dir)?;
    let journal = dir.join("journal.jsonl");
    let chrome_trace = dir.join("trace.json");
    let manifest = dir.join("manifest.json");

    let mut w = BufWriter::new(fs::File::create(&journal)?);
    rec.journal.to_jsonl(&mut w)?;
    w.flush()?;

    let mut w = BufWriter::new(fs::File::create(&chrome_trace)?);
    rec.journal.to_chrome_trace(&mut w)?;
    w.flush()?;

    let mut m = String::from("{");
    let _ = write!(m, "\"run\":{}", json::quote(name));
    let _ = write!(m, ",\"git_rev\":{}", json::quote(&git_revision()));
    m.push_str(",\"config\":{");
    for (i, (k, v)) in config.iter().enumerate() {
        if i > 0 {
            m.push(',');
        }
        let _ = write!(m, "{}:{}", json::quote(k), json::quote(v));
    }
    m.push('}');
    for (k, raw) in extra {
        let _ = write!(m, ",{}:{raw}", json::quote(k));
    }
    let _ = write!(
        m,
        ",\"journal\":{{\"events\":{},\"dropped\":{},\"jsonl\":\"journal.jsonl\",\"chrome_trace\":\"trace.json\"}}",
        rec.journal.len(),
        rec.journal.dropped()
    );
    let _ = write!(m, ",\"metrics\":{}", rec.metrics.to_json());
    let _ = write!(m, ",\"attribution\":{}", rec.attribution.to_json());
    m.push('}');
    fs::write(&manifest, m)?;

    Ok(ObsArtifacts {
        dir,
        manifest,
        journal,
        chrome_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_obs::{Event, EventKind, StallCause, StallClass};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lookahead-obsout-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn artifacts_are_written_and_parse() {
        let out = temp_dir("roundtrip");
        let mut rec = Recorder::new(0);
        rec.metrics.inc("core.ds.retired", 42);
        rec.event(5, EventKind::Fetch { pc: 7 });
        for t in 6..10 {
            rec.stall_cycle(t, 7, StallClass::Read, StallCause::ReadMiss);
        }
        rec.flush_stall();
        let art = write_run_artifacts(
            &out,
            "LU DS-64/RC",
            &[("window", "64".into())],
            &[("cycles", "123".into())],
            &rec,
        )
        .unwrap();
        assert!(art.dir.ends_with("LU-DS-64-RC"));
        let manifest = fs::read_to_string(&art.manifest).unwrap();
        assert!(manifest.contains("\"core.ds.retired\":42"));
        assert!(manifest.contains("\"cycles\":123"));
        assert!(manifest.contains("\"window\":\"64\""));
        // The journal reloads through the obs reader.
        let jsonl = fs::read(&art.journal).unwrap();
        let back = lookahead_obs::EventJournal::from_jsonl(jsonl.as_slice()).unwrap();
        assert_eq!(back.len(), 2, "fetch + coalesced stall");
        assert!(back
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stall { dur: 4, .. })));
        // The chrome trace is balanced JSON.
        let trace = fs::read_to_string(&art.chrome_trace).unwrap();
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn empty_recorder_still_writes_manifest() {
        let out = temp_dir("empty");
        let rec = Recorder::new(0);
        let art = write_run_artifacts(&out, "empty", &[], &[], &rec).unwrap();
        let manifest = fs::read_to_string(&art.manifest).unwrap();
        assert!(manifest.contains("\"metrics\":{}"));
        assert!(manifest.contains("\"git_rev\":"));
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn events_list_export() {
        // push directly with distinct proc ids, as the multiprocessor
        // simulation does.
        let out = temp_dir("procs");
        let mut rec = Recorder::new(0);
        for p in 0..3u32 {
            rec.journal.push(Event {
                t: p as u64,
                proc: p,
                kind: EventKind::WbFull,
            });
        }
        let art = write_run_artifacts(&out, "procs", &[], &[], &rec).unwrap();
        let trace = fs::read_to_string(&art.chrome_trace).unwrap();
        assert!(trace.contains("\"tid\":2"));
        let _ = fs::remove_dir_all(&out);
    }
}
