//! Workload size tiers: which problem size every application runs at.
//!
//! The tier is part of every trace-cache key (see
//! [`cache_key`](crate::cache::cache_key)), so the bench binaries, the
//! unified driver and the experiment service all agree on what a
//! cached trace means. The canonical tier names (`small`, `default`,
//! `paper`, `large`) are pinned by tests — renaming one silently
//! invalidates every existing cache.

use lookahead_workloads::{App, Workload};

/// Which workload size every application runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeTier {
    /// Unit-test sizes (`LOOKAHEAD_SMALL=1`).
    Small,
    /// The experiment-harness defaults.
    Default,
    /// The paper's published sizes (`LOOKAHEAD_PAPER=1`).
    Paper,
    /// Beyond the paper's sizes (`LOOKAHEAD_LARGE=1`): traces big
    /// enough that only the streamed bounded-memory pipeline keeps the
    /// working set flat.
    Large,
}

impl SizeTier {
    /// Every tier, in increasing size order.
    pub const ALL: [SizeTier; 4] = [
        SizeTier::Small,
        SizeTier::Default,
        SizeTier::Paper,
        SizeTier::Large,
    ];

    /// Reads the tier from the environment; `LOOKAHEAD_SMALL` wins
    /// over `LOOKAHEAD_PAPER`, which wins over `LOOKAHEAD_LARGE`.
    pub fn from_env() -> SizeTier {
        let on = |k: &str| std::env::var(k).is_ok_and(|v| v != "0");
        if on("LOOKAHEAD_SMALL") {
            SizeTier::Small
        } else if on("LOOKAHEAD_PAPER") {
            SizeTier::Paper
        } else if on("LOOKAHEAD_LARGE") {
            SizeTier::Large
        } else {
            SizeTier::Default
        }
    }

    /// The tier's name as spelled into cache keys.
    pub fn name(self) -> &'static str {
        match self {
            SizeTier::Small => "small",
            SizeTier::Default => "default",
            SizeTier::Paper => "paper",
            SizeTier::Large => "large",
        }
    }

    /// The tier named `name` (the inverse of [`name`](Self::name)),
    /// case-insensitively; `None` for anything else.
    pub fn from_name(name: &str) -> Option<SizeTier> {
        SizeTier::ALL
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
    }

    /// The application's workload at this tier.
    pub fn workload(self, app: App) -> Box<dyn Workload + Send + Sync> {
        match self {
            SizeTier::Small => app.small_workload(),
            SizeTier::Default => app.default_workload(),
            SizeTier::Paper => app.paper_workload(),
            SizeTier::Large => app.large_workload(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_cache_key_stable() {
        // Cache keys embed these strings; renaming one silently
        // invalidates every existing cache, so pin them.
        assert_eq!(SizeTier::Small.name(), "small");
        assert_eq!(SizeTier::Default.name(), "default");
        assert_eq!(SizeTier::Paper.name(), "paper");
        assert_eq!(SizeTier::Large.name(), "large");
    }

    #[test]
    fn from_name_roundtrips_and_rejects_unknown() {
        for t in SizeTier::ALL {
            assert_eq!(SizeTier::from_name(t.name()), Some(t));
        }
        assert_eq!(SizeTier::from_name("SMALL"), Some(SizeTier::Small));
        assert_eq!(SizeTier::from_name(" paper "), Some(SizeTier::Paper));
        assert_eq!(SizeTier::from_name("Large"), Some(SizeTier::Large));
        assert_eq!(SizeTier::from_name("huge"), None);
        assert_eq!(SizeTier::from_name(""), None);
    }
}
