//! Experiment harness: the full pipeline from workload to the paper's
//! tables and figures.
//!
//! The pipeline mirrors the paper's methodology (§3):
//!
//! 1. compile a workload ([`lookahead_workloads`]) to SRISC,
//! 2. run the 16-processor execution-driven simulation
//!    ([`lookahead_multiproc`]) to produce annotated traces,
//! 3. pick a representative processor's trace,
//! 4. re-time it under every processor model / consistency model /
//!    window size of interest ([`lookahead_core`]),
//! 5. report normalized execution-time breakdowns and derived metrics.
//!
//! [`pipeline`] implements steps 1–3 (with verification),
//! [`experiments`] steps 4–5 for each table and figure of the paper,
//! and [`format`](mod@format) renders text tables and stacked bars.
//!
//! Four execution-layer modules make the experiment suite cheap to
//! rerun and safe to share: [`cache`] stores generated runs in a
//! content-addressed on-disk cache so the multiprocessor simulation is
//! pay-once, [`parallel`] fans independent re-timing cells across
//! cores with deterministic, submission-ordered results, [`dag`]
//! schedules a whole sweep as a costed task graph (critical-path rank,
//! earliest-finish placement, generation overlapped with re-timing),
//! and [`singleflight`] deduplicates concurrent requests for the same
//! run onto a single computation (the substrate of the experiment
//! service's coalescing).

pub mod cache;
pub mod dag;
pub mod experiments;
pub mod format;
pub mod obsout;
pub mod parallel;
pub mod pipeline;
pub mod singleflight;
pub mod tier;

pub use cache::{cache_key, load_or_generate, CacheOutcome, MissReason, TraceCache};
pub use dag::{
    cost_model, run_dag, run_dag_with_stats, CostModel, DagStats, Plan, Scheduler, TaskDag,
};
pub use experiments::{
    figure3, figure3_with, figure4, figure4_with, latency_sweep, miss_delay, multi_issue,
    multi_issue_with, rc_sweep_columns, read_latency_hidden_summary,
    read_latency_hidden_summary_with, retime_gang, retime_gang_observed, retime_matrix_mode,
    table1, table2, table3, CellSpec, Figure3Column, Figure4Column, MissDelayReport, ModelSpec,
    RetimeMode, RETIME_ENV,
};
pub use pipeline::{AppRun, PipelineError};
pub use singleflight::{FlightOutcome, SharedRunStats, SharedRuns, SingleFlight};
pub use tier::SizeTier;
