//! Experiment-DAG scheduler: critical-path rank + earliest-finish
//! placement over the sweep task graph.
//!
//! A report sweep is really a DAG, not a flat job list: per-application
//! trace **generation** feeds every re-timing **cell** of that
//! application, and the cells feed report assembly. The flat
//! [`parallel`](crate::parallel) pool cannot express that shape — the
//! driver historically ran generation to a barrier, then each report's
//! cells to another barrier, losing the tail of every phase to its
//! slowest member. This module models the sweep explicitly:
//!
//! - **Nodes** carry cost estimates (coarse weights calibrated from the
//!   `BENCH_generation`/`BENCH_retiming` artifacts: generation
//!   dominates a cold sweep, DS cells grow with window size; see
//!   [`ModelSpec::cost`](crate::experiments::ModelSpec::cost)). A
//!   cache or memo hit collapses a node to (near) zero cost via
//!   [`TaskDag::add_collapsed`].
//! - **Edges** carry the generated-run dependency: once a generation
//!   node completes, its cells re-time through `AppRun::retime`'s
//!   streamed `TraceCursor` path. (The representative processor is
//!   chosen by `busiest_proc()` *after* generation, so a cell cannot
//!   stream from its own app's in-flight generation; the overlap this
//!   scheduler buys is across applications and reports — app A's cells
//!   run while app B is still generating.)
//! - The **scheduler** orders ready work by *upward rank* (the
//!   classic critical-path priority: a node's cost plus the most
//!   expensive downstream chain hanging off it, after dslab-dag's
//!   lookahead scheduler), so the long DS.256 chains start early and
//!   never straggle the makespan.
//!
//! [`TaskDag::plan`] is the deterministic earliest-finish *placement*
//! simulation over the estimates (used for predicted makespans and the
//! determinism tests); [`run_dag`] is the executor. On homogeneous
//! workers, pulling the highest-ranked ready node from one shared heap
//! is exactly earliest-finish placement — whichever worker frees up
//! first takes the most critical ready node — and the shared heap *is*
//! the work-stealing fallback: an idle worker never waits while any
//! node is ready. Results return in node-id order, so assembled output
//! is byte-identical for any worker count or completion interleaving.

use lookahead_obs::span;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Environment knob selecting the sweep scheduler (`flat` or `dag`);
/// the `--scheduler` flag wins over it.
pub const SCHEDULER_ENV: &str = "LOOKAHEAD_SCHEDULER";

/// Which engine runs a sweep's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// The flat [`parallel`](crate::parallel) pool (submission order,
    /// atomic work index).
    Flat,
    /// The rank-ordered DAG executor in this module.
    Dag,
}

impl Scheduler {
    /// Parses a scheduler name as used by `--scheduler` and
    /// [`SCHEDULER_ENV`].
    pub fn from_name(name: &str) -> Option<Scheduler> {
        match name.trim() {
            "flat" => Some(Scheduler::Flat),
            "dag" => Some(Scheduler::Dag),
            _ => None,
        }
    }

    /// The canonical name (`flat` / `dag`).
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Flat => "flat",
            Scheduler::Dag => "dag",
        }
    }

    /// Reads [`SCHEDULER_ENV`], failing fast on a malformed value.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the variable is set to
    /// anything other than `flat` or `dag`.
    pub fn from_env() -> Result<Option<Scheduler>, String> {
        match std::env::var(SCHEDULER_ENV) {
            Ok(v) => Scheduler::from_name(&v)
                .map(Some)
                .ok_or_else(|| format!("{SCHEDULER_ENV} must be \"flat\" or \"dag\", got {v:?}")),
            Err(_) => Ok(None),
        }
    }
}

/// The cost assigned to a collapsed (cache/memo-hit) node. Non-zero so
/// ranks stay strictly decreasing along every edge, which is what lets
/// [`TaskDag::plan`] schedule dependencies before dependents.
pub const COLLAPSED_COST: u64 = 1;

/// EMA smoothing factor for observed task durations: recent sweeps
/// dominate, but one outlier (a cold file cache, a scheduling hiccup)
/// cannot swing an estimate by more than 30%.
const EMA_ALPHA: f64 = 0.3;

/// Learned task-cost estimates: an exponential moving average of
/// observed wall durations keyed by task kind (`"BASE"`, `"DS.64"`,
/// `"gang"`, `"generate"`, ...), fed back from [`run_dag_with_stats`]
/// so later sweeps in the same process plan with measured costs
/// instead of the static guesses.
///
/// Estimates are expressed in the DAG's nominal cost unit, which the
/// static weights (see `ModelSpec::cost`) chose to be roughly one
/// millisecond of work — so observed milliseconds feed back on the
/// same scale the planner already uses. Costs only reorder execution;
/// results are returned in node-id order, so learned costs can never
/// change sweep output.
#[derive(Debug, Default)]
pub struct CostModel {
    ema_ms: Mutex<HashMap<String, f64>>,
}

impl CostModel {
    /// Folds one observed duration for `kind` into the average.
    pub fn observe(&self, kind: &str, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        let ms = secs * 1000.0;
        let mut ema = self.ema_ms.lock().expect("cost model lock");
        match ema.get_mut(kind) {
            Some(v) => *v = *v * (1.0 - EMA_ALPHA) + ms * EMA_ALPHA,
            None => {
                ema.insert(kind.to_string(), ms);
            }
        }
    }

    /// The learned cost for `kind` in nominal units, or `fallback`
    /// (the static estimate) before the first observation.
    pub fn estimate(&self, kind: &str, fallback: u64) -> u64 {
        let ema = self.ema_ms.lock().expect("cost model lock");
        match ema.get(kind) {
            Some(&ms) => (ms as u64).max(1),
            None => fallback.max(1),
        }
    }

    /// Number of kinds with at least one observation.
    pub fn len(&self) -> usize {
        self.ema_ms.lock().expect("cost model lock").len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide [`CostModel`] every DAG execution feeds.
pub fn cost_model() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(CostModel::default)
}

/// A dependency graph of costed tasks, built append-only: a task may
/// only depend on already-added tasks, so the graph is acyclic by
/// construction and node id order is a topological order.
#[derive(Debug, Clone, Default)]
pub struct TaskDag {
    costs: Vec<u64>,
    deps: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Cost-model kind per task (`None` for untracked tasks).
    kinds: Vec<Option<String>>,
    collapsed: usize,
}

impl TaskDag {
    /// An empty graph.
    #[must_use]
    pub fn new() -> TaskDag {
        TaskDag::default()
    }

    /// Adds a task with the given cost estimate (clamped to >= 1 so
    /// ranks strictly decrease along edges) depending on the given
    /// earlier tasks. Returns the new task's id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id does not refer to an earlier task.
    pub fn add_task(&mut self, cost: u64, deps: &[usize]) -> usize {
        let id = self.costs.len();
        for &d in deps {
            assert!(d < id, "task {id} depends on not-yet-added task {d}");
            self.succs[d].push(id);
        }
        self.costs.push(cost.max(1));
        self.deps.push(deps.to_vec());
        self.succs.push(Vec::new());
        self.kinds.push(None);
        id
    }

    /// [`add_task`](Self::add_task) with a cost-model kind attached:
    /// the task's cost estimate is refined by the process-wide
    /// [`cost_model`]'s learned average for `kind` (when one exists),
    /// and its observed duration is fed back after execution.
    pub fn add_task_kind(&mut self, cost: u64, deps: &[usize], kind: &str) -> usize {
        let id = self.add_task(cost_model().estimate(kind, cost), deps);
        self.kinds[id] = Some(kind.to_string());
        id
    }

    /// Adds a node whose real work is already memoized (a cache hit, a
    /// shared single-flight result): it still orders its dependents but
    /// costs [`COLLAPSED_COST`] in the schedule.
    pub fn add_collapsed(&mut self, deps: &[usize]) -> usize {
        self.collapsed += 1;
        self.add_task(COLLAPSED_COST, deps)
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Number of dependency edges.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Number of collapsed (memoized) nodes.
    #[must_use]
    pub fn collapsed(&self) -> usize {
        self.collapsed
    }

    /// The cost estimate of task `id`.
    #[must_use]
    pub fn cost(&self, id: usize) -> u64 {
        self.costs[id]
    }

    /// The dependencies of task `id`.
    #[must_use]
    pub fn deps(&self, id: usize) -> &[usize] {
        &self.deps[id]
    }

    /// Sum of all cost estimates (the serial makespan).
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Upward ranks: `rank(t) = cost(t) + max(rank of successors)`,
    /// i.e. the cost of the most expensive chain starting at `t`. The
    /// maximum over all tasks is the critical-path cost. Because
    /// successors always have larger ids (append-only construction),
    /// one reverse pass suffices.
    #[must_use]
    pub fn ranks(&self) -> Vec<u64> {
        let mut ranks = vec![0u64; self.len()];
        for id in (0..self.len()).rev() {
            let down = self.succs[id].iter().map(|&s| ranks[s]).max().unwrap_or(0);
            ranks[id] = self.costs[id] + down;
        }
        ranks
    }

    /// The critical-path cost (longest chain of estimates).
    #[must_use]
    pub fn critical_path(&self) -> u64 {
        self.ranks().into_iter().max().unwrap_or(0)
    }

    /// Deterministic earliest-finish placement over the cost
    /// estimates: tasks in decreasing rank order (ties by id), each
    /// placed on the worker where it finishes earliest. Costs are at
    /// least 1, so every dependency outranks its dependents and is
    /// placed first.
    #[must_use]
    pub fn plan(&self, workers: usize) -> Plan {
        let n = self.len();
        let ranks = self.ranks();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| ranks[b].cmp(&ranks[a]).then(a.cmp(&b)));

        let mut free = vec![0u64; workers.max(1)];
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut worker = vec![0usize; n];
        for &id in &order {
            let est = self.deps[id].iter().map(|&d| finish[d]).max().unwrap_or(0);
            let (w, s) = free
                .iter()
                .enumerate()
                .map(|(w, &f)| (w, f.max(est)))
                .min_by_key(|&(w, s)| (s, w))
                .expect("at least one worker");
            start[id] = s;
            finish[id] = s + self.costs[id];
            worker[id] = w;
            free[w] = finish[id];
        }
        let makespan = finish.iter().copied().max().unwrap_or(0);
        Plan {
            order,
            worker,
            start,
            finish,
            makespan,
        }
    }
}

/// The schedule produced by [`TaskDag::plan`]: purely a function of
/// the DAG and the worker count (the determinism tests pin this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Task ids in scheduling (rank) order.
    pub order: Vec<usize>,
    /// Assigned worker per task id.
    pub worker: Vec<usize>,
    /// Simulated start time per task id.
    pub start: Vec<u64>,
    /// Simulated finish time per task id.
    pub finish: Vec<u64>,
    /// Simulated completion time of the whole graph.
    pub makespan: u64,
}

/// What a [`run_dag_with_stats`] execution observed — exported to
/// `/metrics` by serve and to `BENCH_dag.json` by `lookahead bench
/// dag`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// Nodes collapsed to [`COLLAPSED_COST`] by a cache/memo hit.
    pub collapsed: usize,
    /// Critical-path cost (longest chain of estimates).
    pub critical_path: u64,
    /// Sum of all cost estimates.
    pub total_cost: u64,
    /// Predicted makespan of [`TaskDag::plan`] at this worker count.
    pub planned_makespan: u64,
    /// Largest ready-set size observed during execution.
    pub peak_ready: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Relative error of the planned makespan against the observed
    /// wall time: `(observed - predicted) / predicted`, with the
    /// prediction converted to seconds via the run's own
    /// cost-unit-to-seconds ratio. Positive means the plan was
    /// optimistic; 0 when the run was too small to measure.
    pub makespan_error: f64,
}

/// Max-heap priority: highest rank first, ties broken by lowest id so
/// the pop order is deterministic.
#[derive(PartialEq, Eq)]
struct Prio {
    rank: u64,
    id: usize,
}

impl Ord for Prio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank.cmp(&other.rank).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Prio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct ExecState {
    ready: BinaryHeap<Prio>,
    /// Unmet dependency count per task; a task becomes ready at zero.
    waiting: Vec<usize>,
    done: usize,
    peak_ready: usize,
    /// Set when a worker unwinds, so the others stop waiting.
    poisoned: bool,
}

impl ExecState {
    fn new(dag: &TaskDag, ranks: &[u64]) -> ExecState {
        let waiting: Vec<usize> = (0..dag.len()).map(|id| dag.deps[id].len()).collect();
        let mut ready = BinaryHeap::new();
        for (id, &w) in waiting.iter().enumerate() {
            if w == 0 {
                ready.push(Prio {
                    rank: ranks[id],
                    id,
                });
            }
        }
        let peak_ready = ready.len();
        ExecState {
            ready,
            waiting,
            done: 0,
            peak_ready,
            poisoned: false,
        }
    }

    /// Marks `id` done and pushes newly-ready successors.
    fn complete(&mut self, dag: &TaskDag, ranks: &[u64], id: usize) {
        self.done += 1;
        for &s in &dag.succs[id] {
            self.waiting[s] -= 1;
            if self.waiting[s] == 0 {
                self.ready.push(Prio {
                    rank: ranks[s],
                    id: s,
                });
            }
        }
        self.peak_ready = self.peak_ready.max(self.ready.len());
    }
}

/// Runs one job per DAG node on up to `workers` threads, dependencies
/// strictly before dependents, ready nodes in decreasing rank order.
/// Results come back in node-id order regardless of execution
/// interleaving.
///
/// # Panics
///
/// Panics if `jobs.len() != dag.len()`; a panicking job is propagated
/// to the caller once the scope unwinds.
pub fn run_dag<T, F>(dag: &TaskDag, jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_dag_with_stats(dag, jobs, workers).0
}

/// [`run_dag`] returning execution statistics alongside the results.
///
/// # Panics
///
/// Panics if `jobs.len() != dag.len()`; a panicking job is propagated
/// to the caller once the scope unwinds.
pub fn run_dag_with_stats<T, F>(dag: &TaskDag, jobs: Vec<F>, workers: usize) -> (Vec<T>, DagStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = dag.len();
    assert_eq!(jobs.len(), n, "one job per DAG node");
    let (ranks, planned) =
        span::record_current("dag.schedule", || (dag.ranks(), dag.plan(workers).makespan));
    let mut stats = DagStats {
        tasks: n,
        edges: dag.edges(),
        collapsed: dag.collapsed(),
        critical_path: ranks.iter().copied().max().unwrap_or(0),
        total_cost: dag.total_cost(),
        planned_makespan: planned,
        peak_ready: 0,
        workers: workers.max(1).min(n.max(1)),
        makespan_error: 0.0,
    };
    let task_ns: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let wall_start = Instant::now();

    if workers <= 1 || n <= 1 {
        // Serial path: the same heap discipline on the calling thread —
        // execution order is exactly the one-worker plan.
        let results = span::record_current("dag.run", || {
            let mut state = ExecState::new(dag, &ranks);
            let mut slots: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
            let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
            while let Some(Prio { id, .. }) = state.ready.pop() {
                let job = slots[id].take().expect("job claimed twice");
                let t0 = Instant::now();
                results[id] = Some(job());
                task_ns[id].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                state.complete(dag, &ranks, id);
            }
            stats.peak_ready = state.peak_ready;
            results
                .into_iter()
                .map(|r| r.expect("dependency cycle: job never became ready"))
                .collect()
        });
        finish_stats(
            dag,
            &task_ns,
            wall_start.elapsed().as_secs_f64(),
            &mut stats,
        );
        return (results, stats);
    }

    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let state = Mutex::new(ExecState::new(dag, &ranks));
    let ready_cv = Condvar::new();
    let scope_in = span::current_scope();
    span::record_current("dag.run", || {
        std::thread::scope(|s| {
            for _ in 0..workers.min(n) {
                let (slots, results, state, ready_cv) = (&slots, &results, &state, &ready_cv);
                let (ranks, task_ns) = (&ranks, &task_ns);
                let scope_in = scope_in.clone();
                s.spawn(move || {
                    // Adopt the submitter's trace scope so per-cell
                    // spans join the request's tree (as parallel.rs).
                    span::set_scope(scope_in);
                    // If this worker's job panics, wake the others so
                    // they drain instead of waiting forever.
                    struct Wake<'a>(&'a Mutex<ExecState>, &'a Condvar);
                    impl Drop for Wake<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                if let Ok(mut st) = self.0.lock() {
                                    st.poisoned = true;
                                }
                                self.1.notify_all();
                            }
                        }
                    }
                    let _wake = Wake(state, ready_cv);
                    loop {
                        let id = {
                            let mut st = state.lock().expect("scheduler state poisoned");
                            loop {
                                if st.poisoned || st.done == n {
                                    span::set_scope(None);
                                    return;
                                }
                                if let Some(Prio { id, .. }) = st.ready.pop() {
                                    break id;
                                }
                                st = ready_cv.wait(st).expect("scheduler state poisoned");
                            }
                        };
                        let job = slots[id]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("job claimed twice");
                        let t0 = Instant::now();
                        let out = job();
                        task_ns[id].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        *results[id].lock().expect("result slot poisoned") = Some(out);
                        let mut st = state.lock().expect("scheduler state poisoned");
                        st.complete(dag, ranks, id);
                        drop(st);
                        ready_cv.notify_all();
                    }
                });
            }
        });
    });
    stats.peak_ready = state.lock().expect("scheduler state poisoned").peak_ready;
    finish_stats(
        dag,
        &task_ns,
        wall_start.elapsed().as_secs_f64(),
        &mut stats,
    );
    let results = results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("job did not produce a result")
        })
        .collect();
    (results, stats)
}

/// Feeds observed task durations back into the process-wide
/// [`cost_model`] and scores the plan: the unit-less planned makespan
/// is converted to seconds with this run's own cost-to-seconds ratio
/// (`total observed task seconds / total estimated cost`) and compared
/// against the observed wall time. The relative error lands in
/// `stats.makespan_error` and on the active metrics recorder as the
/// `dag.plan.makespan_error` gauge (per-mille).
fn finish_stats(dag: &TaskDag, task_ns: &[AtomicU64], wall_secs: f64, stats: &mut DagStats) {
    let model = cost_model();
    let mut total_task_secs = 0.0;
    for (id, ns) in task_ns.iter().enumerate() {
        let secs = ns.load(Ordering::Relaxed) as f64 / 1e9;
        total_task_secs += secs;
        if let Some(kind) = &dag.kinds[id] {
            model.observe(kind, secs);
        }
    }
    if stats.total_cost > 0 && total_task_secs > 0.0 {
        let secs_per_unit = total_task_secs / stats.total_cost as f64;
        let predicted = stats.planned_makespan as f64 * secs_per_unit;
        if predicted > 0.0 {
            stats.makespan_error = (wall_secs - predicted) / predicted;
        }
    }
    let per_mille = (stats.makespan_error * 1000.0) as i64;
    lookahead_obs::with(|r| r.metrics.gauge_set("dag.plan.makespan_error", per_mille));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// gen -> {cells...} for two apps plus an independent tail.
    fn two_app_dag() -> TaskDag {
        let mut dag = TaskDag::new();
        let g0 = dag.add_task(100, &[]);
        let g1 = dag.add_task(80, &[]);
        for _ in 0..3 {
            dag.add_task(10, &[g0]);
            dag.add_task(10, &[g1]);
        }
        dag.add_task(5, &[]);
        dag
    }

    #[test]
    fn ranks_are_longest_downstream_chains() {
        let mut dag = TaskDag::new();
        let a = dag.add_task(10, &[]);
        let b = dag.add_task(5, &[a]);
        let c = dag.add_task(20, &[a]);
        let d = dag.add_task(1, &[b, c]);
        let ranks = dag.ranks();
        assert_eq!(ranks[d], 1);
        assert_eq!(ranks[b], 6);
        assert_eq!(ranks[c], 21);
        assert_eq!(ranks[a], 31);
        assert_eq!(dag.critical_path(), 31);
        assert_eq!(dag.total_cost(), 36);
        assert_eq!(dag.edges(), 4);
    }

    #[test]
    fn plan_respects_dependencies_and_is_deterministic() {
        let dag = two_app_dag();
        let plan = dag.plan(3);
        for id in 0..dag.len() {
            for &d in dag.deps(id) {
                assert!(
                    plan.finish[d] <= plan.start[id],
                    "dep {d} finishes after {id} starts"
                );
            }
        }
        assert_eq!(plan, dag.plan(3));
        // One worker serializes everything.
        assert_eq!(dag.plan(1).makespan, dag.total_cost());
        // More workers never hurt the predicted makespan.
        assert!(dag.plan(4).makespan <= dag.plan(2).makespan);
    }

    #[test]
    fn executes_dependencies_first_any_worker_count() {
        for workers in [1, 2, 8] {
            let dag = two_app_dag();
            let clock = AtomicUsize::new(0);
            let jobs: Vec<_> = (0..dag.len())
                .map(|_| || clock.fetch_add(1, Ordering::SeqCst))
                .collect();
            let seq = run_dag(&dag, jobs, workers);
            for id in 0..dag.len() {
                for &d in dag.deps(id) {
                    assert!(
                        seq[d] < seq[id],
                        "workers={workers}: dep {d} ran after {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn results_in_node_id_order() {
        let mut dag = TaskDag::new();
        for i in 0..40 {
            let deps: &[usize] = if i >= 10 { &[i - 10] } else { &[] };
            dag.add_task(1 + (i as u64 % 5), deps);
        }
        let mk = || (0..40).map(|i| move || i * 3).collect::<Vec<_>>();
        let serial = run_dag(&dag, mk(), 1);
        let parallel = run_dag(&dag, mk(), 8);
        assert_eq!(serial, (0..40).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stats_count_collapsed_nodes_and_ready_peak() {
        let mut dag = TaskDag::new();
        let g = dag.add_collapsed(&[]);
        for _ in 0..4 {
            dag.add_task(10, &[g]);
        }
        let jobs: Vec<_> = (0..dag.len()).map(|i| move || i).collect();
        let (out, stats) = run_dag_with_stats(&dag, jobs, 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.collapsed, 1);
        assert_eq!(stats.tasks, 5);
        // All four cells were ready at once after the collapsed root.
        assert_eq!(stats.peak_ready, 4);
        assert_eq!(stats.critical_path, COLLAPSED_COST + 10);
    }

    #[test]
    fn scheduler_names_round_trip() {
        assert_eq!(Scheduler::from_name("flat"), Some(Scheduler::Flat));
        assert_eq!(Scheduler::from_name(" dag "), Some(Scheduler::Dag));
        assert_eq!(Scheduler::from_name("greedy"), None);
        assert_eq!(Scheduler::Dag.name(), "dag");
        assert_eq!(Scheduler::Flat.name(), "flat");
    }

    #[test]
    fn empty_dag_runs() {
        let dag = TaskDag::new();
        let jobs: Vec<fn() -> u32> = Vec::new();
        let (out, stats) = run_dag_with_stats(&dag, jobs, 4);
        assert!(out.is_empty());
        assert_eq!(stats.critical_path, 0);
    }

    #[test]
    #[should_panic(expected = "depends on not-yet-added")]
    fn forward_dependencies_are_rejected() {
        let mut dag = TaskDag::new();
        dag.add_task(1, &[3]);
    }
}
