//! A small worker pool for fanning re-timing cells across cores.
//!
//! The re-timing side of the pipeline is embarrassingly parallel: every
//! (application × model × window × consistency) cell of a sweep is an
//! independent deterministic simulation over a shared, read-only trace.
//! This module runs such cells on a pool of scoped `std` threads and
//! returns the results **in submission order**, so output assembled
//! from them is byte-identical whether the pool runs with one worker
//! or sixteen.
//!
//! No external dependencies: plain `std::thread::scope` plus an atomic
//! work index.
//!
//! When the submitting thread is inside a traced request
//! ([`lookahead_obs::span`]), its trace scope is captured and installed
//! in every worker, so per-cell spans recorded on the pool land in the
//! submitter's request tree with the right parent.

use lookahead_obs::span;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the `LOOKAHEAD_JOBS`
/// environment variable if set, otherwise the machine's available
/// parallelism.
///
/// # Panics
///
/// Panics with a clear message if `LOOKAHEAD_JOBS` is set but is not a
/// positive integer — a misspelled knob must fail fast, not silently
/// run serial (see `parse_jobs`).
pub fn default_workers() -> usize {
    match std::env::var("LOOKAHEAD_JOBS") {
        Ok(v) => parse_jobs(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Parses a `LOOKAHEAD_JOBS` value.
///
/// # Errors
///
/// Returns a descriptive message when the value is not a positive
/// integer.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LOOKAHEAD_JOBS must be a positive integer (worker count), got {v:?}"
        )),
    }
}

/// Runs `jobs` on up to `workers` threads and returns their results in
/// submission order.
///
/// With `workers <= 1` (or fewer than two jobs) everything runs on the
/// calling thread — the explicit serial path the determinism tests
/// compare against. Work is claimed from a shared atomic index, so a
/// slow cell never holds up faster ones behind it.
///
/// # Panics
///
/// If a job panics the panic is propagated to the caller once the
/// scope unwinds (no result is silently dropped).
pub fn run_ordered<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let scope_in = span::current_scope();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            let (slots, results, next) = (&slots, &results, &next);
            let scope_in = scope_in.clone();
            s.spawn(move || {
                // Workers are fresh threads; adopt the submitter's
                // trace scope so cell spans join the request's tree.
                span::set_scope(scope_in);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let out = job();
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                }
                span::set_scope(None);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("job did not produce a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Finish in scrambled real time; order must still hold.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * 3
                }
            })
            .collect();
        let out = run_ordered(jobs, 8);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..40).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(run_ordered(mk(), 1), run_ordered(mk(), 16));
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(run_ordered(none, 4).is_empty());
        assert_eq!(run_ordered(vec![|| 7u32], 4), vec![7]);
    }

    #[test]
    fn trace_scope_propagates_to_pool_workers() {
        let ctx = lookahead_obs::TraceContext::new("req-pool");
        let root = ctx.alloc_id();
        let prev = span::set_scope(Some(span::TraceScope::new(ctx.clone(), root)));
        let jobs: Vec<_> = (0..12)
            .map(|i| move || span::record_current("cell", || i * 2))
            .collect();
        let out = run_ordered(jobs, 4);
        span::set_scope(prev);
        assert_eq!(out, (0..12).map(|i| i * 2).collect::<Vec<_>>());
        let spans = ctx.spans();
        assert_eq!(spans.len(), 12, "one span per cell");
        assert!(spans.iter().all(|s| s.name == "cell" && s.parent == root));
        // The caller's own thread is back to untraced.
        assert!(span::current_scope().is_none());
    }

    #[test]
    fn parse_jobs_validates() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 1 "), Ok(1));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("four").is_err());
        assert!(parse_jobs("").is_err());
        assert!(parse_jobs("-2").is_err());
    }
}
