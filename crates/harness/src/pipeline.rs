//! Steps 1–3 of the paper's methodology: workload → multiprocessor
//! simulation → representative annotated trace.

use lookahead_core::{ExecutionResult, ProcessorModel};
use lookahead_isa::Program;
use lookahead_multiproc::{SimConfig, SimError, SimOutcome, Simulator};
use lookahead_obs::span;
use lookahead_trace::storage::{ArchiveInfo, ChunkReader};
use lookahead_trace::{collect_source, Breakdown, StreamError, Trace, TraceSource};
use lookahead_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable forcing every archive-backed run to
/// materialize its traces instead of streaming them from disk (the
/// `lookahead bench memory` baseline mode; also an escape hatch if the
/// streamed path ever misbehaves in the field).
pub const FORCE_MATERIALIZE_ENV: &str = "LOOKAHEAD_FORCE_MATERIALIZE";

/// Whether [`FORCE_MATERIALIZE_ENV`] is set to `1`.
pub fn force_materialize() -> bool {
    std::env::var_os(FORCE_MATERIALIZE_ENV).is_some_and(|v| v == "1")
}

/// Errors from trace generation.
#[derive(Debug)]
pub enum PipelineError {
    /// The multiprocessor simulation failed (deadlock, cycle limit,
    /// interpreter fault).
    Sim(SimError),
    /// The workload's self-check rejected the final memory — the
    /// simulation stack miscomputed the application.
    Verification { app: String, reason: String },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Sim(e) => write!(f, "multiprocessor simulation failed: {e}"),
            PipelineError::Verification { app, reason } => {
                write!(f, "{app} result verification failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Sim(e) => Some(e),
            PipelineError::Verification { .. } => None,
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> PipelineError {
        PipelineError::Sim(e)
    }
}

/// Where an [`AppRun`]'s traces live.
///
/// `Memory` is the classic fully-materialized form (direct generation,
/// or a cache hit under [`FORCE_MATERIALIZE_ENV`]). `Archive` backs the
/// run with a validated on-disk v3 archive: re-timing streams chunks
/// from the file, and a trace is only materialized when a consumer
/// genuinely needs random access (trace statistics, listings, the
/// multiple-contexts model) — lazily, at most once per processor.
#[derive(Debug)]
enum TraceStore {
    Memory { traces: Vec<Arc<Trace>> },
    // Boxed: the archive bookkeeping dwarfs the Memory variant.
    Archive(Box<ArchiveStore>),
}

#[derive(Debug)]
struct ArchiveStore {
    path: PathBuf,
    info: ArchiveInfo,
    /// One OS handle shared by every streamed reader over this archive
    /// (previously each cell reopened the file); readers carry their
    /// own offsets, so concurrent cells never fight over a cursor.
    file: OnceLock<Arc<fs::File>>,
    /// Lazily materialized representative trace.
    rep: OnceLock<Arc<Trace>>,
    /// Lazily materialized non-representative traces.
    others: Mutex<BTreeMap<usize, Arc<Trace>>>,
}

impl ArchiveStore {
    /// The shared archive handle, opened once per run instead of once
    /// per cell.
    fn shared_file(&self) -> Result<Arc<fs::File>, StreamError> {
        if let Some(f) = self.file.get() {
            return Ok(Arc::clone(f));
        }
        let f = Arc::new(fs::File::open(&self.path).map_err(StreamError::Io)?);
        Ok(Arc::clone(self.file.get_or_init(|| f)))
    }

    /// A chunk reader over processor `proc`, on the shared handle.
    fn open_reader(
        &self,
        proc: usize,
    ) -> Result<ChunkReader<BufReader<SharedFileReader>>, StreamError> {
        let reader = SharedFileReader {
            file: self.shared_file()?,
            pos: 0,
        };
        ChunkReader::new(BufReader::new(reader), &self.info, proc).map_err(StreamError::Decode)
    }
}

/// A positioned view over a shared archive file: each reader tracks its
/// own offset and reads with `read_at`, so any number of concurrent
/// readers share one OS handle without interfering.
#[derive(Debug)]
struct SharedFileReader {
    file: Arc<fs::File>,
    pos: u64,
}

impl io::Read for SharedFileReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        let n = self.file.read_at(buf, self.pos)?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl io::Seek for SharedFileReader {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        let new = match pos {
            io::SeekFrom::Start(n) => Some(n),
            io::SeekFrom::Current(d) => self.pos.checked_add_signed(d),
            io::SeekFrom::End(d) => self.file.metadata()?.len().checked_add_signed(d),
        };
        self.pos = new.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "seek before archive start")
        })?;
        Ok(self.pos)
    }
}

/// A generated run of one application: the program, the representative
/// processor's trace, and the multiprocessor-level statistics the
/// paper's Tables 1–2 report.
#[derive(Debug)]
pub struct AppRun {
    /// Application name ("MP3D", "LU", ...).
    pub app: String,
    /// The SPMD program (needed by the processor models for register
    /// dependences).
    pub program: Program,
    /// Which processor the representative trace belongs to.
    pub proc: usize,
    /// The generating run's per-processor breakdowns (diagnostic).
    pub mp_breakdowns: Vec<Breakdown>,
    /// Total multiprocessor cycles of the generating run.
    pub mp_cycles: u64,
    store: TraceStore,
}

impl AppRun {
    /// Generates a verified trace for `workload` under `config`,
    /// materialized in memory.
    ///
    /// The representative processor is the one that executed the most
    /// instructions (the paper picks "one of the processes"; the
    /// busiest one avoids an unluckily idle pick).
    ///
    /// # Errors
    ///
    /// Fails if the simulation fails or the workload's self-check
    /// rejects the result.
    pub fn generate(workload: &dyn Workload, config: &SimConfig) -> Result<AppRun, PipelineError> {
        let built = workload.build(config.num_procs);
        let program = built.program.clone();
        let sim = Simulator::new(built.program, built.image, *config)?;
        let outcome: SimOutcome = sim.run()?;
        (built.verify)(&outcome.final_memory).map_err(|reason| PipelineError::Verification {
            app: workload.name().to_string(),
            reason,
        })?;
        let proc = outcome.busiest_proc();
        let traces: Vec<Arc<Trace>> = outcome.traces.into_iter().map(Arc::new).collect();
        Ok(AppRun {
            app: workload.name().to_string(),
            program,
            proc,
            mp_breakdowns: outcome.breakdowns,
            mp_cycles: outcome.total_cycles,
            store: TraceStore::Memory { traces },
        })
    }

    /// A run materialized in memory (cache hits under
    /// [`FORCE_MATERIALIZE_ENV`], and tests).
    pub fn from_traces(
        app: String,
        program: Program,
        proc: usize,
        traces: Vec<Arc<Trace>>,
        mp_breakdowns: Vec<Breakdown>,
        mp_cycles: u64,
    ) -> AppRun {
        AppRun {
            app,
            program,
            proc,
            mp_breakdowns,
            mp_cycles,
            store: TraceStore::Memory { traces },
        }
    }

    /// A run backed by a validated v3 archive at `path`. Traces stream
    /// from the file on demand; nothing is materialized up front.
    pub fn from_archive(path: PathBuf, info: ArchiveInfo) -> AppRun {
        AppRun {
            app: info.app.clone(),
            program: info.program.clone(),
            proc: info.proc as usize,
            mp_breakdowns: info.breakdowns.clone(),
            mp_cycles: info.mp_cycles,
            store: TraceStore::Archive(Box::new(ArchiveStore {
                path,
                info,
                file: OnceLock::new(),
                rep: OnceLock::new(),
                others: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Number of processors whose traces this run carries.
    pub fn num_procs(&self) -> usize {
        match &self.store {
            TraceStore::Memory { traces } => traces.len(),
            TraceStore::Archive(a) => a.info.num_procs(),
        }
    }

    /// Length of the representative trace, without materializing it
    /// (archives know it from their trailer).
    pub fn trace_len(&self) -> usize {
        match &self.store {
            TraceStore::Memory { traces } => traces[self.proc].len(),
            TraceStore::Archive(a) => a.info.totals[self.proc].entries as usize,
        }
    }

    /// The representative processor's annotated trace, materializing
    /// it from the backing archive on first access.
    ///
    /// # Panics
    ///
    /// Panics if the backing archive (validated at load time) can no
    /// longer be read — the file was deleted or damaged mid-process.
    pub fn trace(&self) -> &Trace {
        match &self.store {
            TraceStore::Memory { traces } => &traces[self.proc],
            TraceStore::Archive(a) => a.rep.get_or_init(|| {
                Arc::new(
                    read_proc_trace(&a.path, &a.info, self.proc)
                        .unwrap_or_else(|e| panic!("{}", archive_vanished(&self.app, &a.path, &e))),
                )
            }),
        }
    }

    /// Processor `p`'s trace (used by the multiple-contexts model,
    /// which interleaves several streams on one pipeline),
    /// materializing it on first access.
    ///
    /// # Panics
    ///
    /// As [`trace`](Self::trace); also panics if `p` is out of range.
    pub fn trace_for(&self, p: usize) -> Arc<Trace> {
        match &self.store {
            TraceStore::Memory { traces } => Arc::clone(&traces[p]),
            TraceStore::Archive(a) => {
                assert!(p < a.info.num_procs(), "processor {p} out of range");
                if p == self.proc {
                    self.trace();
                    return Arc::clone(a.rep.get().expect("just materialized"));
                }
                Arc::clone(
                    a.others
                        .lock()
                        .expect("trace cache lock")
                        .entry(p)
                        .or_insert_with(|| {
                            Arc::new(read_proc_trace(&a.path, &a.info, p).unwrap_or_else(|e| {
                                panic!("{}", archive_vanished(&self.app, &a.path, &e))
                            }))
                        }),
                )
            }
        }
    }

    /// Every processor's trace, materializing as needed.
    pub fn all_traces(&self) -> Vec<Arc<Trace>> {
        (0..self.num_procs()).map(|p| self.trace_for(p)).collect()
    }

    /// A streaming source over the representative trace, when the run
    /// is archive-backed and streaming is not disabled.
    fn open_source(&self) -> Option<Result<impl TraceSource, StreamError>> {
        match &self.store {
            TraceStore::Memory { .. } => None,
            TraceStore::Archive(a) => {
                // Once the trace is materialized anyway, slicing it is
                // strictly cheaper than re-reading the file.
                if a.rep.get().is_some() || force_materialize() {
                    return None;
                }
                Some(a.open_reader(self.proc))
            }
        }
    }

    /// Whether the gang re-timing path can stream this run: it must be
    /// archive-backed with streaming neither disabled nor already
    /// bypassed by a materialized representative trace.
    pub fn gang_ready(&self) -> bool {
        match &self.store {
            TraceStore::Memory { .. } => false,
            TraceStore::Archive(a) => a.rep.get().is_none() && !force_materialize(),
        }
    }

    /// A sendable streaming source over the representative trace for
    /// the gang re-timing path, or `None` when the run cannot (or
    /// should not) stream — callers fall back to per-cell re-timing.
    pub fn gang_source(&self) -> Option<Box<dyn TraceSource + Send>> {
        if !self.gang_ready() {
            return None;
        }
        let TraceStore::Archive(a) = &self.store else {
            return None;
        };
        match a.open_reader(self.proc) {
            Ok(r) => Some(Box::new(r)),
            Err(e) => {
                eprintln!(
                    "  warning: cannot stream {} trace for gang re-timing ({e}); \
                     falling back to per-cell re-timing",
                    self.app
                );
                None
            }
        }
    }

    /// Re-times the representative trace under `model`, streaming
    /// chunks straight from the backing archive when possible (memory
    /// bounded by the model's live window, not the trace length) and
    /// falling back to the materialized trace otherwise.
    ///
    /// Streamed and materialized runs are equivalent by construction
    /// (every engine's `run_source` contract, enforced by the
    /// `streamed_equivalence` suite), so callers never observe which
    /// path served them.
    pub fn retime(&self, model: &dyn ProcessorModel) -> ExecutionResult {
        span::record_current("retime.cell", || {
            if let Some(source) = self.open_source() {
                match source {
                    Ok(mut source) => match model.run_source(&self.program, &mut source) {
                        Ok(result) => return result,
                        Err(e) => eprintln!(
                            "  warning: streamed re-timing of {} failed ({e}); \
                             falling back to the materialized trace",
                            self.app
                        ),
                    },
                    Err(e) => eprintln!(
                        "  warning: cannot stream {} trace ({e}); \
                         falling back to the materialized trace",
                        self.app
                    ),
                }
            }
            model.run(&self.program, self.trace())
        })
    }
}

fn archive_vanished(app: &str, path: &Path, e: &StreamError) -> String {
    format!(
        "the {app} trace archive at {} was validated at load time but can \
         no longer be read ({e}); it was deleted or damaged mid-process",
        path.display()
    )
}

fn open_reader(
    path: &Path,
    info: &ArchiveInfo,
    proc: usize,
) -> Result<ChunkReader<BufReader<fs::File>>, StreamError> {
    let file = fs::File::open(path).map_err(StreamError::Io)?;
    ChunkReader::new(BufReader::new(file), info, proc).map_err(StreamError::Decode)
}

fn read_proc_trace(path: &Path, info: &ArchiveInfo, proc: usize) -> Result<Trace, StreamError> {
    let mut reader = open_reader(path, info, proc)?;
    collect_source(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_core::base::Base;
    use lookahead_workloads::lu::Lu;

    #[test]
    fn generate_produces_verified_trace() {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        let run = AppRun::generate(&Lu { n: 12 }, &config).expect("pipeline succeeds");
        assert_eq!(run.app, "LU");
        assert!(!run.trace().is_empty());
        assert_eq!(run.trace_len(), run.trace().len());
        assert_eq!(run.num_procs(), 4);
        assert!(run.mp_cycles > 0);
        assert_eq!(run.mp_breakdowns.len(), 4);
        assert!(run.proc < 4);
        // Memory-backed runs retime on the materialized path.
        let direct = Base.run(&run.program, run.trace());
        assert_eq!(run.retime(&Base), direct);
    }
}
