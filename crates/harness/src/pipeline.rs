//! Steps 1–3 of the paper's methodology: workload → multiprocessor
//! simulation → representative annotated trace.

use lookahead_isa::Program;
use lookahead_multiproc::{SimConfig, SimError, SimOutcome, Simulator};
use lookahead_trace::{Breakdown, Trace};
use lookahead_workloads::Workload;
use std::fmt;
use std::sync::Arc;

/// Errors from trace generation.
#[derive(Debug)]
pub enum PipelineError {
    /// The multiprocessor simulation failed (deadlock, cycle limit,
    /// interpreter fault).
    Sim(SimError),
    /// The workload's self-check rejected the final memory — the
    /// simulation stack miscomputed the application.
    Verification { app: String, reason: String },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Sim(e) => write!(f, "multiprocessor simulation failed: {e}"),
            PipelineError::Verification { app, reason } => {
                write!(f, "{app} result verification failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Sim(e) => Some(e),
            PipelineError::Verification { .. } => None,
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> PipelineError {
        PipelineError::Sim(e)
    }
}

/// A generated run of one application: the program, the representative
/// processor's trace, and the multiprocessor-level statistics the
/// paper's Tables 1–2 report.
#[derive(Debug)]
pub struct AppRun {
    /// Application name ("MP3D", "LU", ...).
    pub app: String,
    /// The SPMD program (needed by the processor models for register
    /// dependences).
    pub program: Program,
    /// The representative processor's annotated trace. Shared via
    /// `Arc` so cache hits and `SharedRuns` clones never deep-copy the
    /// (often multi-megabyte) entry vector; `&run.trace` still derefs
    /// to `&Trace` everywhere.
    pub trace: Arc<Trace>,
    /// Which processor the trace belongs to.
    pub proc: usize,
    /// Every processor's trace from the same run (used by the
    /// multiple-contexts comparison, which interleaves several streams
    /// on one pipeline). `all_traces[proc]` shares its allocation with
    /// `trace`.
    pub all_traces: Vec<Arc<Trace>>,
    /// The generating run's per-processor breakdowns (diagnostic).
    pub mp_breakdowns: Vec<Breakdown>,
    /// Total multiprocessor cycles of the generating run.
    pub mp_cycles: u64,
}

impl AppRun {
    /// Generates a verified trace for `workload` under `config`.
    ///
    /// The representative processor is the one that executed the most
    /// instructions (the paper picks "one of the processes"; the
    /// busiest one avoids an unluckily idle pick).
    ///
    /// # Errors
    ///
    /// Fails if the simulation fails or the workload's self-check
    /// rejects the result.
    pub fn generate(workload: &dyn Workload, config: &SimConfig) -> Result<AppRun, PipelineError> {
        let built = workload.build(config.num_procs);
        let program = built.program.clone();
        let sim = Simulator::new(built.program, built.image, *config)?;
        let outcome: SimOutcome = sim.run()?;
        (built.verify)(&outcome.final_memory).map_err(|reason| PipelineError::Verification {
            app: workload.name().to_string(),
            reason,
        })?;
        let proc = outcome.busiest_proc();
        let all_traces: Vec<Arc<Trace>> = outcome.traces.into_iter().map(Arc::new).collect();
        Ok(AppRun {
            app: workload.name().to_string(),
            program,
            trace: Arc::clone(&all_traces[proc]),
            proc,
            all_traces,
            mp_breakdowns: outcome.breakdowns,
            mp_cycles: outcome.total_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_workloads::lu::Lu;

    #[test]
    fn generate_produces_verified_trace() {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        let run = AppRun::generate(&Lu { n: 12 }, &config).expect("pipeline succeeds");
        assert_eq!(run.app, "LU");
        assert!(!run.trace.is_empty());
        assert!(run.mp_cycles > 0);
        assert_eq!(run.mp_breakdowns.len(), 4);
        assert!(run.proc < 4);
    }
}
