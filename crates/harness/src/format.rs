//! Text rendering of tables and stacked-bar figures.

use crate::experiments::Figure3Column;
use lookahead_trace::Breakdown;

/// Renders a simple aligned text table. The first row is the header.
///
/// # Example
///
/// ```
/// use lookahead_harness::format::render_table;
/// let t = render_table(&[
///     vec!["app".into(), "busy".into()],
///     vec!["LU".into(), "12345".into()],
/// ]);
/// assert!(t.contains("LU"));
/// ```
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Right-align numbers, left-align the first column.
            if i == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders one breakdown as a horizontal stacked bar of width
/// `scale_width` characters at `normalized`% of the baseline:
/// `#` busy, `s` sync, `r` read, `w` write.
pub fn render_bar(b: &Breakdown, normalized: f64, scale_width: usize) -> String {
    let total = b.total().max(1) as f64;
    let bar_len = (normalized / 100.0 * scale_width as f64).round() as usize;
    let mut lens = [
        (b.busy as f64 / total * bar_len as f64).round() as usize,
        (b.sync as f64 / total * bar_len as f64).round() as usize,
        (b.read as f64 / total * bar_len as f64).round() as usize,
        (b.write as f64 / total * bar_len as f64).round() as usize,
    ];
    // Fix rounding drift on the largest section.
    let sum: usize = lens.iter().sum();
    if sum != bar_len {
        let max = lens
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        lens[max] = (lens[max] + bar_len).saturating_sub(sum);
    }
    let mut bar = String::new();
    for (len, ch) in lens.iter().zip(['#', 's', 'r', 'w']) {
        bar.extend(std::iter::repeat_n(ch, *len));
    }
    bar
}

/// Renders a whole figure (list of columns) as labelled stacked bars,
/// like the paper's Figure 3 turned sideways.
pub fn render_figure(title: &str, cols: &[Figure3Column]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("  legend: # busy   s sync   r read-stall   w write-stall\n");
    let label_w = cols
        .iter()
        .map(|c| c.model.len() + c.label.len() + 1)
        .max()
        .unwrap_or(8)
        .max(8);
    let mut last_model = String::new();
    for c in cols {
        if c.model != last_model {
            last_model = c.model.clone();
            if !c.model.is_empty() {
                out.push_str(&format!("  --- {} ---\n", c.model));
            }
        }
        let label = if c.model.is_empty() {
            c.label.clone()
        } else {
            format!("{} {}", c.model, c.label)
        };
        out.push_str(&format!(
            "  {label:<label_w$} |{:<60}| {:6.1}  (busy {} sync {} read {} write {})\n",
            render_bar(&c.breakdown, c.normalized, 60),
            c.normalized,
            c.breakdown.busy,
            c.breakdown.sync,
            c.breakdown.read,
            c.breakdown.write,
        ));
    }
    out
}

/// Formats a count with its per-thousand-instruction rate, like the
/// paper's Table 1 cells.
pub fn count_with_rate(count: u64, busy: u64) -> String {
    let rate = if busy == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / busy as f64
    };
    format!("{count} ({rate:.1})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(&[
            vec!["h1".into(), "header2".into()],
            vec!["a".into(), "1".into()],
            vec!["bb".into(), "22".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("--"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1"));
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn bar_length_tracks_normalization() {
        let b = Breakdown {
            busy: 50,
            sync: 0,
            read: 50,
            write: 0,
        };
        let full = render_bar(&b, 100.0, 60);
        let half = render_bar(&b, 50.0, 60);
        assert_eq!(full.len(), 60);
        assert_eq!(half.len(), 30);
        assert!(full.contains('#') && full.contains('r'));
        assert!(!full.contains('s'));
    }

    #[test]
    fn figure_includes_groups_and_legend() {
        let cols = vec![
            Figure3Column {
                label: "BASE".into(),
                model: "".into(),
                breakdown: Breakdown {
                    busy: 10,
                    sync: 0,
                    read: 10,
                    write: 0,
                },
                normalized: 100.0,
            },
            Figure3Column {
                label: "DS.64".into(),
                model: "RC".into(),
                breakdown: Breakdown {
                    busy: 10,
                    sync: 0,
                    read: 2,
                    write: 0,
                },
                normalized: 60.0,
            },
        ];
        let f = render_figure("LU", &cols);
        assert!(f.contains("--- RC ---"));
        assert!(f.contains("legend"));
        assert!(f.contains("60.0"));
    }

    #[test]
    fn count_with_rate_formats() {
        assert_eq!(count_with_rate(500, 1000), "500 (500.0)");
        assert_eq!(count_with_rate(5, 0), "5 (0.0)");
    }
}
