//! Content-addressed on-disk cache of generated application runs.
//!
//! Trace generation is the expensive half of the pipeline: a full
//! 16-processor execution-driven simulation per application. The
//! re-timing half consumes the same trace dozens of times. This cache
//! makes generation pay-once: an [`AppRun`] is stored as a version-3
//! chunked `LKTR` archive ([`lookahead_trace::storage`]) under a file
//! name derived from a **fingerprint of everything that influences the
//! trace** — workload name, size tier, the full [`SimConfig`], and the
//! archive format version.
//!
//! The chunked layout makes the cache *streaming* in both directions:
//!
//! * on a **miss**, the simulator's per-processor chunks are written
//!   to the archive as they are produced ([`Simulator::run_with_sink`]
//!   into an [`ArchiveWriter`]), so generation never materializes the
//!   trace set in memory;
//! * on a **hit**, every chunk record is checksum-verified in one
//!   bounded pass ([`validate_archive_chunks`]) and the run is handed
//!   back *archive-backed*: re-timing streams chunks from disk
//!   ([`AppRun::retime`]), and traces materialize lazily only for
//!   consumers that need random access.
//!
//! Safety properties, in order of importance:
//!
//! * a key mismatch, checksum failure or decode error **falls back to
//!   regeneration, never to a wrong answer** — the canonical key
//!   string is stored inside the archive and compared on load, so even
//!   a hash collision or a renamed file cannot smuggle a stale trace in;
//! * corrupt files (including leftover v1/v2 archives) are evicted on
//!   sight so the next run is a clean miss;
//! * stores write to a temporary file and rename into place, so a
//!   crashed or concurrent writer never leaves a torn archive behind —
//!   including the streamed-generation path, whose partial archive
//!   only becomes visible after verification succeeds.

use crate::pipeline::{force_materialize, AppRun, PipelineError};
use lookahead_multiproc::{SimConfig, SimError, Simulator};
use lookahead_obs::span;
use lookahead_trace::storage::{
    read_archive_info, read_archive_v3, validate_archive_chunks, ArchiveWriter, TraceArchive,
    ARCHIVE_VERSION,
};
use lookahead_trace::{fnv1a, DecodeError, SliceSource, TraceSink, TraceSource, DEFAULT_CHUNK_LEN};
use lookahead_workloads::Workload;
use std::fmt;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builds the canonical cache-key string for one generated run.
///
/// Every field of [`SimConfig`] is spelled into the key (the
/// destructuring below fails to compile when a field is added, forcing
/// this function to be updated), together with the workload name, the
/// size tier and [`ARCHIVE_VERSION`]. Two runs re-time identically if
/// and only if their keys match.
pub fn cache_key(app: &str, tier: &str, config: &SimConfig) -> String {
    let SimConfig {
        num_procs,
        cache,
        mem,
        write_buffer_depth,
        memory_bytes,
        max_cycles,
        memory_bandwidth,
    } = *config;
    let opt = |v: Option<u64>| v.map_or("none".to_string(), |x| x.to_string());
    format!(
        "lktr-v{ARCHIVE_VERSION};app={app};tier={tier};procs={num_procs};\
         cache={}/{}/{};hit={};miss={};wb={write_buffer_depth};\
         membytes={};maxcycles={max_cycles};bw={}",
        cache.size_bytes,
        cache.line_bytes,
        cache.ways,
        mem.hit_latency,
        mem.miss_penalty,
        opt(memory_bytes),
        opt(memory_bandwidth.map(|b| b as u64)),
    )
}

/// Why a cache lookup did not produce a run.
#[derive(Debug)]
pub enum MissReason {
    /// No file exists for the key.
    Absent,
    /// The file decoded but was generated under a different key
    /// (configuration drift or a fingerprint collision).
    KeyMismatch {
        /// The key stored in the archive.
        found: String,
    },
    /// The file failed to decode or failed its checksum (this includes
    /// archives in the retired v1/v2 layouts); it has been evicted.
    Corrupt(DecodeError),
    /// The archive decoded but its sections are mutually inconsistent
    /// (e.g. representative processor out of range); evicted.
    Invalid(String),
    /// The file could not be read at the I/O level.
    Io(std::io::Error),
}

impl fmt::Display for MissReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissReason::Absent => write!(f, "not cached"),
            MissReason::KeyMismatch { found } => {
                write!(f, "cached under a different key ({found})")
            }
            MissReason::Corrupt(e) => write!(f, "corrupt cache file ({e}); evicted"),
            MissReason::Invalid(m) => write!(f, "inconsistent cache file ({m}); evicted"),
            MissReason::Io(e) => write!(f, "cache i/o error ({e})"),
        }
    }
}

/// Outcome of [`load_or_generate`].
#[derive(Debug)]
pub enum CacheOutcome {
    /// Served from disk; no multiprocessor simulation ran.
    Hit,
    /// Generated (and stored when a cache is present), with the reason
    /// the lookup missed.
    Generated(MissReason),
}

impl CacheOutcome {
    /// Whether this run was served from the cache.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// A directory of content-addressed `.lktr` archives.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Creates a handle on `dir`. The directory is created lazily on
    /// first store.
    pub fn new(dir: impl Into<PathBuf>) -> TraceCache {
        TraceCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an archive with this key lives at. The app name is kept
    /// in the file name for human inspection; the fingerprint is what
    /// addresses the content.
    pub fn path_for(&self, app: &str, key: &str) -> PathBuf {
        let safe: String = app
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir
            .join(format!("{safe}-{:016x}.lktr", fnv1a(key.as_bytes())))
    }

    /// Looks up `key`, returning the cached run or the reason there is
    /// none. Corrupt or mismatching files are evicted.
    ///
    /// Every chunk record is checksum-verified before the run is
    /// returned, so subsequent streaming from the archive cannot trip
    /// over damaged data. The run is archive-backed (traces stream
    /// from disk on demand) unless [`force_materialize`] is set.
    pub fn load(&self, app: &str, key: &str) -> Result<AppRun, MissReason> {
        let path = self.path_for(app, key);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(MissReason::Absent),
            Err(e) => return Err(MissReason::Io(e)),
        };
        let evict = |e: DecodeError| {
            let _ = fs::remove_file(&path);
            MissReason::Corrupt(e)
        };
        let mut r = BufReader::new(file);
        let info = read_archive_info(&mut r).map_err(evict)?;
        if info.key != key {
            let _ = fs::remove_file(&path);
            return Err(MissReason::KeyMismatch { found: info.key });
        }
        validate_archive_chunks(&mut r, &info).map_err(evict)?;
        if force_materialize() {
            let archive = read_archive_v3(&mut r).map_err(evict)?;
            return app_run_from_archive(archive).map_err(|m| {
                let _ = fs::remove_file(&path);
                MissReason::Invalid(m)
            });
        }
        Ok(AppRun::from_archive(path, info))
    }

    /// Stores `run` under `key`, atomically (write to a temporary file
    /// in the same directory, then rename into place). Entries are
    /// encoded chunk-by-chunk straight out of the run's shared traces;
    /// nothing is deep-copied.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the cache directory is created if
    /// missing.
    pub fn store(&self, key: &str, run: &AppRun) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(&run.app, key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let w = BufWriter::new(fs::File::create(&tmp)?);
            let mut aw = ArchiveWriter::new(w, key, &run.app, run.num_procs(), &run.program)?;
            for p in 0..run.num_procs() {
                let trace = run.trace_for(p);
                let mut src = SliceSource::with_chunk_len(&trace, DEFAULT_CHUNK_LEN);
                while let Some(chunk) = src.next_chunk().expect("slice sources cannot fail") {
                    aw.accept(p, &chunk)?;
                }
            }
            let w = aw.finish(run.proc, run.mp_cycles, &run.mp_breakdowns)?;
            w.into_inner().map_err(|e| e.into_error())?.sync_all()
        })();
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

fn app_run_from_archive(a: TraceArchive) -> Result<AppRun, String> {
    let proc = a.proc as usize;
    if proc >= a.traces.len() {
        return Err(format!(
            "representative processor {proc} out of range ({} traces)",
            a.traces.len()
        ));
    }
    if a.breakdowns.len() != a.traces.len() {
        return Err(format!(
            "{} breakdowns for {} traces",
            a.breakdowns.len(),
            a.traces.len()
        ));
    }
    Ok(AppRun::from_traces(
        a.app,
        a.program,
        proc,
        a.traces.into_iter().map(Arc::new).collect(),
        a.breakdowns,
        a.mp_cycles,
    ))
}

/// How streamed generation failed, deciding the recovery strategy.
enum StreamedGenError {
    /// The simulation or verification itself failed — regeneration
    /// would fail identically, so this surfaces to the caller.
    Pipeline(PipelineError),
    /// Writing the archive failed (disk full, permissions): the caller
    /// falls back to in-memory generation, because the simulation
    /// could still succeed.
    Io(std::io::Error),
}

/// Generates `workload` with the simulator's chunks streamed straight
/// into the cache archive, so the full trace set never materializes in
/// memory. The archive only becomes visible (rename) after the
/// workload's self-check passes; the returned run is archive-backed.
fn generate_streamed(
    cache: &TraceCache,
    key: &str,
    workload: &dyn Workload,
    config: &SimConfig,
) -> Result<AppRun, StreamedGenError> {
    use StreamedGenError::{Io, Pipeline};
    fs::create_dir_all(cache.dir()).map_err(Io)?;
    let path = cache.path_for(workload.name(), key);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let built = workload.build(config.num_procs);
    let program = built.program.clone();
    let sim = Simulator::new(built.program, built.image, *config)
        .map_err(|e| Pipeline(PipelineError::Sim(e)))?;
    let cleanup = |e: StreamedGenError| {
        let _ = fs::remove_file(&tmp);
        e
    };
    let w = BufWriter::new(fs::File::create(&tmp).map_err(Io)?);
    let mut writer = ArchiveWriter::new(w, key, workload.name(), config.num_procs, &program)
        .map_err(|e| cleanup(Io(e)))?;
    let outcome = sim.run_with_sink(&mut writer).map_err(|e| {
        cleanup(match e {
            SimError::Sink(io) => Io(io),
            other => Pipeline(PipelineError::Sim(other)),
        })
    })?;
    (built.verify)(&outcome.final_memory).map_err(|reason| {
        cleanup(Pipeline(PipelineError::Verification {
            app: workload.name().to_string(),
            reason,
        }))
    })?;
    let proc = outcome.busiest_proc();
    let io_step = span::record_current("archive.finish", || {
        let w = writer.finish(proc, outcome.total_cycles, &outcome.breakdowns)?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        fs::rename(&tmp, &path)
    });
    io_step.map_err(|e| cleanup(Io(e)))?;
    // Re-read the header/trailer (cheap: no chunk scan) so the run is
    // backed by exactly what landed on disk.
    let reopen = (|| {
        let file = fs::File::open(&path)?;
        read_archive_info(BufReader::new(file))
            .map_err(|e| std::io::Error::other(format!("re-reading just-written archive: {e}")))
    })();
    let info = reopen.map_err(Io)?;
    if force_materialize() {
        return match cache.load(workload.name(), key) {
            Ok(run) => Ok(run),
            Err(m) => Err(Io(std::io::Error::other(format!(
                "re-loading just-written archive: {m}"
            )))),
        };
    }
    Ok(AppRun::from_archive(path, info))
}

/// Serves `workload` under `config` from the cache when possible,
/// generating on any miss. With `cache` = `None` this is plain
/// in-memory generation.
///
/// With a cache present, generation *streams*: simulator chunks are
/// written to the archive as they are produced and the returned run is
/// archive-backed, so peak memory is bounded by the simulator state
/// rather than the trace set. If the archive cannot be written (disk
/// full), generation falls back to the in-memory path with a warning —
/// caching is an optimization, never a correctness dependency.
///
/// # Errors
///
/// Propagates generation failures ([`PipelineError`]); cache problems
/// never surface as errors.
pub fn load_or_generate(
    cache: Option<&TraceCache>,
    workload: &dyn Workload,
    tier: &str,
    config: &SimConfig,
) -> Result<(AppRun, CacheOutcome), PipelineError> {
    let key = cache_key(workload.name(), tier, config);
    let miss = match cache {
        Some(c) => match span::record_current("cache.lookup", || c.load(workload.name(), &key)) {
            Ok(run) => return Ok((run, CacheOutcome::Hit)),
            Err(reason) => reason,
        },
        None => MissReason::Absent,
    };
    if let Some(c) = cache {
        match span::record_current("generate", || generate_streamed(c, &key, workload, config)) {
            Ok(run) => return Ok((run, CacheOutcome::Generated(miss))),
            Err(StreamedGenError::Pipeline(e)) => return Err(e),
            Err(StreamedGenError::Io(e)) => eprintln!(
                "  warning: failed to stream {} trace into {}: {e}; \
                 falling back to in-memory generation",
                workload.name(),
                c.dir().display()
            ),
        }
    }
    let run = span::record_current("generate", || AppRun::generate(workload, config))?;
    if let Some(c) = cache {
        if let Err(e) = span::record_current("archive.store", || c.store(&key, &run)) {
            eprintln!(
                "  warning: failed to cache {} trace in {}: {e}",
                run.app,
                c.dir().display()
            );
        }
    }
    Ok((run, CacheOutcome::Generated(miss)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_memsys::MemoryParams;

    #[test]
    fn key_spells_out_configuration() {
        let key = cache_key("LU", "small", &SimConfig::default());
        assert!(key.contains("app=LU"));
        assert!(key.contains("tier=small"));
        assert!(key.contains("procs=16"));
        assert!(key.contains("miss=50"));
        assert!(key.starts_with(&format!("lktr-v{ARCHIVE_VERSION}")));
    }

    #[test]
    fn distinct_configurations_get_distinct_keys() {
        let base = SimConfig::default();
        let keys = [
            cache_key("LU", "default", &base),
            cache_key("LU", "small", &base),
            cache_key("MP3D", "default", &base),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    num_procs: 8,
                    ..base
                },
            ),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    mem: MemoryParams::with_miss_penalty(100),
                    ..base
                },
            ),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    memory_bandwidth: Some(4),
                    ..base
                },
            ),
        ];
        let unique: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{keys:#?}");
    }
}
