//! Content-addressed on-disk cache of generated application runs.
//!
//! Trace generation is the expensive half of the pipeline: a full
//! 16-processor execution-driven simulation per application. The
//! re-timing half consumes the same trace dozens of times. This cache
//! makes generation pay-once: an [`AppRun`] is stored as a version-2
//! `LKTR` archive ([`lookahead_trace::storage`]) under a file name
//! derived from a **fingerprint of everything that influences the
//! trace** — workload name, size tier, the full [`SimConfig`], and the
//! archive format version.
//!
//! Safety properties, in order of importance:
//!
//! * a key mismatch, checksum failure or decode error **falls back to
//!   regeneration, never to a wrong answer** — the canonical key
//!   string is stored inside the archive and compared on load, so even
//!   a hash collision or a renamed file cannot smuggle a stale trace in;
//! * corrupt files are evicted on sight so the next run is a clean miss;
//! * stores write to a temporary file and rename into place, so a
//!   crashed or concurrent writer never leaves a torn archive behind.

use crate::pipeline::{AppRun, PipelineError};
use lookahead_multiproc::SimConfig;
use lookahead_trace::storage::{read_archive, write_archive, TraceArchive, ARCHIVE_VERSION};
use lookahead_trace::{fnv1a, DecodeError};
use lookahead_workloads::Workload;
use std::fmt;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Builds the canonical cache-key string for one generated run.
///
/// Every field of [`SimConfig`] is spelled into the key (the
/// destructuring below fails to compile when a field is added, forcing
/// this function to be updated), together with the workload name, the
/// size tier and [`ARCHIVE_VERSION`]. Two runs re-time identically if
/// and only if their keys match.
pub fn cache_key(app: &str, tier: &str, config: &SimConfig) -> String {
    let SimConfig {
        num_procs,
        cache,
        mem,
        write_buffer_depth,
        memory_bytes,
        max_cycles,
        memory_bandwidth,
    } = *config;
    let opt = |v: Option<u64>| v.map_or("none".to_string(), |x| x.to_string());
    format!(
        "lktr-v{ARCHIVE_VERSION};app={app};tier={tier};procs={num_procs};\
         cache={}/{}/{};hit={};miss={};wb={write_buffer_depth};\
         membytes={};maxcycles={max_cycles};bw={}",
        cache.size_bytes,
        cache.line_bytes,
        cache.ways,
        mem.hit_latency,
        mem.miss_penalty,
        opt(memory_bytes),
        opt(memory_bandwidth.map(|b| b as u64)),
    )
}

/// Why a cache lookup did not produce a run.
#[derive(Debug)]
pub enum MissReason {
    /// No file exists for the key.
    Absent,
    /// The file decoded but was generated under a different key
    /// (configuration drift or a fingerprint collision).
    KeyMismatch {
        /// The key stored in the archive.
        found: String,
    },
    /// The file failed to decode or failed its checksum; it has been
    /// evicted.
    Corrupt(DecodeError),
    /// The archive decoded but its sections are mutually inconsistent
    /// (e.g. representative processor out of range); evicted.
    Invalid(String),
    /// The file could not be read at the I/O level.
    Io(std::io::Error),
}

impl fmt::Display for MissReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissReason::Absent => write!(f, "not cached"),
            MissReason::KeyMismatch { found } => {
                write!(f, "cached under a different key ({found})")
            }
            MissReason::Corrupt(e) => write!(f, "corrupt cache file ({e}); evicted"),
            MissReason::Invalid(m) => write!(f, "inconsistent cache file ({m}); evicted"),
            MissReason::Io(e) => write!(f, "cache i/o error ({e})"),
        }
    }
}

/// Outcome of [`load_or_generate`].
#[derive(Debug)]
pub enum CacheOutcome {
    /// Served from disk; no multiprocessor simulation ran.
    Hit,
    /// Generated (and stored when a cache is present), with the reason
    /// the lookup missed.
    Generated(MissReason),
}

impl CacheOutcome {
    /// Whether this run was served from the cache.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// A directory of content-addressed `.lktr` archives.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Creates a handle on `dir`. The directory is created lazily on
    /// first store.
    pub fn new(dir: impl Into<PathBuf>) -> TraceCache {
        TraceCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an archive with this key lives at. The app name is kept
    /// in the file name for human inspection; the fingerprint is what
    /// addresses the content.
    pub fn path_for(&self, app: &str, key: &str) -> PathBuf {
        let safe: String = app
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir
            .join(format!("{safe}-{:016x}.lktr", fnv1a(key.as_bytes())))
    }

    /// Looks up `key`, returning the cached run or the reason there is
    /// none. Corrupt or mismatching files are evicted.
    pub fn load(&self, app: &str, key: &str) -> Result<AppRun, MissReason> {
        let path = self.path_for(app, key);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(MissReason::Absent),
            Err(e) => return Err(MissReason::Io(e)),
        };
        let archive = match read_archive(BufReader::new(file)) {
            Ok(a) => a,
            Err(e) => {
                let _ = fs::remove_file(&path);
                return Err(MissReason::Corrupt(e));
            }
        };
        if archive.key != key {
            let _ = fs::remove_file(&path);
            return Err(MissReason::KeyMismatch { found: archive.key });
        }
        app_run_from_archive(archive).map_err(|m| {
            let _ = fs::remove_file(&path);
            MissReason::Invalid(m)
        })
    }

    /// Stores `run` under `key`, atomically (write to a temporary file
    /// in the same directory, then rename into place).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the cache directory is created if
    /// missing.
    pub fn store(&self, key: &str, run: &AppRun) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(&run.app, key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut w = BufWriter::new(fs::File::create(&tmp)?);
        let result = write_archive(&mut w, &archive_from_app_run(key, run))
            .and_then(|()| w.into_inner().map_err(|e| e.into_error())?.sync_all());
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

fn archive_from_app_run(key: &str, run: &AppRun) -> TraceArchive {
    TraceArchive {
        key: key.to_string(),
        app: run.app.clone(),
        proc: run.proc as u32,
        mp_cycles: run.mp_cycles,
        breakdowns: run.mp_breakdowns.clone(),
        program: run.program.clone(),
        // The archive owns its traces; deep-copy out of the shared
        // `Arc`s. Stores happen once per generation (cold path), so
        // this is the only place a trace is still cloned wholesale.
        traces: run.all_traces.iter().map(|t| (**t).clone()).collect(),
    }
}

fn app_run_from_archive(a: TraceArchive) -> Result<AppRun, String> {
    let proc = a.proc as usize;
    if proc >= a.traces.len() {
        return Err(format!(
            "representative processor {proc} out of range ({} traces)",
            a.traces.len()
        ));
    }
    if a.breakdowns.len() != a.traces.len() {
        return Err(format!(
            "{} breakdowns for {} traces",
            a.breakdowns.len(),
            a.traces.len()
        ));
    }
    let all_traces: Vec<std::sync::Arc<_>> =
        a.traces.into_iter().map(std::sync::Arc::new).collect();
    Ok(AppRun {
        app: a.app,
        program: a.program,
        trace: std::sync::Arc::clone(&all_traces[proc]),
        proc,
        all_traces,
        mp_breakdowns: a.breakdowns,
        mp_cycles: a.mp_cycles,
    })
}

/// Serves `workload` under `config` from the cache when possible,
/// generating (and storing) on any miss. With `cache` = `None` this is
/// plain generation.
///
/// A failed *store* is reported to stderr but does not fail the run —
/// caching is an optimization, never a correctness dependency.
///
/// # Errors
///
/// Propagates generation failures ([`PipelineError`]); cache problems
/// never surface as errors.
pub fn load_or_generate(
    cache: Option<&TraceCache>,
    workload: &dyn Workload,
    tier: &str,
    config: &SimConfig,
) -> Result<(AppRun, CacheOutcome), PipelineError> {
    let key = cache_key(workload.name(), tier, config);
    let miss = match cache {
        Some(c) => match c.load(workload.name(), &key) {
            Ok(run) => return Ok((run, CacheOutcome::Hit)),
            Err(reason) => reason,
        },
        None => MissReason::Absent,
    };
    let run = AppRun::generate(workload, config)?;
    if let Some(c) = cache {
        if let Err(e) = c.store(&key, &run) {
            eprintln!(
                "  warning: failed to cache {} trace in {}: {e}",
                run.app,
                c.dir().display()
            );
        }
    }
    Ok((run, CacheOutcome::Generated(miss)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_memsys::MemoryParams;

    #[test]
    fn key_spells_out_configuration() {
        let key = cache_key("LU", "small", &SimConfig::default());
        assert!(key.contains("app=LU"));
        assert!(key.contains("tier=small"));
        assert!(key.contains("procs=16"));
        assert!(key.contains("miss=50"));
        assert!(key.starts_with(&format!("lktr-v{ARCHIVE_VERSION}")));
    }

    #[test]
    fn distinct_configurations_get_distinct_keys() {
        let base = SimConfig::default();
        let keys = [
            cache_key("LU", "default", &base),
            cache_key("LU", "small", &base),
            cache_key("MP3D", "default", &base),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    num_procs: 8,
                    ..base
                },
            ),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    mem: MemoryParams::with_miss_penalty(100),
                    ..base
                },
            ),
            cache_key(
                "LU",
                "default",
                &SimConfig {
                    memory_bandwidth: Some(4),
                    ..base
                },
            ),
        ];
        let unique: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{keys:#?}");
    }
}
