//! Steps 4–5: re-time a generated trace under every configuration a
//! table or figure of the paper needs.
//!
//! Every sweep here is assembled from independent *cells* — one
//! deterministic processor-model simulation each — and executed on the
//! [`parallel`](crate::parallel) worker pool. Results are collected in
//! submission order, so the output is byte-for-byte identical whether
//! the pool has one worker (`LOOKAHEAD_JOBS=1`) or one per core.

use crate::parallel;
use crate::pipeline::{AppRun, PipelineError};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ExecutionResult;
use lookahead_core::{Btb, BtbConfig, ConsistencyModel};
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::SimConfig;
use lookahead_trace::{BranchStats, Breakdown, DataRefStats, SyncStats, TraceStats};
use lookahead_workloads::Workload;

/// The window sizes of the paper's sweeps.
pub const PAPER_WINDOWS: [usize; 5] = [16, 32, 64, 128, 256];

/// One stacked bar of Figure 3 or the latency/issue-width variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Column {
    /// Column label as in the figure ("BASE", "SSBR", "DS.64", ...).
    pub label: String,
    /// Consistency model group ("" for BASE).
    pub model: String,
    /// The cycle breakdown.
    pub breakdown: Breakdown,
    /// Execution time normalized to BASE = 100.
    pub normalized: f64,
}

/// One stacked bar of Figure 4 (branch/dependence ablations).
pub type Figure4Column = Figure3Column;

fn column(label: &str, model: &str, result: &ExecutionResult, base: &Breakdown) -> Figure3Column {
    Figure3Column {
        label: label.to_string(),
        model: model.to_string(),
        breakdown: result.breakdown,
        normalized: result.breakdown.normalized_to(base),
    }
}

/// One re-timing cell of a sweep: a labelled model run over the run's
/// trace. Cells are executed on the worker pool and assembled in
/// submission order.
type Cell<'a> = (
    String,
    String,
    Box<dyn FnOnce() -> ExecutionResult + Send + 'a>,
);

/// Runs labelled cells (the first must be the BASE reference) on
/// `workers` threads and normalizes every column to the first one.
fn run_cells(cells: Vec<Cell<'_>>, workers: usize) -> Vec<Figure3Column> {
    let (labels, jobs): (Vec<_>, Vec<_>) = cells
        .into_iter()
        .map(|(label, group, job)| ((label, group), job))
        .unzip();
    let results = parallel::run_ordered(jobs, workers);
    let base = results[0].breakdown;
    labels
        .iter()
        .zip(&results)
        .map(|((label, group), r)| column(label, group, r, &base))
        .collect()
}

/// Figure 3: BASE, then {SSBR, SS, DS} under SC, PC and RC, with the
/// full window sweep under RC (the gains under SC/PC are small, so the
/// paper shows only the most aggressive 256-entry window there).
pub fn figure3(run: &AppRun, windows: &[usize]) -> Vec<Figure3Column> {
    figure3_with(run, windows, parallel::default_workers())
}

/// [`figure3`] with an explicit worker count (1 = serial).
pub fn figure3_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    let mut cells: Vec<Cell<'_>> =
        vec![("BASE".into(), String::new(), Box::new(|| run.retime(&Base)))];
    for model in ConsistencyModel::EVALUATED {
        let group = model.abbrev();
        cells.push((
            "SSBR".into(),
            group.into(),
            Box::new(move || run.retime(&InOrder::ssbr(model))),
        ));
        cells.push((
            "SS".into(),
            group.into(),
            Box::new(move || run.retime(&InOrder::ss(model))),
        ));
        let ds_windows: &[usize] = if model == ConsistencyModel::Rc {
            windows
        } else {
            &[256]
        };
        for &w in ds_windows {
            cells.push((
                format!("DS.{w}"),
                group.into(),
                Box::new(move || run.retime(&Ds::new(DsConfig::with_model(model).window(w)))),
            ));
        }
    }
    run_cells(cells, workers)
}

/// Figure 4: the RC dynamic-scheduling ablations — perfect branch
/// prediction alone, then perfect prediction plus ignored data
/// dependences, across the window sweep.
pub fn figure4(run: &AppRun, windows: &[usize]) -> Vec<Figure4Column> {
    figure4_with(run, windows, parallel::default_workers())
}

/// [`figure4`] with an explicit worker count (1 = serial).
pub fn figure4_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure4Column> {
    let mut cells: Vec<Cell<'_>> =
        vec![("BASE".into(), String::new(), Box::new(|| run.retime(&Base)))];
    for (suffix, nodep) in [("bp", false), ("bp+nd", true)] {
        for &w in windows {
            cells.push((
                format!("DS.{w}"),
                suffix.into(),
                Box::new(move || {
                    run.retime(&Ds::new(DsConfig {
                        perfect_branch_prediction: true,
                        ignore_data_dependences: nodep,
                        ..DsConfig::rc().window(w)
                    }))
                }),
            ));
        }
    }
    run_cells(cells, workers)
}

/// Table 1: data-reference statistics of the representative trace.
pub fn table1(run: &AppRun) -> DataRefStats {
    TraceStats::collect(run.trace(), None).data
}

/// Table 2: synchronization statistics of the representative trace.
pub fn table2(run: &AppRun) -> SyncStats {
    TraceStats::collect(run.trace(), None).sync
}

/// Table 3: branch statistics, scored with the paper's 2048-entry
/// 4-way BTB.
pub fn table3(run: &AppRun) -> BranchStats {
    let mut btb = Btb::new(BtbConfig::PAPER);
    TraceStats::collect(run.trace(), Some(&mut btb)).branch
}

/// The fraction of BASE's read-stall time hidden by `DS-window` under
/// RC — the paper's headline metric (§7: on average 33% at window 16,
/// 63% at 32, 81% at 64 with 50-cycle latency).
pub fn read_latency_hidden(run: &AppRun, window: usize) -> f64 {
    let base = run.retime(&Base);
    let ds = run.retime(&Ds::new(DsConfig::rc().window(window)));
    ds.breakdown
        .read_latency_hidden_vs(&base.breakdown)
        .unwrap_or(1.0)
}

/// Hidden-read-latency fractions for every (run × window) cell, rows
/// in `runs` order, columns in `windows` order. All cells (one BASE
/// plus one DS per window, per run) execute on the worker pool.
pub fn read_latency_hidden_matrix(
    runs: &[AppRun],
    windows: &[usize],
    workers: usize,
) -> Vec<Vec<f64>> {
    // Per run: the BASE breakdown followed by one DS breakdown per
    // window, flattened into a single job list.
    let mut jobs: Vec<Box<dyn FnOnce() -> Breakdown + Send + '_>> = Vec::new();
    for run in runs {
        jobs.push(Box::new(|| run.retime(&Base).breakdown));
        for &w in windows {
            jobs.push(Box::new(move || {
                run.retime(&Ds::new(DsConfig::rc().window(w))).breakdown
            }));
        }
    }
    let results = parallel::run_ordered(jobs, workers);
    let stride = 1 + windows.len();
    runs.iter()
        .enumerate()
        .map(|(i, _)| {
            let base = &results[i * stride];
            (0..windows.len())
                .map(|j| {
                    results[i * stride + 1 + j]
                        .read_latency_hidden_vs(base)
                        .unwrap_or(1.0)
                })
                .collect()
        })
        .collect()
}

/// The summary of §7: average percentage of read latency hidden across
/// runs, per window size.
pub fn read_latency_hidden_summary(runs: &[AppRun], windows: &[usize]) -> Vec<(usize, f64)> {
    read_latency_hidden_summary_with(runs, windows, parallel::default_workers())
}

/// [`read_latency_hidden_summary`] with an explicit worker count.
pub fn read_latency_hidden_summary_with(
    runs: &[AppRun],
    windows: &[usize],
    workers: usize,
) -> Vec<(usize, f64)> {
    let matrix = read_latency_hidden_matrix(runs, windows, workers);
    windows
        .iter()
        .enumerate()
        .map(|(j, &w)| {
            let avg = matrix.iter().map(|row| row[j]).sum::<f64>() / runs.len().max(1) as f64;
            (w, avg * 100.0)
        })
        .collect()
}

/// §4.1.3's read-miss issue-delay diagnostic for `DS-window` under RC
/// with perfect branch prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct MissDelayReport {
    /// Number of read misses observed.
    pub misses: usize,
    /// Fraction delayed more than 10 cycles from decode to issue.
    pub over_10: f64,
    /// Fraction delayed more than 40 cycles.
    pub over_40: f64,
    /// Fraction delayed more than 50 cycles.
    pub over_50: f64,
    /// Mean delay in cycles.
    pub mean: f64,
}

/// Measures how long read misses sit in the window before issuing —
/// long delays indicate dependence chains (§4.1.3).
pub fn miss_delay(run: &AppRun, window: usize) -> MissDelayReport {
    let ds = Ds::new(DsConfig {
        perfect_branch_prediction: true,
        ..DsConfig::rc().window(window)
    });
    let r = run.retime(&ds);
    let delays = &r.stats.read_miss_issue_delays;
    let n = delays.len();
    let frac = |t: u32| {
        if n == 0 {
            0.0
        } else {
            delays.iter().filter(|&&d| d > t).count() as f64 / n as f64
        }
    };
    MissDelayReport {
        misses: n,
        over_10: frac(10),
        over_40: frac(40),
        over_50: frac(50),
        mean: if n == 0 {
            0.0
        } else {
            delays.iter().map(|&d| d as f64).sum::<f64>() / n as f64
        },
    }
}

/// BASE plus the RC DS window sweep at a given issue width, as cells.
fn rc_window_sweep(
    run: &AppRun,
    windows: &[usize],
    issue_width: usize,
    group: &str,
    workers: usize,
) -> Vec<Figure3Column> {
    let mut cells: Vec<Cell<'_>> =
        vec![("BASE".into(), String::new(), Box::new(|| run.retime(&Base)))];
    for &w in windows {
        cells.push((
            format!("DS.{w}"),
            group.into(),
            Box::new(move || {
                run.retime(&Ds::new(DsConfig {
                    issue_width,
                    ..DsConfig::rc().window(w)
                }))
            }),
        ));
    }
    run_cells(cells, workers)
}

/// §4.2 multiple-issue study: the RC window sweep at 4-wide decode,
/// issue and retirement, normalized to the same BASE.
pub fn multi_issue(run: &AppRun, windows: &[usize]) -> Vec<Figure3Column> {
    multi_issue_with(run, windows, parallel::default_workers())
}

/// [`multi_issue`] with an explicit worker count (1 = serial).
pub fn multi_issue_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    rc_window_sweep(run, windows, 4, "RCx4", workers)
}

/// BASE plus the single-issue RC DS window sweep — the shape the
/// latency studies re-time an existing run under.
pub fn rc_sweep_columns(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    rc_window_sweep(run, windows, 1, "RC", workers)
}

/// §4.2 latency study: regenerates the trace with a different miss
/// penalty (the trace carries latencies, so it must be regenerated)
/// and runs the RC window sweep.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn latency_sweep(
    workload: &dyn Workload,
    config: &SimConfig,
    miss_penalty: u32,
    windows: &[usize],
) -> Result<(AppRun, Vec<Figure3Column>), PipelineError> {
    let config = SimConfig {
        mem: MemoryParams::with_miss_penalty(miss_penalty),
        ..*config
    };
    let run = AppRun::generate(workload, &config)?;
    let cols = rc_sweep_columns(&run, windows, parallel::default_workers());
    Ok((run, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_workloads::lu::Lu;

    fn small_run() -> AppRun {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        AppRun::generate(&Lu { n: 12 }, &config).unwrap()
    }

    #[test]
    fn figure3_has_expected_columns() {
        let run = small_run();
        let cols = figure3(&run, &[16, 64]);
        // BASE + 3 models * (SSBR + SS) + SC:1 + PC:1 + RC:2 windows.
        assert_eq!(cols.len(), 1 + 3 * 2 + 1 + 1 + 2);
        assert_eq!(cols[0].label, "BASE");
        assert!((cols[0].normalized - 100.0).abs() < 1e-9);
        // Every column at or below BASE (overlap never hurts).
        for c in &cols {
            assert!(
                c.normalized <= 100.5,
                "{}/{} above BASE: {}",
                c.model,
                c.label,
                c.normalized
            );
        }
    }

    #[test]
    fn rc_ds_improves_with_window_size() {
        let run = small_run();
        let cols = figure3(&run, &[16, 256]);
        let rc16 = cols
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.16")
            .unwrap();
        let rc256 = cols
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.256")
            .unwrap();
        assert!(rc256.normalized <= rc16.normalized + 1e-9);
    }

    #[test]
    fn figure4_ablations_only_help() {
        let run = small_run();
        let f3 = figure3(&run, &[64]);
        let real = f3
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.64")
            .unwrap()
            .normalized;
        let f4 = figure4(&run, &[64]);
        let bp = f4
            .iter()
            .find(|c| c.model == "bp" && c.label == "DS.64")
            .unwrap();
        let nd = f4
            .iter()
            .find(|c| c.model == "bp+nd" && c.label == "DS.64")
            .unwrap();
        assert!(bp.normalized <= real + 1e-9);
        assert!(nd.normalized <= bp.normalized + 1e-9);
    }

    #[test]
    fn tables_report_activity() {
        let run = small_run();
        let t1 = table1(&run);
        assert!(t1.reads > 0 && t1.writes > 0);
        let t2 = table2(&run);
        assert!(t2.wait_events + t2.set_events > 0, "LU uses events");
        let t3 = table3(&run);
        assert!(t3.branches > 0);
        assert!(t3.predicted_percent().unwrap() > 50.0);
    }

    #[test]
    fn hidden_read_latency_grows_with_window() {
        let run = small_run();
        let h16 = read_latency_hidden(&run, 16);
        let h64 = read_latency_hidden(&run, 64);
        assert!(h64 >= h16 - 1e-9, "h16={h16} h64={h64}");
        let summary = read_latency_hidden_summary(&[run], &[16, 64]);
        assert_eq!(summary.len(), 2);
        assert!((summary[0].1 - h16 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn miss_delay_reports_fractions() {
        let run = small_run();
        let d = miss_delay(&run, 64);
        assert!(d.misses > 0);
        assert!(d.over_40 <= d.over_10 + 1e-12);
        assert!(d.over_50 <= d.over_40 + 1e-12);
    }

    #[test]
    fn multi_issue_beats_single_issue() {
        let run = small_run();
        let single = figure3(&run, &[64]);
        let s64 = single
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.64")
            .unwrap()
            .normalized;
        let multi = multi_issue(&run, &[64]);
        let m64 = multi
            .iter()
            .find(|c| c.label == "DS.64")
            .unwrap()
            .normalized;
        assert!(m64 <= s64 + 1e-9, "4-wide {m64} vs 1-wide {s64}");
    }

    #[test]
    fn latency_sweep_regenerates_at_new_penalty() {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        let (run, cols) = latency_sweep(&Lu { n: 12 }, &config, 100, &[64]).unwrap();
        // Misses now cost 100 cycles; the trace must reflect it.
        let has_100 = run
            .trace()
            .iter()
            .filter_map(|e| e.mem_access())
            .any(|m| m.latency == 100);
        assert!(has_100);
        assert_eq!(cols.len(), 2);
    }
}
