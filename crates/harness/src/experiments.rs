//! Steps 4–5: re-time a generated trace under every configuration a
//! table or figure of the paper needs.
//!
//! Every sweep here is assembled from independent *cells* — one
//! deterministic processor-model simulation each — and executed on the
//! [`parallel`](crate::parallel) worker pool. Results are collected in
//! submission order, so the output is byte-for-byte identical whether
//! the pool has one worker (`LOOKAHEAD_JOBS=1`) or one per core.

use crate::dag::{self, DagStats, Scheduler, TaskDag};
use crate::parallel;
use crate::pipeline::{AppRun, PipelineError};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::{ExecutionResult, ProcessorModel};
use lookahead_core::{Btb, BtbConfig, ConsistencyModel};
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::SimConfig;
use lookahead_obs::span;
use lookahead_trace::{BranchStats, Breakdown, DataRefStats, GangCursor, SyncStats, TraceStats};
use lookahead_workloads::Workload;
use std::sync::OnceLock;

/// The window sizes of the paper's sweeps.
pub const PAPER_WINDOWS: [usize; 5] = [16, 32, 64, 128, 256];

/// Environment knob selecting the sweep re-timing path (`gang` or
/// `per-cell`); the driver's `--retime` flag wins over it.
pub const RETIME_ENV: &str = "LOOKAHEAD_RETIME";

/// How many chunks the fastest gang member may run ahead of the
/// slowest before it blocks. Bounds a gang's shared-ring memory to
/// `GANG_MAX_LEAD` decoded chunks (each engine's own lookback window
/// may additionally retain chunks it has already consumed). A deeper
/// ring lets members run longer between blocking handoffs — on few
/// cores that means fewer condvar round-trips per traversal — at the
/// price of a few hundred KiB of extra decoded columns in flight.
const GANG_MAX_LEAD: usize = 8;

/// How a sweep re-times its cells over a generated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetimeMode {
    /// Each cell streams (or materializes) the trace independently —
    /// the historical path, one archive traversal per cell.
    PerCell,
    /// Same-trace cells share one streamed traversal through a
    /// [`GangCursor`]: the archive is read and decoded once and every
    /// engine consumes the same refcounted chunks. Runs that cannot
    /// stream fall back to the per-cell path automatically.
    Gang,
}

impl RetimeMode {
    /// Parses a mode name as used by `--retime` and [`RETIME_ENV`].
    pub fn from_name(name: &str) -> Option<RetimeMode> {
        match name.trim() {
            "gang" => Some(RetimeMode::Gang),
            "per-cell" => Some(RetimeMode::PerCell),
            _ => None,
        }
    }

    /// The canonical name (`gang` / `per-cell`).
    pub fn name(self) -> &'static str {
        match self {
            RetimeMode::PerCell => "per-cell",
            RetimeMode::Gang => "gang",
        }
    }

    /// Reads [`RETIME_ENV`], failing fast on a malformed value.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the variable is set to
    /// anything other than `gang` or `per-cell`.
    pub fn from_env() -> Result<Option<RetimeMode>, String> {
        match std::env::var(RETIME_ENV) {
            Ok(v) => RetimeMode::from_name(&v)
                .map(Some)
                .ok_or_else(|| format!("{RETIME_ENV} must be \"gang\" or \"per-cell\", got {v:?}")),
            Err(_) => Ok(None),
        }
    }

    /// The mode used when a caller does not pick one explicitly:
    /// [`RETIME_ENV`] if set and valid, otherwise gang (which degrades
    /// to per-cell on runs that cannot stream).
    pub fn default_mode() -> RetimeMode {
        RetimeMode::from_env()
            .unwrap_or(None)
            .unwrap_or(RetimeMode::Gang)
    }
}

/// One stacked bar of Figure 3 or the latency/issue-width variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Column {
    /// Column label as in the figure ("BASE", "SSBR", "DS.64", ...).
    pub label: String,
    /// Consistency model group ("" for BASE).
    pub model: String,
    /// The cycle breakdown.
    pub breakdown: Breakdown,
    /// Execution time normalized to BASE = 100.
    pub normalized: f64,
}

/// One stacked bar of Figure 4 (branch/dependence ablations).
pub type Figure4Column = Figure3Column;

fn column(label: &str, model: &str, result: &ExecutionResult, base: &Breakdown) -> Figure3Column {
    Figure3Column {
        label: label.to_string(),
        model: model.to_string(),
        breakdown: result.breakdown,
        normalized: result.breakdown.normalized_to(base),
    }
}

/// The processor model one sweep cell re-times a run under. `Copy`
/// (every variant is plain configuration), so cells can be enumerated
/// once and shipped to any scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// The BASE in-order reference processor.
    Base,
    /// In-order with store buffer and blocking reads.
    Ssbr(ConsistencyModel),
    /// In-order with store buffer and non-blocking reads.
    Ss(ConsistencyModel),
    /// The dynamically-scheduled processor.
    Ds(DsConfig),
}

impl ModelSpec {
    /// Runs this model over the run's representative trace.
    #[must_use]
    pub fn retime(&self, run: &AppRun) -> ExecutionResult {
        match *self {
            ModelSpec::Base => run.retime(&Base),
            ModelSpec::Ssbr(model) => run.retime(&InOrder::ssbr(model)),
            ModelSpec::Ss(model) => run.retime(&InOrder::ss(model)),
            ModelSpec::Ds(config) => run.retime(&Ds::new(config)),
        }
    }

    /// Coarse cost estimate for DAG scheduling, calibrated from the
    /// `BENCH_retiming` shape: the in-order models cost about the
    /// same per cell, while a DS cell grows with its window (the slab
    /// scan and the dependence bookkeeping scale with it) — DS.256 is
    /// the cell a rank-ordered schedule must start first. Refined at
    /// runtime by the learned [`dag::cost_model`] via
    /// [`kind`](Self::kind).
    #[must_use]
    pub fn cost(&self) -> u64 {
        match *self {
            ModelSpec::Base => 4,
            ModelSpec::Ssbr(_) | ModelSpec::Ss(_) => 5,
            ModelSpec::Ds(config) => 6 + config.window_size as u64 / 16,
        }
    }

    /// The cost-model kind key grouping cells with similar runtime
    /// (consistency model and ablation flags barely move a cell's
    /// cost; engine type and window size dominate).
    #[must_use]
    pub fn kind(&self) -> String {
        match *self {
            ModelSpec::Base => "BASE".to_string(),
            ModelSpec::Ssbr(_) => "SSBR".to_string(),
            ModelSpec::Ss(_) => "SS".to_string(),
            ModelSpec::Ds(config) => format!("DS.{}", config.window_size),
        }
    }

    /// Boxes the processor model this spec describes — the gang path
    /// runs one owned engine per unique spec on its own thread.
    #[must_use]
    pub fn build(&self) -> Box<dyn ProcessorModel + Send> {
        match *self {
            ModelSpec::Base => Box::new(Base),
            ModelSpec::Ssbr(model) => Box::new(InOrder::ssbr(model)),
            ModelSpec::Ss(model) => Box::new(InOrder::ss(model)),
            ModelSpec::Ds(config) => Box::new(Ds::new(config)),
        }
    }
}

/// One labelled cell of a sweep: which model, under which figure
/// label and group. Every report is enumerated as a `Vec<CellSpec>`
/// (the first cell is always the BASE reference the others are
/// normalized to), so the flat pool, the DAG scheduler, the driver and
/// the serve endpoints all run literally the same cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Column label as in the figure ("BASE", "SSBR", "DS.64", ...).
    pub label: String,
    /// Consistency model group ("" for BASE).
    pub group: String,
    /// The model to re-time under.
    pub model: ModelSpec,
}

impl CellSpec {
    fn new(label: impl Into<String>, group: impl Into<String>, model: ModelSpec) -> CellSpec {
        CellSpec {
            label: label.into(),
            group: group.into(),
            model,
        }
    }
}

/// The BASE reference cell every sweep starts with.
fn base_cell() -> CellSpec {
    CellSpec::new("BASE", "", ModelSpec::Base)
}

/// The shared cell-enumeration helper all sweep builders are phrased
/// in: one `DS.{w}` cell per window under `group`.
fn push_ds_sweep(
    cells: &mut Vec<CellSpec>,
    group: &str,
    windows: &[usize],
    config: impl Fn(usize) -> DsConfig,
) {
    for &w in windows {
        cells.push(CellSpec::new(
            format!("DS.{w}"),
            group,
            ModelSpec::Ds(config(w)),
        ));
    }
}

/// The cells of Figure 3: BASE, then {SSBR, SS, DS} under SC, PC and
/// RC, with the full window sweep under RC.
#[must_use]
pub fn figure3_cells(windows: &[usize]) -> Vec<CellSpec> {
    let mut cells = vec![base_cell()];
    for model in ConsistencyModel::EVALUATED {
        let group = model.abbrev();
        cells.push(CellSpec::new("SSBR", group, ModelSpec::Ssbr(model)));
        cells.push(CellSpec::new("SS", group, ModelSpec::Ss(model)));
        let ds_windows: &[usize] = if model == ConsistencyModel::Rc {
            windows
        } else {
            &[256]
        };
        push_ds_sweep(&mut cells, group, ds_windows, |w| {
            DsConfig::with_model(model).window(w)
        });
    }
    cells
}

/// The cells of Figure 4: BASE, then the perfect-branch-prediction and
/// ignored-data-dependence ablations across the window sweep.
#[must_use]
pub fn figure4_cells(windows: &[usize]) -> Vec<CellSpec> {
    let mut cells = vec![base_cell()];
    for (suffix, nodep) in [("bp", false), ("bp+nd", true)] {
        push_ds_sweep(&mut cells, suffix, windows, |w| DsConfig {
            perfect_branch_prediction: true,
            ignore_data_dependences: nodep,
            ..DsConfig::rc().window(w)
        });
    }
    cells
}

/// The cells of an RC DS window sweep at a given issue width: BASE
/// plus one DS cell per window.
#[must_use]
pub fn rc_sweep_cells(windows: &[usize], issue_width: usize, group: &str) -> Vec<CellSpec> {
    let mut cells = vec![base_cell()];
    push_ds_sweep(&mut cells, group, windows, |w| DsConfig {
        issue_width,
        ..DsConfig::rc().window(w)
    });
    cells
}

/// The cells behind one row of the §7 summary matrix: BASE plus the
/// single-issue RC DS sweep.
#[must_use]
pub fn summary_cells(windows: &[usize]) -> Vec<CellSpec> {
    rc_sweep_cells(windows, 1, "RC")
}

/// Re-times every cell of `specs` over `run` — on the flat pool or as
/// a rank-ordered DAG — returning results in spec order.
#[must_use]
pub fn retime_cells(
    run: &AppRun,
    specs: &[CellSpec],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<ExecutionResult> {
    retime_matrix(&[run], specs, workers, scheduler)
        .pop()
        .unwrap_or_default()
}

/// The DAG cost of a gang node: the unique cells run concurrently off
/// one traversal, but they still occupy the node's worker for about
/// the sum of their individual costs worth of work.
fn gang_cost(specs: &[CellSpec]) -> u64 {
    let mut uniq: Vec<ModelSpec> = Vec::new();
    let mut total = 0;
    for spec in specs {
        if !uniq.contains(&spec.model) {
            uniq.push(spec.model);
            total += spec.model.cost();
        }
    }
    total
}

/// Re-times every spec over `run` in **one streamed pass**: identical
/// specs are deduplicated (a sweep's summary row repeats figure 3's RC
/// cells), one engine thread runs per unique spec, and a
/// [`GangCursor`] fans each decoded chunk out to all of them. Returns
/// `None` when the run cannot stream or any engine fails mid-stream —
/// callers fall back to the per-cell path.
///
/// `observe` fires with `(spec index, result)` for every spec as its
/// engine finishes (from the engine's thread), letting streaming
/// consumers emit cells before the whole gang completes.
pub fn retime_gang_observed(
    run: &AppRun,
    specs: &[CellSpec],
    observe: &(dyn Fn(usize, &ExecutionResult) + Sync),
) -> Option<Vec<ExecutionResult>> {
    if specs.is_empty() {
        return Some(Vec::new());
    }
    let mut uniq: Vec<ModelSpec> = Vec::new();
    let mut canon: Vec<usize> = Vec::with_capacity(specs.len());
    for spec in specs {
        match uniq.iter().position(|m| *m == spec.model) {
            Some(u) => canon.push(u),
            None => {
                uniq.push(spec.model);
                canon.push(uniq.len() - 1);
            }
        }
    }
    let source = run.gang_source()?;
    let mut gang = GangCursor::new(source, uniq.len(), GANG_MAX_LEAD);
    let members = gang.members();
    let slots: Vec<OnceLock<Result<ExecutionResult, String>>> =
        (0..uniq.len()).map(|_| OnceLock::new()).collect();
    let scope_in = span::current_scope();
    std::thread::scope(|s| {
        for ((u, model), mut member) in uniq.iter().enumerate().zip(members) {
            let (slots, canon) = (&slots, &canon);
            let scope_in = scope_in.clone();
            s.spawn(move || {
                // Adopt the submitter's trace scope so per-cell spans
                // join the request's tree (as parallel.rs does).
                span::set_scope(scope_in);
                let engine = model.build();
                let out = span::record_current("retime.cell", || {
                    engine.run_source(&run.program, &mut member)
                });
                match out {
                    Ok(result) => {
                        for (i, &c) in canon.iter().enumerate() {
                            if c == u {
                                observe(i, &result);
                            }
                        }
                        let _ = slots[u].set(Ok(result));
                    }
                    Err(e) => {
                        let _ = slots[u].set(Err(e.to_string()));
                    }
                }
                span::set_scope(None);
            });
        }
    });
    let mut unique_results: Vec<ExecutionResult> = Vec::with_capacity(uniq.len());
    for (u, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(r)) => unique_results.push(r),
            Some(Err(e)) => {
                eprintln!(
                    "  warning: gang re-timing of {} cell {} failed ({e}); \
                     falling back to per-cell re-timing",
                    run.app,
                    uniq[u].kind()
                );
                return None;
            }
            None => return None,
        }
    }
    Some(canon.iter().map(|&u| unique_results[u].clone()).collect())
}

/// [`retime_gang_observed`] without a streaming consumer.
pub fn retime_gang(run: &AppRun, specs: &[CellSpec]) -> Option<Vec<ExecutionResult>> {
    retime_gang_observed(run, specs, &|_, _| {})
}

/// Whether the gang path applies to this (run, specs, mode) triple:
/// more than one cell to share a traversal across, and a run that can
/// stream it.
fn gang_applies(run: &AppRun, specs: &[CellSpec], mode: RetimeMode) -> bool {
    mode == RetimeMode::Gang && specs.len() > 1 && run.gang_ready()
}

/// Re-times the same cell list over several runs in one scheduler
/// pass; returns one result row per run, each in spec order. Under
/// [`Scheduler::Dag`] the (run × cell) nodes share a single
/// rank-ordered ready heap, so the expensive DS cells of every run
/// start before any cheap cell straggles the makespan. The re-timing
/// mode follows [`RetimeMode::default_mode`].
#[must_use]
pub fn retime_matrix(
    runs: &[&AppRun],
    specs: &[CellSpec],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Vec<ExecutionResult>> {
    retime_matrix_mode(runs, specs, workers, scheduler, RetimeMode::default_mode())
}

/// [`retime_matrix`] with an explicit [`RetimeMode`]. Under
/// [`RetimeMode::Gang`], each streamable run contributes a single
/// *gang node* (one traversal feeding every unique cell on its own
/// member threads) instead of `specs.len()` per-cell nodes; runs that
/// cannot stream keep their per-cell nodes. Results are identical in
/// either mode — only the execution shape changes.
#[must_use]
pub fn retime_matrix_mode(
    runs: &[&AppRun],
    specs: &[CellSpec],
    workers: usize,
    scheduler: Scheduler,
    mode: RetimeMode,
) -> Vec<Vec<ExecutionResult>> {
    type Job<'a> = Box<dyn FnOnce() -> Vec<ExecutionResult> + Send + 'a>;
    let mut jobs: Vec<Job> = Vec::new();
    let mut dag = TaskDag::new();
    let mut jobs_per_run: Vec<usize> = Vec::with_capacity(runs.len());
    for &run in runs {
        if gang_applies(run, specs, mode) {
            jobs_per_run.push(1);
            dag.add_task_kind(gang_cost(specs), &[], "gang");
            jobs.push(Box::new(move || {
                retime_gang(run, specs)
                    .unwrap_or_else(|| specs.iter().map(|s| s.model.retime(run)).collect())
            }));
        } else {
            jobs_per_run.push(specs.len());
            for spec in specs {
                let model = spec.model;
                dag.add_task_kind(model.cost(), &[], &model.kind());
                jobs.push(Box::new(move || vec![model.retime(run)]));
            }
        }
    }
    let results = match scheduler {
        Scheduler::Flat => parallel::run_ordered(jobs, workers),
        Scheduler::Dag => dag::run_dag(&dag, jobs, workers),
    };
    let mut rows: Vec<Vec<ExecutionResult>> = Vec::with_capacity(runs.len());
    let mut it = results.into_iter();
    for &n in &jobs_per_run {
        let mut row: Vec<ExecutionResult> = Vec::with_capacity(specs.len());
        for group in it.by_ref().take(n) {
            row.extend(group);
        }
        rows.push(row);
    }
    rows
}

/// Normalizes spec-ordered results to the first (BASE) cell, yielding
/// the figure columns. Shared by every execution path — flat pool,
/// DAG executor, driver and serve — so their rendered output is
/// byte-identical by construction.
#[must_use]
pub fn columns_from_results(specs: &[CellSpec], results: &[ExecutionResult]) -> Vec<Figure3Column> {
    let base = results[0].breakdown;
    specs
        .iter()
        .zip(results)
        .map(|(spec, r)| column(&spec.label, &spec.group, r, &base))
        .collect()
}

/// Runs one sweep's cells over `run` and normalizes to BASE.
#[must_use]
pub fn run_cell_specs(
    run: &AppRun,
    specs: &[CellSpec],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Figure3Column> {
    let results = retime_cells(run, specs, workers, scheduler);
    columns_from_results(specs, &results)
}

/// [`run_cell_specs`] also returning the DAG execution stats (None
/// under the flat scheduler) — serve exports them to `/metrics`.
#[must_use]
pub fn run_cell_specs_with_stats(
    run: &AppRun,
    specs: &[CellSpec],
    workers: usize,
    scheduler: Scheduler,
) -> (Vec<Figure3Column>, Option<DagStats>) {
    match scheduler {
        Scheduler::Flat => (run_cell_specs(run, specs, workers, scheduler), None),
        Scheduler::Dag => {
            if gang_applies(run, specs, RetimeMode::default_mode()) {
                // One gang node: a single traversal feeds every cell,
                // timed and fed back under the "gang" cost kind.
                let mut dag = TaskDag::new();
                dag.add_task_kind(gang_cost(specs), &[], "gang");
                let job = move || {
                    retime_gang(run, specs)
                        .unwrap_or_else(|| specs.iter().map(|s| s.model.retime(run)).collect())
                };
                let (mut rows, stats) = dag::run_dag_with_stats(&dag, vec![job], workers);
                let results = rows.pop().expect("one gang node");
                return (columns_from_results(specs, &results), Some(stats));
            }
            let jobs: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let model = spec.model;
                    move || model.retime(run)
                })
                .collect();
            let mut dag = TaskDag::new();
            for spec in specs {
                dag.add_task_kind(spec.model.cost(), &[], &spec.model.kind());
            }
            let (results, stats) = dag::run_dag_with_stats(&dag, jobs, workers);
            (columns_from_results(specs, &results), Some(stats))
        }
    }
}

/// Figure 3: BASE, then {SSBR, SS, DS} under SC, PC and RC, with the
/// full window sweep under RC (the gains under SC/PC are small, so the
/// paper shows only the most aggressive 256-entry window there).
pub fn figure3(run: &AppRun, windows: &[usize]) -> Vec<Figure3Column> {
    figure3_with(run, windows, parallel::default_workers())
}

/// [`figure3`] with an explicit worker count (1 = serial).
pub fn figure3_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    figure3_sched(run, windows, workers, Scheduler::Flat)
}

/// [`figure3`] with an explicit worker count and scheduler.
pub fn figure3_sched(
    run: &AppRun,
    windows: &[usize],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Figure3Column> {
    run_cell_specs(run, &figure3_cells(windows), workers, scheduler)
}

/// Figure 4: the RC dynamic-scheduling ablations — perfect branch
/// prediction alone, then perfect prediction plus ignored data
/// dependences, across the window sweep.
pub fn figure4(run: &AppRun, windows: &[usize]) -> Vec<Figure4Column> {
    figure4_with(run, windows, parallel::default_workers())
}

/// [`figure4`] with an explicit worker count (1 = serial).
pub fn figure4_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure4Column> {
    figure4_sched(run, windows, workers, Scheduler::Flat)
}

/// [`figure4`] with an explicit worker count and scheduler.
pub fn figure4_sched(
    run: &AppRun,
    windows: &[usize],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Figure4Column> {
    run_cell_specs(run, &figure4_cells(windows), workers, scheduler)
}

/// Table 1: data-reference statistics of the representative trace.
pub fn table1(run: &AppRun) -> DataRefStats {
    TraceStats::collect(run.trace(), None).data
}

/// Table 2: synchronization statistics of the representative trace.
pub fn table2(run: &AppRun) -> SyncStats {
    TraceStats::collect(run.trace(), None).sync
}

/// Table 3: branch statistics, scored with the paper's 2048-entry
/// 4-way BTB.
pub fn table3(run: &AppRun) -> BranchStats {
    let mut btb = Btb::new(BtbConfig::PAPER);
    TraceStats::collect(run.trace(), Some(&mut btb)).branch
}

/// The fraction of BASE's read-stall time hidden by `DS-window` under
/// RC — the paper's headline metric (§7: on average 33% at window 16,
/// 63% at 32, 81% at 64 with 50-cycle latency).
pub fn read_latency_hidden(run: &AppRun, window: usize) -> f64 {
    let base = run.retime(&Base);
    let ds = run.retime(&Ds::new(DsConfig::rc().window(window)));
    ds.breakdown
        .read_latency_hidden_vs(&base.breakdown)
        .unwrap_or(1.0)
}

/// Hidden-read-latency fractions for every (run × window) cell, rows
/// in `runs` order, columns in `windows` order. All cells (one BASE
/// plus one DS per window, per run) execute on the worker pool.
pub fn read_latency_hidden_matrix(
    runs: &[AppRun],
    windows: &[usize],
    workers: usize,
) -> Vec<Vec<f64>> {
    read_latency_hidden_matrix_sched(runs, windows, workers, Scheduler::Flat)
}

/// [`read_latency_hidden_matrix`] with an explicit scheduler: all
/// (run × cell) nodes run in one pass.
pub fn read_latency_hidden_matrix_sched(
    runs: &[AppRun],
    windows: &[usize],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Vec<f64>> {
    let run_refs: Vec<&AppRun> = runs.iter().collect();
    let rows = retime_matrix(&run_refs, &summary_cells(windows), workers, scheduler);
    rows.iter().map(|row| hidden_row(row)).collect()
}

/// One summary-matrix row from spec-ordered results (`BASE` first,
/// then one DS cell per window): the fraction of BASE's read latency
/// each DS cell hides. Shared by the flat matrix, the DAG sweep and
/// serve so the rendered summaries agree to the byte.
#[must_use]
pub fn hidden_row(results: &[ExecutionResult]) -> Vec<f64> {
    let base = results[0].breakdown;
    results[1..]
        .iter()
        .map(|ds| ds.breakdown.read_latency_hidden_vs(&base).unwrap_or(1.0))
        .collect()
}

/// The summary of §7: average percentage of read latency hidden across
/// runs, per window size.
pub fn read_latency_hidden_summary(runs: &[AppRun], windows: &[usize]) -> Vec<(usize, f64)> {
    read_latency_hidden_summary_with(runs, windows, parallel::default_workers())
}

/// [`read_latency_hidden_summary`] with an explicit worker count.
pub fn read_latency_hidden_summary_with(
    runs: &[AppRun],
    windows: &[usize],
    workers: usize,
) -> Vec<(usize, f64)> {
    let matrix = read_latency_hidden_matrix(runs, windows, workers);
    windows
        .iter()
        .enumerate()
        .map(|(j, &w)| {
            let avg = matrix.iter().map(|row| row[j]).sum::<f64>() / runs.len().max(1) as f64;
            (w, avg * 100.0)
        })
        .collect()
}

/// §4.1.3's read-miss issue-delay diagnostic for `DS-window` under RC
/// with perfect branch prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct MissDelayReport {
    /// Number of read misses observed.
    pub misses: usize,
    /// Fraction delayed more than 10 cycles from decode to issue.
    pub over_10: f64,
    /// Fraction delayed more than 40 cycles.
    pub over_40: f64,
    /// Fraction delayed more than 50 cycles.
    pub over_50: f64,
    /// Mean delay in cycles.
    pub mean: f64,
}

/// Measures how long read misses sit in the window before issuing —
/// long delays indicate dependence chains (§4.1.3).
pub fn miss_delay(run: &AppRun, window: usize) -> MissDelayReport {
    let ds = Ds::new(DsConfig {
        perfect_branch_prediction: true,
        ..DsConfig::rc().window(window)
    });
    let r = run.retime(&ds);
    let delays = &r.stats.read_miss_issue_delays;
    let n = delays.len();
    let frac = |t: u32| {
        if n == 0 {
            0.0
        } else {
            delays.iter().filter(|&&d| d > t).count() as f64 / n as f64
        }
    };
    MissDelayReport {
        misses: n,
        over_10: frac(10),
        over_40: frac(40),
        over_50: frac(50),
        mean: if n == 0 {
            0.0
        } else {
            delays.iter().map(|&d| d as f64).sum::<f64>() / n as f64
        },
    }
}

/// §4.2 multiple-issue study: the RC window sweep at 4-wide decode,
/// issue and retirement, normalized to the same BASE.
pub fn multi_issue(run: &AppRun, windows: &[usize]) -> Vec<Figure3Column> {
    multi_issue_with(run, windows, parallel::default_workers())
}

/// [`multi_issue`] with an explicit worker count (1 = serial).
pub fn multi_issue_with(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    multi_issue_sched(run, windows, workers, Scheduler::Flat)
}

/// [`multi_issue`] with an explicit worker count and scheduler.
pub fn multi_issue_sched(
    run: &AppRun,
    windows: &[usize],
    workers: usize,
    scheduler: Scheduler,
) -> Vec<Figure3Column> {
    run_cell_specs(run, &rc_sweep_cells(windows, 4, "RCx4"), workers, scheduler)
}

/// BASE plus the single-issue RC DS window sweep — the shape the
/// latency studies re-time an existing run under.
pub fn rc_sweep_columns(run: &AppRun, windows: &[usize], workers: usize) -> Vec<Figure3Column> {
    run_cell_specs(
        run,
        &rc_sweep_cells(windows, 1, "RC"),
        workers,
        Scheduler::Flat,
    )
}

/// §4.2 latency study: regenerates the trace with a different miss
/// penalty (the trace carries latencies, so it must be regenerated)
/// and runs the RC window sweep.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn latency_sweep(
    workload: &dyn Workload,
    config: &SimConfig,
    miss_penalty: u32,
    windows: &[usize],
) -> Result<(AppRun, Vec<Figure3Column>), PipelineError> {
    let config = SimConfig {
        mem: MemoryParams::with_miss_penalty(miss_penalty),
        ..*config
    };
    let run = AppRun::generate(workload, &config)?;
    let cols = rc_sweep_columns(&run, windows, parallel::default_workers());
    Ok((run, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookahead_workloads::lu::Lu;

    fn small_run() -> AppRun {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        AppRun::generate(&Lu { n: 12 }, &config).unwrap()
    }

    #[test]
    fn figure3_has_expected_columns() {
        let run = small_run();
        let cols = figure3(&run, &[16, 64]);
        // BASE + 3 models * (SSBR + SS) + SC:1 + PC:1 + RC:2 windows.
        assert_eq!(cols.len(), 1 + 3 * 2 + 1 + 1 + 2);
        assert_eq!(cols[0].label, "BASE");
        assert!((cols[0].normalized - 100.0).abs() < 1e-9);
        // Every column at or below BASE (overlap never hurts).
        for c in &cols {
            assert!(
                c.normalized <= 100.5,
                "{}/{} above BASE: {}",
                c.model,
                c.label,
                c.normalized
            );
        }
    }

    #[test]
    fn rc_ds_improves_with_window_size() {
        let run = small_run();
        let cols = figure3(&run, &[16, 256]);
        let rc16 = cols
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.16")
            .unwrap();
        let rc256 = cols
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.256")
            .unwrap();
        assert!(rc256.normalized <= rc16.normalized + 1e-9);
    }

    #[test]
    fn figure4_ablations_only_help() {
        let run = small_run();
        let f3 = figure3(&run, &[64]);
        let real = f3
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.64")
            .unwrap()
            .normalized;
        let f4 = figure4(&run, &[64]);
        let bp = f4
            .iter()
            .find(|c| c.model == "bp" && c.label == "DS.64")
            .unwrap();
        let nd = f4
            .iter()
            .find(|c| c.model == "bp+nd" && c.label == "DS.64")
            .unwrap();
        assert!(bp.normalized <= real + 1e-9);
        assert!(nd.normalized <= bp.normalized + 1e-9);
    }

    #[test]
    fn tables_report_activity() {
        let run = small_run();
        let t1 = table1(&run);
        assert!(t1.reads > 0 && t1.writes > 0);
        let t2 = table2(&run);
        assert!(t2.wait_events + t2.set_events > 0, "LU uses events");
        let t3 = table3(&run);
        assert!(t3.branches > 0);
        assert!(t3.predicted_percent().unwrap() > 50.0);
    }

    #[test]
    fn hidden_read_latency_grows_with_window() {
        let run = small_run();
        let h16 = read_latency_hidden(&run, 16);
        let h64 = read_latency_hidden(&run, 64);
        assert!(h64 >= h16 - 1e-9, "h16={h16} h64={h64}");
        let summary = read_latency_hidden_summary(&[run], &[16, 64]);
        assert_eq!(summary.len(), 2);
        assert!((summary[0].1 - h16 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn miss_delay_reports_fractions() {
        let run = small_run();
        let d = miss_delay(&run, 64);
        assert!(d.misses > 0);
        assert!(d.over_40 <= d.over_10 + 1e-12);
        assert!(d.over_50 <= d.over_40 + 1e-12);
    }

    #[test]
    fn multi_issue_beats_single_issue() {
        let run = small_run();
        let single = figure3(&run, &[64]);
        let s64 = single
            .iter()
            .find(|c| c.model == "RC" && c.label == "DS.64")
            .unwrap()
            .normalized;
        let multi = multi_issue(&run, &[64]);
        let m64 = multi
            .iter()
            .find(|c| c.label == "DS.64")
            .unwrap()
            .normalized;
        assert!(m64 <= s64 + 1e-9, "4-wide {m64} vs 1-wide {s64}");
    }

    #[test]
    fn latency_sweep_regenerates_at_new_penalty() {
        let config = SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        };
        let (run, cols) = latency_sweep(&Lu { n: 12 }, &config, 100, &[64]).unwrap();
        // Misses now cost 100 cycles; the trace must reflect it.
        let has_100 = run
            .trace()
            .iter()
            .filter_map(|e| e.mem_access())
            .any(|m| m.latency == 100);
        assert!(has_100);
        assert_eq!(cols.len(), 2);
    }
}
