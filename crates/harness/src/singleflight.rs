//! Single-flight deduplication of expensive computations.
//!
//! Trace generation is the expensive half of the pipeline, and under a
//! concurrent caller (the experiment service, a parallel sweep) the
//! same cold key can be requested many times at once. The on-disk
//! [`TraceCache`](crate::cache::TraceCache) makes generation pay-once
//! *across* processes; [`SingleFlight`] makes it pay-once *within* a
//! process under concurrency: all callers asking for the same key
//! while a computation is in flight block and receive the shared
//! result, so one generation runs no matter how many threads ask.
//!
//! [`SharedRuns`] layers the two: an in-memory memo of completed
//! [`AppRun`]s over single-flight resolution over the optional on-disk
//! cache. The contract the tests pin: **N concurrent requests for the
//! same cold key run exactly one generation and all observe the same
//! bytes** (literally the same [`Arc`]).

use crate::cache::{cache_key, load_or_generate, CacheOutcome, TraceCache};
use crate::pipeline::AppRun;
use lookahead_multiproc::SimConfig;
use lookahead_obs::span;
use lookahead_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The state of one in-flight (or completed) computation.
enum FlightState<V> {
    /// The leader is computing; waiters block on the condvar.
    Running,
    /// The result every caller of this key receives.
    Done(V),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// A keyed single-flight map with memoization: the first caller of a
/// key becomes the *leader* and runs the computation; concurrent
/// callers of the same key block until the leader finishes and then
/// share its result; later callers get the memoized result instantly.
///
/// Results are retained for the lifetime of the map (this is a memo,
/// not just in-flight dedup) — callers that need eviction should wrap
/// the map rather than the map guessing a policy.
///
/// A leader that panics poisons only its own flight's mutex; waiters
/// on that key panic too (loudly, rather than hanging forever), while
/// other keys are unaffected.
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<String, Arc<Flight<V>>>>,
}

/// How a [`SingleFlight`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// This caller ran the computation.
    Led,
    /// This caller arrived while the leader was computing and waited
    /// for the shared result.
    Coalesced,
    /// The key had already completed; the memoized result was
    /// returned without blocking.
    Memoized,
}

impl<V> Default for SingleFlight<V> {
    fn default() -> SingleFlight<V> {
        SingleFlight::new()
    }
}

impl<V> SingleFlight<V> {
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Number of keys with a started (in-flight or completed)
    /// computation.
    pub fn len(&self) -> usize {
        self.flights.lock().expect("flight map poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` already has a memoized result, without blocking
    /// on an in-flight leader. Conservative: an in-flight or
    /// lock-contended key reads as not completed — callers probing
    /// before speculative work (the serve pre-warm path) then simply
    /// coalesce instead of skipping.
    pub fn completed(&self, key: &str) -> bool {
        let flight = {
            let map = self.flights.lock().expect("flight map poisoned");
            map.get(key).map(Arc::clone)
        };
        match flight {
            None => false,
            Some(f) => matches!(f.state.try_lock().as_deref(), Ok(FlightState::Done(_))),
        }
    }
}

impl<V: Clone> SingleFlight<V> {
    /// Returns `key`'s result, running `compute` only if this caller
    /// is the first to ask for the key.
    ///
    /// # Panics
    ///
    /// Panics if a previous leader for this key panicked (the flight
    /// is poisoned; waiting forever would be worse).
    pub fn run(&self, key: &str, compute: impl FnOnce() -> V) -> (V, FlightOutcome) {
        let (flight, leader) = {
            let mut map = self.flights.lock().expect("flight map poisoned");
            match map.get(key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    map.insert(key.to_string(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            // Compute outside both locks so other keys proceed and
            // waiters can park on the condvar.
            let value = compute();
            let mut state = flight.state.lock().expect("flight poisoned");
            *state = FlightState::Done(value.clone());
            drop(state);
            flight.done.notify_all();
            return (value, FlightOutcome::Led);
        }
        let mut state = flight.state.lock().expect("flight poisoned by its leader");
        // Distinguish "arrived while running" from "memo hit" before
        // possibly blocking.
        let coalesced = matches!(*state, FlightState::Running);
        while matches!(*state, FlightState::Running) {
            state = flight
                .done
                .wait(state)
                .expect("flight poisoned by its leader");
        }
        match &*state {
            FlightState::Done(v) => (
                v.clone(),
                if coalesced {
                    FlightOutcome::Coalesced
                } else {
                    FlightOutcome::Memoized
                },
            ),
            FlightState::Running => unreachable!("wait returned while still running"),
        }
    }
}

/// Accounting for a [`SharedRuns`] resolver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedRunStats {
    /// Full multiprocessor simulations actually executed.
    pub generations: u64,
    /// Keys served from the on-disk trace cache.
    pub disk_hits: u64,
    /// Requests served from the in-memory memo without blocking.
    pub memo_hits: u64,
    /// Requests that arrived while the same key was being resolved
    /// and waited for the shared result instead of duplicating work.
    pub coalesced: u64,
}

/// Concurrency-safe resolution of workload runs: an in-memory memo of
/// completed [`AppRun`]s, single-flight deduplication of concurrent
/// requests, and the optional on-disk [`TraceCache`] underneath.
///
/// The returned runs are shared (`Arc`), so N requests for one key
/// observe literally the same bytes; generation runs at most once per
/// key per process regardless of concurrency.
pub struct SharedRuns {
    cache: Option<TraceCache>,
    flights: SingleFlight<Result<Arc<AppRun>, String>>,
    generations: AtomicU64,
    disk_hits: AtomicU64,
    memo_hits: AtomicU64,
    coalesced: AtomicU64,
}

impl SharedRuns {
    /// A resolver over an optional on-disk cache.
    pub fn new(cache: Option<TraceCache>) -> SharedRuns {
        SharedRuns {
            cache,
            flights: SingleFlight::new(),
            generations: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Whether an on-disk cache backs this resolver.
    pub fn disk_cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The accounting so far.
    pub fn stats(&self) -> SharedRunStats {
        SharedRunStats {
            generations: self.generations.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Resolves `workload` at `tier` under `config`, deduplicating
    /// concurrent identical requests onto one computation.
    ///
    /// # Errors
    ///
    /// Returns the generation failure message (every caller of the
    /// failed flight receives the same message).
    pub fn get(
        &self,
        workload: &dyn Workload,
        tier: &str,
        config: &SimConfig,
    ) -> Result<Arc<AppRun>, String> {
        let key = cache_key(workload.name(), tier, config);
        let asked = span::now_current();
        let (result, outcome) = self.flights.run(&key, || {
            match load_or_generate(self.cache.as_ref(), workload, tier, config) {
                Ok((run, CacheOutcome::Hit)) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    Ok(Arc::new(run))
                }
                Ok((run, CacheOutcome::Generated(_))) => {
                    self.generations.fetch_add(1, Ordering::Relaxed);
                    Ok(Arc::new(run))
                }
                Err(e) => Err(e.to_string()),
            }
        });
        // The leader's time is covered by the cache.lookup/generate
        // spans its compute recorded; followers record how this
        // request was satisfied instead (a wait on the leader, or an
        // instant memo hit).
        match outcome {
            FlightOutcome::Led => {}
            FlightOutcome::Coalesced => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = asked {
                    span::record_since("run.wait", start);
                }
            }
            FlightOutcome::Memoized => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = asked {
                    span::record_since("run.memo", start);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn leader_runs_once_waiters_share() {
        let flight: SingleFlight<u64> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let outcomes: Vec<FlightOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let (v, outcome) = flight.run("k", || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Give waiters time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            42
                        });
                        assert_eq!(v, 42);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation");
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == FlightOutcome::Led)
                .count(),
            1
        );
        // Everyone else either coalesced onto the flight or (if the
        // scheduler delayed them past completion) hit the memo.
        assert!(outcomes
            .iter()
            .all(|o| *o != FlightOutcome::Led || outcomes.len() > 1));
        // A later call is a pure memo hit.
        let (v, outcome) = flight.run("k", || unreachable!("memoized"));
        assert_eq!(v, 42);
        assert_eq!(outcome, FlightOutcome::Memoized);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let flight: SingleFlight<String> = SingleFlight::new();
        let out = std::thread::scope(|s| {
            let a = s.spawn(|| flight.run("a", || "va".to_string()));
            let b = s.spawn(|| flight.run("b", || "vb".to_string()));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(out.0 .0, "va");
        assert_eq!(out.1 .0, "vb");
        assert_eq!(flight.len(), 2);
    }
}
