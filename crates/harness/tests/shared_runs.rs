//! Integration tests for [`SharedRuns`]: the concurrency contract the
//! experiment service is built on.
//!
//! Pinned here: **two threads requesting the same cold key run exactly
//! one generation and observe identical bytes** (literally the same
//! `Arc`), whether or not an on-disk cache sits underneath.

use lookahead_harness::{SharedRuns, TraceCache};
use lookahead_multiproc::SimConfig;
use lookahead_workloads::lu::Lu;
use std::sync::{Arc, Barrier};

fn small_config() -> SimConfig {
    SimConfig {
        num_procs: 4,
        ..SimConfig::default()
    }
}

/// A fresh, empty cache directory under the system temp dir.
fn temp_cache(tag: &str) -> TraceCache {
    let dir = std::env::temp_dir().join(format!("lktr-shared-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    TraceCache::new(dir)
}

fn concurrent_cold_requests(
    runs: &SharedRuns,
    threads: usize,
) -> Vec<Arc<lookahead_harness::AppRun>> {
    let barrier = Barrier::new(threads);
    let config = small_config();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    runs.get(&Lu { n: 12 }, "small", &config).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn two_threads_same_cold_key_one_generation_identical_bytes() {
    let runs = SharedRuns::new(None);
    let results = concurrent_cold_requests(&runs, 2);

    let stats = runs.stats();
    assert_eq!(stats.generations, 1, "cold key must generate exactly once");
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(
        stats.coalesced + stats.memo_hits,
        1,
        "the second request must coalesce or hit the memo: {stats:?}"
    );
    // Identical bytes, in the strongest possible sense.
    assert!(Arc::ptr_eq(&results[0], &results[1]));
}

#[test]
fn many_threads_with_disk_cache_still_one_generation() {
    let runs = SharedRuns::new(Some(temp_cache("many")));
    assert!(runs.disk_cache_enabled());
    let results = concurrent_cold_requests(&runs, 8);

    let stats = runs.stats();
    assert_eq!(stats.generations, 1, "{stats:?}");
    assert_eq!(stats.disk_hits, 0, "cold cache cannot hit: {stats:?}");
    assert_eq!(stats.coalesced + stats.memo_hits, 7, "{stats:?}");
    for r in &results[1..] {
        assert!(Arc::ptr_eq(&results[0], r));
    }

    // A later request is a pure in-memory memo hit — the disk cache is
    // not even consulted once the run is resident.
    let before = runs.stats();
    let again = runs.get(&Lu { n: 12 }, "small", &small_config()).unwrap();
    assert!(Arc::ptr_eq(&results[0], &again));
    let after = runs.stats();
    assert_eq!(after.generations, 1);
    assert_eq!(after.memo_hits, before.memo_hits + 1);
    assert_eq!(after.disk_hits, 0);
}

#[test]
fn distinct_keys_generate_independently() {
    // Keys are (app, tier, config) — the tier implies the problem
    // size, so the same workload under two tier labels is two keys.
    let runs = SharedRuns::new(None);
    let config = small_config();
    let a = runs.get(&Lu { n: 12 }, "small", &config).unwrap();
    let b = runs.get(&Lu { n: 12 }, "tiny", &config).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    let stats = runs.stats();
    assert_eq!(stats.generations, 2);

    // A second process-lifetime request for either is memoized.
    let a2 = runs.get(&Lu { n: 12 }, "small", &config).unwrap();
    assert!(Arc::ptr_eq(&a, &a2));
    assert_eq!(runs.stats().memo_hits, 1);
}
