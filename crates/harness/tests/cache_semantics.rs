//! Integration tests for the content-addressed trace cache.
//!
//! The contract under test: a cache hit returns *exactly* the
//! `AppRun` that was stored; any configuration change produces a
//! different key and forces regeneration; and a damaged or mislabeled
//! cache file is evicted and regenerated — the cache may cost time,
//! never correctness.

use lookahead_harness::{
    cache_key, load_or_generate, AppRun, CacheOutcome, MissReason, TraceCache,
};
use lookahead_memsys::MemoryParams;
use lookahead_multiproc::SimConfig;
use lookahead_workloads::lu::Lu;

fn small_config() -> SimConfig {
    SimConfig {
        num_procs: 4,
        ..SimConfig::default()
    }
}

fn workload() -> Lu {
    Lu { n: 12 }
}

/// A fresh, empty cache directory under the system temp dir.
fn temp_cache(tag: &str) -> TraceCache {
    let dir = std::env::temp_dir().join(format!("lktr-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    TraceCache::new(dir)
}

fn assert_runs_equal(a: &AppRun, b: &AppRun) {
    assert_eq!(a.app, b.app);
    assert_eq!(a.program, b.program);
    assert_eq!(a.proc, b.proc);
    assert_eq!(a.trace(), b.trace());
    assert_eq!(a.all_traces(), b.all_traces());
    assert_eq!(a.mp_breakdowns, b.mp_breakdowns);
    assert_eq!(a.mp_cycles, b.mp_cycles);
}

#[test]
fn cold_miss_then_warm_hit_returns_the_identical_run() {
    let cache = temp_cache("roundtrip");
    let wl = workload();
    let config = small_config();

    let (first, cold) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(
        matches!(cold, CacheOutcome::Generated(MissReason::Absent)),
        "empty cache must report an absent-file miss, got {cold:?}"
    );

    let (second, warm) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(warm.is_hit(), "second lookup must hit, got {warm:?}");
    assert_runs_equal(&first, &second);
}

#[test]
fn changed_configuration_misses_while_the_original_still_hits() {
    let cache = temp_cache("knobs");
    let wl = workload();
    let base = small_config();

    let (_, cold) = load_or_generate(Some(&cache), &wl, "small", &base).unwrap();
    assert!(!cold.is_hit());

    // A different miss penalty re-times every memory access: must
    // regenerate, not reuse.
    let slower = SimConfig {
        mem: MemoryParams::with_miss_penalty(100),
        ..small_config()
    };
    let (_, out) = load_or_generate(Some(&cache), &wl, "small", &slower).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Absent)),
        "changed miss penalty must look elsewhere, got {out:?}"
    );

    // A different processor count changes the whole parallel execution.
    let wider = SimConfig {
        num_procs: 8,
        ..small_config()
    };
    let (_, out) = load_or_generate(Some(&cache), &wl, "small", &wider).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Absent)),
        "changed processor count must look elsewhere, got {out:?}"
    );

    // A different size tier is a different problem size even when the
    // SimConfig is identical.
    let (_, out) = load_or_generate(Some(&cache), &wl, "paper", &base).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Absent)),
        "changed size tier must look elsewhere, got {out:?}"
    );

    // The original entry is untouched by all of the above.
    let (_, warm) = load_or_generate(Some(&cache), &wl, "small", &base).unwrap();
    assert!(warm.is_hit());
}

#[test]
fn format_version_is_part_of_the_key() {
    let config = small_config();
    let key = cache_key("LU", "small", &config);
    let version_prefix = format!("lktr-v{}", lookahead_trace::ARCHIVE_VERSION);
    assert!(
        key.starts_with(&version_prefix),
        "key must embed the archive format version: {key}"
    );

    // A (hypothetical) format bump changes the key string, which
    // changes the content address — old files simply become unreachable.
    let bumped = key.replacen(&version_prefix, "lktr-v999", 1);
    let cache = temp_cache("version");
    assert_ne!(cache.path_for("LU", &key), cache.path_for("LU", &bumped));
}

#[test]
fn key_mismatch_is_evicted_and_regenerated() {
    let cache = temp_cache("mismatch");
    let wl = workload();
    let config = small_config();

    let (_, _) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    let key_small = cache_key("LU", "small", &config);
    let key_paper = cache_key("LU", "paper", &config);

    // Plant the small-tier archive at the paper-tier address: the file
    // decodes fine but its embedded key names a different configuration.
    let path_paper = cache.path_for("LU", &key_paper);
    std::fs::copy(cache.path_for("LU", &key_small), &path_paper).unwrap();

    match cache.load("LU", &key_paper) {
        Err(MissReason::KeyMismatch { found }) => assert_eq!(found, key_small),
        other => panic!("expected a key mismatch, got {other:?}"),
    }
    assert!(
        !path_paper.exists(),
        "a mislabeled cache file must be evicted, not left to mislead again"
    );

    // Through the full path: plant it again, then let load_or_generate
    // observe the mismatch, regenerate, and store a trustworthy entry.
    std::fs::copy(cache.path_for("LU", &key_small), &path_paper).unwrap();
    let (_, out) = load_or_generate(Some(&cache), &wl, "paper", &config).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::KeyMismatch { .. })),
        "got {out:?}"
    );
    let (_, warm) = load_or_generate(Some(&cache), &wl, "paper", &config).unwrap();
    assert!(warm.is_hit(), "regenerated entry must now hit");
}

#[test]
fn corrupt_cache_file_is_evicted_and_regenerated() {
    let cache = temp_cache("corrupt");
    let wl = workload();
    let config = small_config();

    let (original, _) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    let key = cache_key("LU", "small", &config);
    let path = cache.path_for("LU", &key);

    // Flip one bit in the middle of the file.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let (regenerated, out) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Corrupt(_))),
        "a bit-flipped file must be treated as corrupt, got {out:?}"
    );
    assert_runs_equal(&original, &regenerated);

    // The rewritten entry is whole again.
    let (_, warm) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(warm.is_hit());

    // Truncation is caught the same way.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let (_, out) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Corrupt(_))),
        "a truncated file must be treated as corrupt, got {out:?}"
    );
}

#[test]
fn legacy_v2_archive_is_evicted_and_regenerated_as_v3() {
    let cache = temp_cache("migrate");
    let wl = workload();
    let config = small_config();
    let key = cache_key("LU", "small", &config);
    let path = cache.path_for("LU", &key);

    // A legacy v2 container planted where the v3 key points: what an
    // upgrade-in-place finds when the cache directory outlives a
    // format bump (v2 keys also embedded their version, so a real
    // leftover v2 file sits at a v2-keyed path and is simply
    // unreachable — this is the adversarial case of a renamed file).
    let run = AppRun::generate(&wl, &config).unwrap();
    let legacy = lookahead_trace::TraceArchive {
        key: key.clone(),
        app: run.app.clone(),
        proc: run.proc as u32,
        mp_cycles: run.mp_cycles,
        breakdowns: run.mp_breakdowns.clone(),
        program: run.program.clone(),
        traces: run.all_traces().iter().map(|t| (**t).clone()).collect(),
    };
    let mut bytes = Vec::new();
    lookahead_trace::write_archive(&mut bytes, &legacy).unwrap();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, &bytes).unwrap();

    // The v3 loader refuses the old container outright and evicts it.
    match cache.load("LU", &key) {
        Err(MissReason::Corrupt(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("version"), "should name the version: {msg}");
        }
        other => panic!("expected a corrupt miss for a v2 file, got {other:?}"),
    }
    assert!(!path.exists(), "legacy file must be evicted, not retried");

    // Through the full path: regeneration replaces it with a v3 entry
    // holding the identical run, and the next lookup hits.
    std::fs::write(&path, &bytes).unwrap();
    let (fresh, out) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(
        matches!(out, CacheOutcome::Generated(MissReason::Corrupt(_))),
        "got {out:?}"
    );
    assert_runs_equal(&run, &fresh);
    let (_, warm) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(warm.is_hit(), "regenerated v3 entry must hit");
}

#[test]
fn archive_backed_hit_retimes_streamed_exactly_like_materialized() {
    use lookahead_core::base::Base;
    use lookahead_core::ds::{Ds, DsConfig};
    use lookahead_core::inorder::InOrder;
    use lookahead_core::{ConsistencyModel, ProcessorModel};

    let cache = temp_cache("streamhit");
    let wl = workload();
    let config = small_config();
    let (_, _) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();

    let (hit, warm) = load_or_generate(Some(&cache), &wl, "small", &config).unwrap();
    assert!(warm.is_hit());

    // Stream first (materializing the trace would switch retime onto
    // the slice path and defeat the comparison), then materialize and
    // run the classic way.
    let models: Vec<Box<dyn ProcessorModel>> = vec![
        Box::new(Base),
        Box::new(InOrder::ssbr(ConsistencyModel::Sc)),
        Box::new(InOrder::ss(ConsistencyModel::Rc)),
        Box::new(Ds::new(DsConfig::rc().window(64))),
    ];
    let streamed: Vec<_> = models.iter().map(|m| hit.retime(m.as_ref())).collect();
    for (m, s) in models.iter().zip(&streamed) {
        let materialized = m.run(&hit.program, hit.trace());
        assert_eq!(
            *s,
            materialized,
            "{}: streamed cache hit diverged from the materialized run",
            m.name()
        );
    }
}

#[test]
fn disabled_cache_always_generates() {
    let wl = workload();
    let config = small_config();
    let (run, out) = load_or_generate(None, &wl, "small", &config).unwrap();
    assert!(matches!(out, CacheOutcome::Generated(MissReason::Absent)));
    assert!(!run.trace().is_empty());
}
