//! Property tests for the experiment-DAG scheduler: the upward rank
//! must agree with an exhaustive longest-path enumeration on random
//! DAGs, the plan must be a valid schedule (dependencies finish
//! before dependents start), and the whole pipeline — plan and
//! execution results — must be deterministic for a given DAG and
//! worker count.

use lookahead_harness::dag::{run_dag, TaskDag};
use lookahead_isa::rng::XorShift64;

/// A random DAG: edges only point from lower to higher ids (the
/// `TaskDag` construction invariant), costs in `1..=max_cost`.
fn random_dag(rng: &mut XorShift64, n: usize, edge_percent: u32, max_cost: u64) -> TaskDag {
    let mut dag = TaskDag::new();
    for id in 0..n {
        let deps: Vec<usize> = (0..id).filter(|_| rng.percent(edge_percent)).collect();
        dag.add_task(1 + rng.next_below(max_cost), &deps);
    }
    dag
}

/// Exhaustive longest-path-from-`id` cost: enumerate every downward
/// chain without memoization. Exponential, fine for n <= 14.
fn brute_longest_from(dag: &TaskDag, succs: &[Vec<usize>], id: usize) -> u64 {
    dag.cost(id)
        + succs[id]
            .iter()
            .map(|&s| brute_longest_from(dag, succs, s))
            .max()
            .unwrap_or(0)
}

fn successors(dag: &TaskDag) -> Vec<Vec<usize>> {
    let mut succs = vec![Vec::new(); dag.len()];
    for id in 0..dag.len() {
        for &d in dag.deps(id) {
            succs[d].push(id);
        }
    }
    succs
}

#[test]
fn rank_matches_brute_force_longest_path() {
    let mut rng = XorShift64::seed_from_u64(0x0009_a7e1);
    for case in 0..200 {
        let n = 1 + rng.range_usize(14);
        let dag = random_dag(&mut rng, n, 30, 50);
        let succs = successors(&dag);
        let ranks = dag.ranks();
        for (id, rank) in ranks.iter().enumerate() {
            assert_eq!(
                *rank,
                brute_longest_from(&dag, &succs, id),
                "rank of node {id} diverges from exhaustive longest path (case {case}, n={n})"
            );
        }
        assert_eq!(
            dag.critical_path(),
            (0..n)
                .map(|id| brute_longest_from(&dag, &succs, id))
                .max()
                .unwrap_or(0)
        );
    }
}

#[test]
fn plan_is_a_valid_schedule_on_random_dags() {
    let mut rng = XorShift64::seed_from_u64(0x0009_a7e2);
    for case in 0..200 {
        let n = 1 + rng.range_usize(14);
        let dag = random_dag(&mut rng, n, 30, 50);
        let workers = 1 + rng.range_usize(4);
        let plan = dag.plan(workers);
        for id in 0..n {
            assert_eq!(plan.finish[id], plan.start[id] + dag.cost(id));
            for &d in dag.deps(id) {
                assert!(
                    plan.finish[d] <= plan.start[id],
                    "dependency {d} finishes after {id} starts (case {case})"
                );
            }
        }
        // No two tasks overlap on the same worker.
        for a in 0..n {
            for b in 0..a {
                if plan.worker[a] == plan.worker[b] {
                    assert!(
                        plan.finish[a] <= plan.start[b] || plan.finish[b] <= plan.start[a],
                        "tasks {a} and {b} overlap on worker {} (case {case})",
                        plan.worker[a]
                    );
                }
            }
        }
        // The plan can never beat the critical path nor lose to the
        // fully serial schedule.
        assert!(plan.makespan >= dag.critical_path());
        assert!(plan.makespan <= dag.total_cost());
    }
}

#[test]
fn plan_is_deterministic() {
    let mut rng = XorShift64::seed_from_u64(0x0009_a7e3);
    for _ in 0..50 {
        let n = 1 + rng.range_usize(14);
        let dag = random_dag(&mut rng, n, 30, 50);
        for workers in [1, 2, 3, 7] {
            assert_eq!(dag.plan(workers), dag.plan(workers));
        }
    }
}

/// Same DAG, any worker count: `run_dag` returns results in node-id
/// order, so the output bytes are identical whether the sweep ran
/// serially or on eight threads.
#[test]
fn execution_results_are_deterministic_across_worker_counts() {
    let mut rng = XorShift64::seed_from_u64(0x0009_a7e4);
    for _ in 0..20 {
        let n = 1 + rng.range_usize(14);
        let dag = random_dag(&mut rng, n, 30, 50);
        let run = |workers: usize| -> Vec<String> {
            let jobs: Vec<_> = (0..dag.len())
                .map(|id| move || format!("node {id} cost {}", id as u64))
                .collect();
            run_dag(&dag, jobs, workers)
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(reference, run(workers));
        }
    }
}
