//! Gang-vs-per-cell equivalence: one streamed traversal fanned out to
//! every cell's engine must produce results identical to re-timing
//! each cell over its own traversal, at any worker count — the
//! in-process twin of the CI byte-identity gate on the driver output.

use lookahead_harness::dag::Scheduler;
use lookahead_harness::experiments::{
    figure3_cells, retime_gang, retime_matrix_mode, summary_cells, RetimeMode,
};
use lookahead_harness::{load_or_generate, AppRun, TraceCache};
use lookahead_multiproc::SimConfig;
use lookahead_workloads::lu::Lu;

fn small_config() -> SimConfig {
    SimConfig {
        num_procs: 4,
        ..SimConfig::default()
    }
}

/// An archive-backed run (generated through a throwaway cache), which
/// is what makes the gang path real: it can open streamed readers.
fn archived_run(tag: &str) -> (AppRun, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lktr-gang-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TraceCache::new(dir.clone());
    let (run, _) = load_or_generate(Some(&cache), &Lu { n: 12 }, "small", &small_config()).unwrap();
    (run, dir)
}

#[test]
fn gang_matches_per_cell_at_any_worker_count() {
    let (run, dir) = archived_run("matrix");
    assert!(
        run.gang_ready(),
        "a cache-generated run must be able to stream a gang"
    );
    // figure3 cells plus the summary cells that repeat its RC sweep:
    // the union exercises dedup (summary rows canonicalize onto the
    // figure3 RC results) alongside every engine family.
    let mut specs = figure3_cells(&[16, 32]);
    specs.extend(summary_cells(&[16, 32]));
    let runs = [&run];
    for scheduler in [Scheduler::Flat, Scheduler::Dag] {
        let per_cell = retime_matrix_mode(&runs, &specs, 1, scheduler, RetimeMode::PerCell);
        for workers in [1, 2, 3] {
            let gang = retime_matrix_mode(&runs, &specs, workers, scheduler, RetimeMode::Gang);
            assert_eq!(
                per_cell, gang,
                "gang must reproduce per-cell results ({scheduler:?}, {workers} workers)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn gang_direct_path_matches_and_memory_runs_fall_back() {
    let (run, dir) = archived_run("direct");
    let specs = summary_cells(&[16, 32]);
    let gang = retime_gang(&run, &specs).expect("archived run streams a gang");
    let per_cell: Vec<_> = specs.iter().map(|s| s.model.retime(&run)).collect();
    assert_eq!(gang, per_cell);

    // A memory-backed run has no archive to stream: the gang path
    // must decline (callers then run per cell) rather than guess.
    let memory = AppRun::generate(&Lu { n: 12 }, &small_config()).unwrap();
    assert!(!memory.gang_ready());
    assert!(retime_gang(&memory, &specs).is_none());
    let _ = std::fs::remove_dir_all(dir);
}
