//! Single-flight × DAG scheduler: N concurrent identical **cold**
//! sweeps must run the expensive trace generation exactly once, share
//! the memoized run (`Arc`-identical), and every sweep's DAG-scheduled
//! re-timing must produce identical columns. This is the contract the
//! experiment service relies on when several clients ask for the same
//! figure at once and each request body is rendered through the DAG
//! path.

use lookahead_harness::experiments::{figure3_sched, Figure3Column};
use lookahead_harness::{AppRun, Scheduler, SharedRuns};
use lookahead_multiproc::SimConfig;
use lookahead_workloads::lu::Lu;
use std::sync::{Arc, Barrier};

fn small_config() -> SimConfig {
    SimConfig {
        num_procs: 4,
        ..SimConfig::default()
    }
}

const WINDOWS: [usize; 2] = [64, 256];

#[test]
fn concurrent_dag_sweeps_share_one_generation() {
    let threads = 4;
    let runs = SharedRuns::new(None);
    let barrier = Barrier::new(threads);
    let config = small_config();

    let sweeps: Vec<(Arc<AppRun>, Vec<Figure3Column>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    let run = runs.get(&Lu { n: 12 }, "small", &config).unwrap();
                    let cols = figure3_sched(&run, &WINDOWS, 2, Scheduler::Dag);
                    (run, cols)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = runs.stats();
    assert_eq!(
        stats.generations, 1,
        "N concurrent cold sweeps must generate exactly once: {stats:?}"
    );
    assert_eq!(
        stats.coalesced + stats.memo_hits,
        threads as u64 - 1,
        "every other sweep must coalesce onto the leader or hit the memo: {stats:?}"
    );
    for (run, cols) in &sweeps[1..] {
        assert!(
            Arc::ptr_eq(&sweeps[0].0, run),
            "all sweeps must share the memoized run"
        );
        assert_eq!(
            &sweeps[0].1, cols,
            "DAG-scheduled columns must be identical"
        );
    }

    // And the DAG schedule changes nothing about the numbers: a flat
    // sweep over the same shared run agrees column for column.
    let flat = figure3_sched(&sweeps[0].0, &WINDOWS, 2, Scheduler::Flat);
    assert_eq!(flat, sweeps[0].1);
    assert_eq!(
        runs.stats().generations,
        1,
        "re-timing must never trigger another generation"
    );
}
