//! SRISC: the small RISC instruction set used throughout Lookahead.
//!
//! This crate is the bottom layer of the Lookahead simulation suite, a
//! reproduction of Gharachorloo, Gupta and Hennessy, *"Hiding Memory
//! Latency using Dynamic Scheduling in Shared-Memory Multiprocessors"*
//! (ISCA 1992). The paper drives two simulators from dynamic instruction
//! traces of parallel programs; SRISC is the instruction set those
//! programs are written in.
//!
//! The ISA is deliberately simple — a classic three-operand RISC with
//! 32 integer and 32 floating-point registers — but complete enough to
//! express the paper's five workloads (MP3D, LU, PTHOR, LOCUS, OCEAN):
//!
//! * integer and floating-point ALU operations (all single-cycle in the
//!   paper's processor model),
//! * loads and stores of 8-byte words with base+offset addressing,
//! * conditional branches, jumps and jump-and-link,
//! * synchronization primitives in the style of the Argonne National
//!   Laboratory macro package used by the paper's applications:
//!   lock/unlock, barrier, and wait-event/set-event.
//!
//! The crate provides:
//!
//! * [`Instruction`] and friends — the instruction definitions,
//! * [`asm::Assembler`] — labels, fixups, and program assembly,
//! * [`builder::ProgramBuilder`] — structured control-flow helpers
//!   (counted loops, if/then/else) so workloads read like code rather
//!   than like a fixup table,
//! * [`interp`] — a functional interpreter giving the architectural
//!   semantics of every instruction, shared by the timing simulators so
//!   that timing models can never disagree about *what* an instruction
//!   does, only about *when* it completes.
//!
//! # Example
//!
//! ```
//! use lookahead_isa::builder::ProgramBuilder;
//! use lookahead_isa::reg::IntReg;
//! use lookahead_isa::interp::{Machine, FlatMemory};
//!
//! // Sum the integers 0..10 into T1.
//! let mut b = ProgramBuilder::new();
//! let (i, acc) = (IntReg::T0, IntReg::T1);
//! b.li(acc, 0);
//! b.for_range(i, 0, 10, |b| {
//!     b.add(acc, acc, i);
//! });
//! b.halt();
//! let program = b.assemble()?;
//!
//! let mut mem = FlatMemory::new(0);
//! let mut m = Machine::new();
//! m.run(&program, &mut mem, 10_000)?;
//! assert_eq!(m.ireg(acc), 45);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod builder;
pub mod instr;
pub mod interp;
pub mod program;
pub mod reg;
pub mod rng;

pub use asm::{AsmError, Assembler, Label};
pub use builder::ProgramBuilder;
pub use instr::{AluOp, BranchCond, FpCmpOp, FpuOp, Instruction, OpClass, SyncKind, WORD_BYTES};
pub use program::Program;
pub use reg::{FpReg, IntReg};
pub use rng::XorShift64;
