//! Architectural semantics of SRISC: a functional interpreter.
//!
//! The interpreter defines *what* every instruction does. Both timing
//! simulators (the multiprocessor trace generator and the processor
//! models) reuse this single implementation so they can never disagree
//! about architectural state, only about timing.
//!
//! The [`Machine`] holds one processor's architectural state (PC and
//! register files). Memory is behind the [`Memory`] trait so callers
//! can interpose caches, coherence and instrumentation;
//! [`FlatMemory`] is the plain backing store used for functional runs.
//!
//! Synchronization instructions have single-step semantics designed
//! for a cooperative scheduler: an acquire that cannot proceed returns
//! [`InterpError::WouldBlock`] *without advancing the PC*, so the
//! caller can retry the same instruction later. In single-threaded
//! functional runs a `WouldBlock` therefore means deadlock.

use crate::instr::{AluOp, FpCmpOp, FpuOp, Instruction, SyncKind, WORD_BYTES};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, NUM_FP_REGS, NUM_INT_REGS};
use std::fmt;

/// Random-access word memory as seen by the interpreter.
///
/// Addresses are byte addresses and must be aligned to
/// [`WORD_BYTES`]; implementations may panic on unaligned or
/// out-of-range access (the assembler-level workloads never produce
/// them except through bugs, which should fail loudly).
pub trait Memory {
    /// Reads the aligned word at `addr`.
    fn read(&mut self, addr: u64) -> u64;
    /// Writes the aligned word at `addr`.
    fn write(&mut self, addr: u64, value: u64);
}

/// A plain flat memory of zero-initialized words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    words: Vec<u64>,
}

impl FlatMemory {
    /// Creates a memory of `size_bytes` (rounded up to a whole word),
    /// zero-filled.
    pub fn new(size_bytes: u64) -> FlatMemory {
        let words = size_bytes.div_ceil(WORD_BYTES) as usize;
        FlatMemory {
            words: vec![0; words],
        }
    }

    /// Creates a memory initialized from a word image (for example a
    /// [`DataImage`](crate::program::DataImage)), extended with zeroed
    /// words up to `size_bytes` if larger than the image.
    pub fn from_image(image: Vec<u64>, size_bytes: u64) -> FlatMemory {
        let mut words = image;
        let need = size_bytes.div_ceil(WORD_BYTES) as usize;
        if need > words.len() {
            words.resize(need, 0);
        }
        FlatMemory { words }
    }

    /// Size of the memory in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    #[inline]
    fn index(&self, addr: u64) -> usize {
        assert!(
            addr.is_multiple_of(WORD_BYTES),
            "unaligned memory access at {addr:#x}"
        );
        let idx = (addr / WORD_BYTES) as usize;
        assert!(
            idx < self.words.len(),
            "memory access at {addr:#x} beyond size {:#x}",
            self.size_bytes()
        );
        idx
    }

    /// Reads a word as a double (convenience for checking results).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.words[self.index(addr)])
    }

    /// Reads a word as a signed integer (convenience for checking
    /// results).
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.words[self.index(addr)] as i64
    }
}

impl Memory for FlatMemory {
    #[inline]
    fn read(&mut self, addr: u64) -> u64 {
        self.words[self.index(addr)]
    }

    #[inline]
    fn write(&mut self, addr: u64, value: u64) {
        let idx = self.index(addr);
        self.words[idx] = value;
    }
}

/// What a single [`Machine::step`] did, for tracing and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// An integer or floating-point ALU operation completed.
    Alu,
    /// A load read the word at `addr`.
    Load { addr: u64 },
    /// A store wrote the word at `addr`.
    Store { addr: u64 },
    /// A conditional branch resolved.
    Branch { taken: bool, target: usize },
    /// An unconditional jump redirected to `target`.
    Jump { target: usize },
    /// A synchronization operation on the word at `addr` completed
    /// (for barriers the caller still has to hold the processor until
    /// all participants arrive).
    Sync { kind: SyncKind, addr: u64 },
    /// A no-op.
    Nop,
    /// The processor halted; further steps return the same effect.
    Halt,
}

/// Errors from stepping or running the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The PC fell off the end of the program without a `halt`.
    PcOutOfRange { pc: usize, len: usize },
    /// An acquire-type synchronization operation cannot proceed: the
    /// lock is held or the event is unset. The PC was not advanced;
    /// retrying the same step later (after another processor changes
    /// the word) is the intended recovery.
    WouldBlock { kind: SyncKind, addr: u64 },
    /// [`Machine::run`] exceeded its step budget.
    StepLimit { steps: u64 },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} outside program of {len} instructions")
            }
            InterpError::WouldBlock { kind, addr } => {
                write!(f, "{kind:?} at {addr:#x} would block")
            }
            InterpError::StepLimit { steps } => write!(f, "exceeded step limit of {steps}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// One processor's architectural state.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    pc: usize,
    iregs: [i64; NUM_INT_REGS],
    fregs: [f64; NUM_FP_REGS],
    halted: bool,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with PC 0 and zeroed registers.
    pub fn new() -> Machine {
        Machine {
            pc: 0,
            iregs: [0; NUM_INT_REGS],
            fregs: [0.0; NUM_FP_REGS],
            halted: false,
        }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the machine has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer register (`r0` always reads zero).
    pub fn ireg(&self, r: IntReg) -> i64 {
        self.iregs[r.index()]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    pub fn set_ireg(&mut self, r: IntReg, value: i64) {
        if !r.is_zero() {
            self.iregs[r.index()] = value;
        }
    }

    /// Reads a floating-point register.
    pub fn freg(&self, r: FpReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Writes a floating-point register.
    pub fn set_freg(&mut self, r: FpReg, value: f64) {
        self.fregs[r.index()] = value;
    }

    /// The effective address of the next instruction if it is a memory
    /// or synchronization operation, without executing it.
    pub fn peek_addr(&self, program: &Program) -> Option<u64> {
        match program.fetch(self.pc)? {
            Instruction::Load { base, offset, .. }
            | Instruction::Store { base, offset, .. }
            | Instruction::LoadF { base, offset, .. }
            | Instruction::StoreF { base, offset, .. }
            | Instruction::Sync { base, offset, .. } => Some(self.effective_addr(*base, *offset)),
            _ => None,
        }
    }

    #[inline]
    fn effective_addr(&self, base: IntReg, offset: i64) -> u64 {
        (self.ireg(base) + offset) as u64
    }

    /// Executes exactly one instruction.
    ///
    /// On success the PC has advanced (or been redirected) and the
    /// returned [`Effect`] describes what happened. A halted machine
    /// returns [`Effect::Halt`] forever.
    ///
    /// # Errors
    ///
    /// * [`InterpError::PcOutOfRange`] if the PC is past the program end.
    /// * [`InterpError::WouldBlock`] if an acquire cannot proceed; the
    ///   PC is left on the blocking instruction.
    pub fn step(
        &mut self,
        program: &Program,
        mem: &mut impl Memory,
    ) -> Result<Effect, InterpError> {
        if self.halted {
            return Ok(Effect::Halt);
        }
        let instr = *program.fetch(self.pc).ok_or(InterpError::PcOutOfRange {
            pc: self.pc,
            len: program.len(),
        })?;
        let mut next_pc = self.pc + 1;
        let effect = match instr {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let v = eval_alu(op, self.ireg(rs1), self.ireg(rs2));
                self.set_ireg(rd, v);
                Effect::Alu
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let v = eval_alu(op, self.ireg(rs1), imm);
                self.set_ireg(rd, v);
                Effect::Alu
            }
            Instruction::LoadImm { rd, imm } => {
                self.set_ireg(rd, imm);
                Effect::Alu
            }
            Instruction::LoadImmF { fd, value } => {
                self.set_freg(fd, value);
                Effect::Alu
            }
            Instruction::Fpu { op, fd, fs1, fs2 } => {
                let v = eval_fpu(op, self.freg(fs1), self.freg(fs2));
                self.set_freg(fd, v);
                Effect::Alu
            }
            Instruction::FpCmp { op, rd, fs1, fs2 } => {
                let (a, b) = (self.freg(fs1), self.freg(fs2));
                let v = match op {
                    FpCmpOp::Eq => a == b,
                    FpCmpOp::Lt => a < b,
                    FpCmpOp::Le => a <= b,
                };
                self.set_ireg(rd, v as i64);
                Effect::Alu
            }
            Instruction::IntToFp { fd, rs } => {
                self.set_freg(fd, self.ireg(rs) as f64);
                Effect::Alu
            }
            Instruction::FpToInt { rd, fs } => {
                self.set_ireg(rd, self.freg(fs) as i64);
                Effect::Alu
            }
            Instruction::Load { rd, base, offset } => {
                let addr = self.effective_addr(base, offset);
                let v = mem.read(addr) as i64;
                self.set_ireg(rd, v);
                Effect::Load { addr }
            }
            Instruction::Store { rs, base, offset } => {
                let addr = self.effective_addr(base, offset);
                mem.write(addr, self.ireg(rs) as u64);
                Effect::Store { addr }
            }
            Instruction::LoadF { fd, base, offset } => {
                let addr = self.effective_addr(base, offset);
                let v = f64::from_bits(mem.read(addr));
                self.set_freg(fd, v);
                Effect::Load { addr }
            }
            Instruction::StoreF { fs, base, offset } => {
                let addr = self.effective_addr(base, offset);
                mem.write(addr, self.freg(fs).to_bits());
                Effect::Store { addr }
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.ireg(rs1), self.ireg(rs2));
                if taken {
                    next_pc = target;
                }
                Effect::Branch { taken, target }
            }
            Instruction::Jump { target } => {
                next_pc = target;
                Effect::Jump { target }
            }
            Instruction::JumpAndLink { rd, target } => {
                self.set_ireg(rd, (self.pc + 1) as i64);
                next_pc = target;
                Effect::Jump { target }
            }
            Instruction::JumpReg { rs } => {
                next_pc = self.ireg(rs) as usize;
                Effect::Jump { target: next_pc }
            }
            Instruction::Sync { kind, base, offset } => {
                let addr = self.effective_addr(base, offset);
                match kind {
                    SyncKind::Lock => {
                        if mem.read(addr) != 0 {
                            return Err(InterpError::WouldBlock { kind, addr });
                        }
                        mem.write(addr, 1);
                    }
                    SyncKind::Unlock => mem.write(addr, 0),
                    SyncKind::WaitEvent => {
                        if mem.read(addr) == 0 {
                            return Err(InterpError::WouldBlock { kind, addr });
                        }
                    }
                    SyncKind::SetEvent => mem.write(addr, 1),
                    // Barrier coordination is the scheduler's job; the
                    // architectural effect is nothing.
                    SyncKind::Barrier => {}
                }
                Effect::Sync { kind, addr }
            }
            Instruction::Nop => Effect::Nop,
            Instruction::Halt => {
                self.halted = true;
                return Ok(Effect::Halt);
            }
        };
        self.pc = next_pc;
        Ok(effect)
    }

    /// Runs until `halt` or until `max_steps` instructions have
    /// executed.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::step`] errors and returns
    /// [`InterpError::StepLimit`] if the budget is exhausted. A
    /// `WouldBlock` from a single-threaded run indicates deadlock.
    pub fn run(
        &mut self,
        program: &Program,
        mem: &mut impl Memory,
        max_steps: u64,
    ) -> Result<u64, InterpError> {
        let mut steps = 0;
        while !self.halted {
            if steps >= max_steps {
                return Err(InterpError::StepLimit { steps });
            }
            self.step(program, mem)?;
            steps += 1;
        }
        Ok(steps)
    }
}

/// Evaluates an integer ALU operation. Division and remainder by zero
/// produce 0 and the dividend respectively; all arithmetic wraps.
#[inline]
pub fn eval_alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => (a < b) as i64,
        AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
    }
}

/// Evaluates a floating-point ALU operation.
#[inline]
pub fn eval_fpu(op: FpuOp, a: f64, b: f64) -> f64 {
    match op {
        FpuOp::Add => a + b,
        FpuOp::Sub => a - b,
        FpuOp::Mul => a * b,
        FpuOp::Div => a / b,
        FpuOp::Neg => -a,
        FpuOp::Abs => a.abs(),
        FpuOp::Max => a.max(b),
        FpuOp::Min => a.min(b),
        FpuOp::Sqrt => a.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::instr::BranchCond;

    fn exec(build: impl FnOnce(&mut Assembler)) -> (Machine, FlatMemory) {
        let mut a = Assembler::new();
        build(&mut a);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(4096);
        let mut m = Machine::new();
        m.run(&p, &mut mem, 100_000).unwrap();
        (m, mem)
    }

    #[test]
    fn alu_arithmetic() {
        let (m, _) = exec(|a| {
            a.li(IntReg::T0, 7);
            a.li(IntReg::T1, 3);
            a.alu(AluOp::Add, IntReg::T2, IntReg::T0, IntReg::T1);
            a.alu(AluOp::Sub, IntReg::T3, IntReg::T0, IntReg::T1);
            a.alu(AluOp::Mul, IntReg::T4, IntReg::T0, IntReg::T1);
            a.alu(AluOp::Div, IntReg::T5, IntReg::T0, IntReg::T1);
            a.alu(AluOp::Rem, IntReg::T6, IntReg::T0, IntReg::T1);
        });
        assert_eq!(m.ireg(IntReg::T2), 10);
        assert_eq!(m.ireg(IntReg::T3), 4);
        assert_eq!(m.ireg(IntReg::T4), 21);
        assert_eq!(m.ireg(IntReg::T5), 2);
        assert_eq!(m.ireg(IntReg::T6), 1);
    }

    #[test]
    fn division_by_zero_is_defined() {
        assert_eq!(eval_alu(AluOp::Div, 5, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, 5, 0), 5);
        assert_eq!(
            eval_alu(AluOp::Div, i64::MIN, -1),
            i64::MIN.wrapping_div(-1)
        );
    }

    #[test]
    fn shifts_mask_amounts() {
        assert_eq!(eval_alu(AluOp::Sll, 1, 64), 1);
        assert_eq!(eval_alu(AluOp::Srl, -1, 63), 1);
        assert_eq!(eval_alu(AluOp::Sra, -8, 2), -2);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let (m, _) = exec(|a| {
            a.li(IntReg::ZERO, 42);
            a.addi(IntReg::T0, IntReg::ZERO, 1);
        });
        assert_eq!(m.ireg(IntReg::ZERO), 0);
        assert_eq!(m.ireg(IntReg::T0), 1);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let (m, mem) = exec(|a| {
            a.li(IntReg::G0, 256);
            a.li(IntReg::T0, -99);
            a.store(IntReg::T0, IntReg::G0, 8);
            a.load(IntReg::T1, IntReg::G0, 8);
            a.lif(FpReg::F0, 1.25);
            a.storef(FpReg::F0, IntReg::G0, 16);
            a.loadf(FpReg::F1, IntReg::G0, 16);
        });
        assert_eq!(m.ireg(IntReg::T1), -99);
        assert_eq!(m.freg(FpReg::F1), 1.25);
        assert_eq!(mem.read_i64(264), -99);
        assert_eq!(mem.read_f64(272), 1.25);
    }

    #[test]
    fn fp_ops_and_conversions() {
        let (m, _) = exec(|a| {
            a.lif(FpReg::F0, 9.0);
            a.fpu(FpuOp::Sqrt, FpReg::F1, FpReg::F0, FpReg::F0);
            a.fp_to_int(IntReg::T0, FpReg::F1);
            a.int_to_fp(FpReg::F2, IntReg::T0);
            a.fcmp(FpCmpOp::Lt, IntReg::T1, FpReg::F2, FpReg::F0);
        });
        assert_eq!(m.ireg(IntReg::T0), 3);
        assert_eq!(m.freg(FpReg::F2), 3.0);
        assert_eq!(m.ireg(IntReg::T1), 1);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (m, _) = exec(|a| {
            let skip = a.label();
            a.li(IntReg::T0, 1);
            a.branch(BranchCond::Eq, IntReg::T0, IntReg::ZERO, skip);
            a.li(IntReg::T1, 5); // executed: branch not taken
            a.bind(skip).unwrap();
            let skip2 = a.label();
            a.branch(BranchCond::Ne, IntReg::T0, IntReg::ZERO, skip2);
            a.li(IntReg::T2, 7); // skipped: branch taken
            a.bind(skip2).unwrap();
        });
        assert_eq!(m.ireg(IntReg::T1), 5);
        assert_eq!(m.ireg(IntReg::T2), 0);
    }

    #[test]
    fn jal_and_jr_call_return() {
        let (m, _) = exec(|a| {
            let func = a.label();
            let over = a.label();
            a.jal(IntReg::RA, func);
            a.li(IntReg::T1, 2); // after return
            a.jump(over);
            a.bind(func).unwrap();
            a.li(IntReg::T0, 1);
            a.jr(IntReg::RA);
            a.bind(over).unwrap();
        });
        assert_eq!(m.ireg(IntReg::T0), 1);
        assert_eq!(m.ireg(IntReg::T1), 2);
    }

    #[test]
    fn lock_free_then_held() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 512);
        a.lock(IntReg::G0, 0);
        a.lock(IntReg::G0, 0); // second acquire blocks
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(1024);
        let mut m = Machine::new();
        m.step(&p, &mut mem).unwrap(); // li
        let e = m.step(&p, &mut mem).unwrap();
        assert_eq!(
            e,
            Effect::Sync {
                kind: SyncKind::Lock,
                addr: 512
            }
        );
        assert_eq!(mem.read(512), 1);
        let pc_before = m.pc();
        let err = m.step(&p, &mut mem).unwrap_err();
        assert!(matches!(err, InterpError::WouldBlock { .. }));
        assert_eq!(m.pc(), pc_before, "blocking step must not advance pc");
        // Unlock from "another processor", then the retry succeeds.
        mem.write(512, 0);
        m.step(&p, &mut mem).unwrap();
    }

    #[test]
    fn wait_event_blocks_until_set() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 512);
        a.wait_event(IntReg::G0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(1024);
        let mut m = Machine::new();
        m.step(&p, &mut mem).unwrap();
        assert!(m.step(&p, &mut mem).is_err());
        mem.write(512, 1);
        assert!(m.step(&p, &mut mem).is_ok());
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        assert_eq!(m.step(&p, &mut mem).unwrap(), Effect::Halt);
        assert_eq!(m.step(&p, &mut mem).unwrap(), Effect::Halt);
        assert!(m.is_halted());
    }

    #[test]
    fn pc_out_of_range_is_error() {
        let p = Program::new(vec![Instruction::Nop]);
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        m.step(&p, &mut mem).unwrap();
        assert!(matches!(
            m.step(&p, &mut mem),
            Err(InterpError::PcOutOfRange { pc: 1, len: 1 })
        ));
    }

    #[test]
    fn step_limit_reported() {
        let mut a = Assembler::new();
        let top = a.label();
        a.bind(top).unwrap();
        a.jump(top);
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        assert!(matches!(
            m.run(&p, &mut mem, 10),
            Err(InterpError::StepLimit { steps: 10 })
        ));
    }

    #[test]
    fn peek_addr_sees_memory_ops() {
        let mut a = Assembler::new();
        a.li(IntReg::G0, 128);
        a.load(IntReg::T0, IntReg::G0, 16);
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(1024);
        let mut m = Machine::new();
        assert_eq!(m.peek_addr(&p), None);
        m.step(&p, &mut mem).unwrap();
        assert_eq!(m.peek_addr(&p), Some(144));
    }
}
