//! Structured control-flow helpers layered on the [`Assembler`].
//!
//! Workload kernels are long; writing every loop out of raw labels and
//! branches is error-prone. This module extends [`Assembler`] with
//! counted loops, while loops and if/then/else built from closures, so
//! a kernel reads top-to-bottom like structured code:
//!
//! ```
//! use lookahead_isa::{Assembler, IntReg, BranchCond};
//!
//! let mut b = Assembler::new();
//! let (i, n, acc) = (IntReg::T0, IntReg::T1, IntReg::T2);
//! b.li(n, 8);
//! b.li(acc, 0);
//! b.for_to(i, 0, n, |b| {
//!     b.if_then(BranchCond::Lt, i, n, |b| {
//!         b.add(acc, acc, i);
//!     });
//! });
//! b.halt();
//! let program = b.assemble()?;
//! assert!(program.len() > 6);
//! # Ok::<(), lookahead_isa::AsmError>(())
//! ```

use crate::asm::Assembler;
use crate::instr::BranchCond;
use crate::reg::IntReg;

/// Alias kept for discoverability: the program builder *is* the
/// assembler plus the structured helpers in this module.
pub use crate::asm::Assembler as ProgramBuilder;

impl Assembler {
    /// Counted loop with an immediate bound:
    /// `for reg in start..end { body }`.
    ///
    /// The loop variable is live in `reg` inside the body; the body
    /// must not clobber it. The loop test is at the top, so a loop with
    /// `start >= end` executes zero iterations.
    pub fn for_range(&mut self, reg: IntReg, start: i64, end: i64, body: impl FnOnce(&mut Self)) {
        self.li(reg, start);
        let head = self.label();
        let exit = self.label();
        self.bind(head).expect("fresh label");
        self.branch_imm(BranchCond::Ge, reg, end, exit);
        body(self);
        self.addi(reg, reg, 1);
        self.jump(head);
        self.bind(exit).expect("fresh label");
    }

    /// Counted loop with a register bound:
    /// `for reg in start..end_reg { body }`.
    ///
    /// `end_reg` is re-read each iteration, so the body may update it.
    pub fn for_to(
        &mut self,
        reg: IntReg,
        start: i64,
        end_reg: IntReg,
        body: impl FnOnce(&mut Self),
    ) {
        self.li(reg, start);
        let head = self.label();
        let exit = self.label();
        self.bind(head).expect("fresh label");
        self.branch(BranchCond::Ge, reg, end_reg, exit);
        body(self);
        self.addi(reg, reg, 1);
        self.jump(head);
        self.bind(exit).expect("fresh label");
    }

    /// Counted loop with a register bound and an arbitrary positive
    /// immediate step: `for reg in start_reg..end_reg step s { body }`.
    ///
    /// `reg` is initialized by copying `start_reg`.
    pub fn for_step(
        &mut self,
        reg: IntReg,
        start_reg: IntReg,
        end_reg: IntReg,
        step: i64,
        body: impl FnOnce(&mut Self),
    ) {
        self.mv(reg, start_reg);
        let head = self.label();
        let exit = self.label();
        self.bind(head).expect("fresh label");
        self.branch(BranchCond::Ge, reg, end_reg, exit);
        body(self);
        self.addi(reg, reg, step);
        self.jump(head);
        self.bind(exit).expect("fresh label");
    }

    /// `while (rs1 cond rs2) { body }` with the test at the top.
    pub fn while_loop(
        &mut self,
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.label();
        let exit = self.label();
        self.bind(head).expect("fresh label");
        self.branch(cond.negate(), rs1, rs2, exit);
        body(self);
        self.jump(head);
        self.bind(exit).expect("fresh label");
    }

    /// `if (rs1 cond rs2) { body }`.
    pub fn if_then(
        &mut self,
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        body: impl FnOnce(&mut Self),
    ) {
        let skip = self.label();
        self.branch(cond.negate(), rs1, rs2, skip);
        body(self);
        self.bind(skip).expect("fresh label");
    }

    /// `if (rs1 cond rs2) { then_body } else { else_body }`.
    pub fn if_then_else(
        &mut self,
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let else_l = self.label();
        let done = self.label();
        self.branch(cond.negate(), rs1, rs2, else_l);
        then_body(self);
        self.jump(done);
        self.bind(else_l).expect("fresh label");
        else_body(self);
        self.bind(done).expect("fresh label");
    }

    /// Branch comparing a register against an immediate. SRISC branches
    /// compare two registers: comparison against zero uses `r0`
    /// directly; any other immediate is materialized into the scratch
    /// register [`Assembler::SCRATCH`], which workload code must treat
    /// as clobbered by this helper (and by `for_range`, which uses it).
    pub fn branch_imm(
        &mut self,
        cond: BranchCond,
        rs1: IntReg,
        imm: i64,
        target: crate::asm::Label,
    ) {
        if imm == 0 {
            self.branch(cond, rs1, IntReg::ZERO, target);
        } else {
            self.li(Self::SCRATCH, imm);
            self.branch(cond, rs1, Self::SCRATCH, target);
        }
    }

    /// Scratch register clobbered by [`Assembler::branch_imm`] and
    /// [`Assembler::for_range`]: `T9` (`r14`). Workload code must not
    /// keep live values there across those helpers.
    pub const SCRATCH: IntReg = IntReg::T9;

    /// Computes `rd = base_reg + index_reg * 8`: the address of element
    /// `index` of a word array at `base`. Clobbers [`Assembler::SCRATCH`].
    pub fn index_word(&mut self, rd: IntReg, base_reg: IntReg, index_reg: IntReg) {
        self.alu_imm(crate::instr::AluOp::Sll, Self::SCRATCH, index_reg, 3);
        self.add(rd, base_reg, Self::SCRATCH);
    }

    /// Computes `rd = base_reg + (row_reg * cols + col_reg) * 8` for a
    /// row-major 2-D word array with an immediate column count.
    /// Clobbers [`Assembler::SCRATCH`].
    pub fn index_2d(
        &mut self,
        rd: IntReg,
        base_reg: IntReg,
        row_reg: IntReg,
        cols: i64,
        col_reg: IntReg,
    ) {
        self.muli(Self::SCRATCH, row_reg, cols);
        self.add(Self::SCRATCH, Self::SCRATCH, col_reg);
        self.alu_imm(crate::instr::AluOp::Sll, Self::SCRATCH, Self::SCRATCH, 3);
        self.add(rd, base_reg, Self::SCRATCH);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{FlatMemory, Machine};

    fn run(b: Assembler) -> Machine {
        let p = b.assemble().unwrap();
        let mut mem = FlatMemory::new(1024);
        let mut m = Machine::new();
        m.run(&p, &mut mem, 1_000_000).unwrap();
        m
    }

    #[test]
    fn for_range_sums() {
        let mut b = Assembler::new();
        b.li(IntReg::T1, 0);
        b.for_range(IntReg::T0, 0, 10, |b| {
            b.add(IntReg::T1, IntReg::T1, IntReg::T0);
        });
        b.halt();
        assert_eq!(run(b).ireg(IntReg::T1), 45);
    }

    #[test]
    fn for_range_zero_iterations() {
        let mut b = Assembler::new();
        b.li(IntReg::T1, 7);
        b.for_range(IntReg::T0, 5, 5, |b| {
            b.li(IntReg::T1, 0);
        });
        b.halt();
        assert_eq!(run(b).ireg(IntReg::T1), 7);
    }

    #[test]
    fn for_to_uses_register_bound() {
        let mut b = Assembler::new();
        b.li(IntReg::T2, 4);
        b.li(IntReg::T1, 0);
        b.for_to(IntReg::T0, 1, IntReg::T2, |b| {
            b.add(IntReg::T1, IntReg::T1, IntReg::T0);
        });
        b.halt();
        assert_eq!(run(b).ireg(IntReg::T1), 1 + 2 + 3);
    }

    #[test]
    fn for_step_strides() {
        let mut b = Assembler::new();
        b.li(IntReg::T2, 10);
        b.li(IntReg::T3, 0);
        b.li(IntReg::T1, 0);
        b.for_step(IntReg::T0, IntReg::T3, IntReg::T2, 3, |b| {
            b.addi(IntReg::T1, IntReg::T1, 1);
        });
        b.halt();
        // 0, 3, 6, 9 -> 4 iterations
        assert_eq!(run(b).ireg(IntReg::T1), 4);
    }

    #[test]
    fn while_loop_counts_down() {
        let mut b = Assembler::new();
        b.li(IntReg::T0, 5);
        b.li(IntReg::T1, 0);
        b.while_loop(BranchCond::Gt, IntReg::T0, IntReg::ZERO, |b| {
            b.addi(IntReg::T0, IntReg::T0, -1);
            b.addi(IntReg::T1, IntReg::T1, 1);
        });
        b.halt();
        let m = run(b);
        assert_eq!(m.ireg(IntReg::T0), 0);
        assert_eq!(m.ireg(IntReg::T1), 5);
    }

    #[test]
    fn if_then_else_both_arms() {
        for (value, expect) in [(1i64, 10i64), (-1, 20)] {
            let mut b = Assembler::new();
            b.li(IntReg::T0, value);
            b.if_then_else(
                BranchCond::Gt,
                IntReg::T0,
                IntReg::ZERO,
                |b| b.li(IntReg::T1, 10),
                |b| b.li(IntReg::T1, 20),
            );
            b.halt();
            assert_eq!(run(b).ireg(IntReg::T1), expect, "value {value}");
        }
    }

    #[test]
    fn index_helpers_compute_addresses() {
        let mut b = Assembler::new();
        b.li(IntReg::G0, 512);
        b.li(IntReg::T0, 3);
        b.index_word(IntReg::T1, IntReg::G0, IntReg::T0);
        b.li(IntReg::T2, 2); // row
        b.li(IntReg::T3, 5); // col
        b.index_2d(IntReg::T4, IntReg::G0, IntReg::T2, 8, IntReg::T3);
        b.halt();
        let m = run(b);
        assert_eq!(m.ireg(IntReg::T1), 512 + 3 * 8);
        assert_eq!(m.ireg(IntReg::T4), 512 + (2 * 8 + 5) * 8);
    }
}
