//! A small two-pass assembler: emit instructions with symbolic labels,
//! then resolve all branch and jump targets.
//!
//! The assembler is the low-level interface; workload code normally
//! uses the structured [`ProgramBuilder`](crate::builder::ProgramBuilder)
//! on top of it.

use crate::instr::{AluOp, BranchCond, FpCmpOp, FpuOp, Instruction, SyncKind};
use crate::program::Program;
use crate::reg::{FpReg, IntReg};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic branch/jump target. Created by [`Assembler::label`] and
/// given a position by [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced when assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to a position.
    UnboundLabel { label: usize, name: Option<String> },
    /// A label was bound twice.
    Rebound { label: usize, name: Option<String> },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let describe = |label: &usize, name: &Option<String>| match name {
            Some(n) => format!("label {label} ({n})"),
            None => format!("label {label}"),
        };
        match self {
            AsmError::UnboundLabel { label, name } => {
                write!(f, "{} referenced but never bound", describe(label, name))
            }
            AsmError::Rebound { label, name } => {
                write!(f, "{} bound more than once", describe(label, name))
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// Instruction with possibly unresolved control-flow target.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Instruction),
    Branch {
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        target: Label,
    },
    Jump {
        target: Label,
    },
    JumpAndLink {
        rd: IntReg,
        target: Label,
    },
}

/// A two-pass assembler for SRISC programs.
///
/// # Example
///
/// ```
/// use lookahead_isa::asm::Assembler;
/// use lookahead_isa::reg::IntReg;
/// use lookahead_isa::instr::BranchCond;
///
/// let mut a = Assembler::new();
/// let done = a.label();
/// a.li(IntReg::T0, 3);
/// a.branch(BranchCond::Eq, IntReg::T0, IntReg::ZERO, done);
/// a.addi(IntReg::T0, IntReg::T0, -1);
/// a.bind(done)?;
/// a.halt();
/// let program = a.assemble()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), lookahead_isa::asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    pending: Vec<Pending>,
    /// label id -> bound instruction index
    bindings: Vec<Option<usize>>,
    names: BTreeMap<usize, String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() - 1)
    }

    /// Creates a fresh label with a human-readable name (appears in
    /// disassembly).
    pub fn named_label(&mut self, name: &str) -> Label {
        let l = self.label();
        self.names.insert(l.0, name.to_string());
        l
    }

    /// Binds `label` to the current position (the index of the next
    /// emitted instruction).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Rebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.bindings[label.0];
        if slot.is_some() {
            return Err(AsmError::Rebound {
                label: label.0,
                name: self.names.get(&label.0).cloned(),
            });
        }
        *slot = Some(self.pending.len());
        Ok(())
    }

    /// The index the next instruction will be emitted at.
    pub fn here(&self) -> usize {
        self.pending.len()
    }

    /// Emits a raw instruction (no label resolution needed).
    pub fn emit(&mut self, instr: Instruction) {
        self.pending.push(Pending::Ready(instr));
    }

    // ---- convenience emitters -------------------------------------------

    /// `rd = rs1 op rs2`
    pub fn alu(&mut self, op: AluOp, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.emit(Instruction::Alu { op, rd, rs1, rs2 });
    }

    /// `rd = rs1 op imm`
    pub fn alu_imm(&mut self, op: AluOp, rd: IntReg, rs1: IntReg, imm: i64) {
        self.emit(Instruction::AluImm { op, rd, rs1, imm });
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i64) {
        self.alu_imm(AluOp::Add, rd, rs1, imm);
    }

    /// `rd = rs1 * imm`
    pub fn muli(&mut self, rd: IntReg, rs1: IntReg, imm: i64) {
        self.alu_imm(AluOp::Mul, rd, rs1, imm);
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: IntReg, imm: i64) {
        self.emit(Instruction::LoadImm { rd, imm });
    }

    /// `fd = value`
    pub fn lif(&mut self, fd: FpReg, value: f64) {
        self.emit(Instruction::LoadImmF { fd, value });
    }

    /// `rd = rs` (move, encoded as `add rd, rs, r0`)
    pub fn mv(&mut self, rd: IntReg, rs: IntReg) {
        self.alu(AluOp::Add, rd, rs, IntReg::ZERO);
    }

    /// `fd = fs1 op fs2`
    pub fn fpu(&mut self, op: FpuOp, fd: FpReg, fs1: FpReg, fs2: FpReg) {
        self.emit(Instruction::Fpu { op, fd, fs1, fs2 });
    }

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) {
        self.fpu(FpuOp::Add, fd, fs1, fs2);
    }

    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) {
        self.fpu(FpuOp::Sub, fd, fs1, fs2);
    }

    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) {
        self.fpu(FpuOp::Mul, fd, fs1, fs2);
    }

    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) {
        self.fpu(FpuOp::Div, fd, fs1, fs2);
    }

    /// `fd = fs` (move, encoded as `fadd fd, fs, f-zero`) — SRISC has no
    /// dedicated fp move; use add with itself-minus... simply `fmax fd, fs, fs`.
    pub fn fmv(&mut self, fd: FpReg, fs: FpReg) {
        self.fpu(FpuOp::Max, fd, fs, fs);
    }

    /// `rd = (fs1 op fs2) as i64`
    pub fn fcmp(&mut self, op: FpCmpOp, rd: IntReg, fs1: FpReg, fs2: FpReg) {
        self.emit(Instruction::FpCmp { op, rd, fs1, fs2 });
    }

    /// `fd = rs as f64`
    pub fn int_to_fp(&mut self, fd: FpReg, rs: IntReg) {
        self.emit(Instruction::IntToFp { fd, rs });
    }

    /// `rd = fs as i64` (truncating)
    pub fn fp_to_int(&mut self, rd: IntReg, fs: FpReg) {
        self.emit(Instruction::FpToInt { rd, fs });
    }

    /// `rd = mem[base + offset]`
    pub fn load(&mut self, rd: IntReg, base: IntReg, offset: i64) {
        self.emit(Instruction::Load { rd, base, offset });
    }

    /// `mem[base + offset] = rs`
    pub fn store(&mut self, rs: IntReg, base: IntReg, offset: i64) {
        self.emit(Instruction::Store { rs, base, offset });
    }

    /// `fd = mem[base + offset]`
    pub fn loadf(&mut self, fd: FpReg, base: IntReg, offset: i64) {
        self.emit(Instruction::LoadF { fd, base, offset });
    }

    /// `mem[base + offset] = fs`
    pub fn storef(&mut self, fs: FpReg, base: IntReg, offset: i64) {
        self.emit(Instruction::StoreF { fs, base, offset });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: IntReg, rs2: IntReg, target: Label) {
        self.pending.push(Pending::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) {
        self.pending.push(Pending::Jump { target });
    }

    /// Jump-and-link to a label (call).
    pub fn jal(&mut self, rd: IntReg, target: Label) {
        self.pending.push(Pending::JumpAndLink { rd, target });
    }

    /// Indirect jump through a register (return).
    pub fn jr(&mut self, rs: IntReg) {
        self.emit(Instruction::JumpReg { rs });
    }

    /// Synchronization operation on the word at `base + offset`.
    pub fn sync(&mut self, kind: SyncKind, base: IntReg, offset: i64) {
        self.emit(Instruction::Sync { kind, base, offset });
    }

    /// Acquire the lock whose variable is at `base + offset`.
    pub fn lock(&mut self, base: IntReg, offset: i64) {
        self.sync(SyncKind::Lock, base, offset);
    }

    /// Release the lock whose variable is at `base + offset`.
    pub fn unlock(&mut self, base: IntReg, offset: i64) {
        self.sync(SyncKind::Unlock, base, offset);
    }

    /// Global barrier; each static barrier site should use a distinct
    /// address.
    pub fn barrier(&mut self, base: IntReg, offset: i64) {
        self.sync(SyncKind::Barrier, base, offset);
    }

    /// Block until the event word at `base + offset` becomes non-zero.
    pub fn wait_event(&mut self, base: IntReg, offset: i64) {
        self.sync(SyncKind::WaitEvent, base, offset);
    }

    /// Set the event word at `base + offset`, waking waiters.
    pub fn set_event(&mut self, base: IntReg, offset: i64) {
        self.sync(SyncKind::SetEvent, base, offset);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instruction::Nop);
    }

    /// Halt this processor.
    pub fn halt(&mut self) {
        self.emit(Instruction::Halt);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn assemble(self) -> Result<Program, AsmError> {
        let resolve = |label: Label| -> Result<usize, AsmError> {
            self.bindings[label.0].ok_or_else(|| AsmError::UnboundLabel {
                label: label.0,
                name: self.names.get(&label.0).cloned(),
            })
        };
        let mut instructions = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let instr = match p {
                Pending::Ready(i) => *i,
                Pending::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Instruction::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(*target)?,
                },
                Pending::Jump { target } => Instruction::Jump {
                    target: resolve(*target)?,
                },
                Pending::JumpAndLink { rd, target } => Instruction::JumpAndLink {
                    rd: *rd,
                    target: resolve(*target)?,
                },
            };
            instructions.push(instr);
        }
        let mut label_names = BTreeMap::new();
        for (id, pos) in self.bindings.iter().enumerate() {
            if let (Some(pos), Some(name)) = (pos, self.names.get(&id)) {
                label_names.insert(*pos, name.clone());
            }
        }
        Ok(Program::with_labels(instructions, label_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        let top = a.label();
        let out = a.label();
        a.bind(top).unwrap();
        a.addi(IntReg::T0, IntReg::T0, 1);
        a.branch(BranchCond::Ge, IntReg::T0, IntReg::A1, out);
        a.jump(top);
        a.bind(out).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        match p.fetch(1).unwrap() {
            Instruction::Branch { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(2).unwrap() {
            Instruction::Jump { target } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Assembler::new();
        let l = a.named_label("missing");
        a.jump(l);
        let err = a.assemble().unwrap_err();
        assert!(matches!(err, AsmError::UnboundLabel { .. }));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn rebound_label_is_error() {
        let mut a = Assembler::new();
        let l = a.label();
        a.bind(l).unwrap();
        a.nop();
        let err = a.bind(l).unwrap_err();
        assert!(matches!(err, AsmError::Rebound { .. }));
    }

    #[test]
    fn named_labels_appear_in_disassembly() {
        let mut a = Assembler::new();
        let l = a.named_label("entry");
        a.bind(l).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert!(p.disassemble().contains("entry:"));
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn convenience_emitters_produce_expected_instructions() {
        let mut a = Assembler::new();
        a.mv(IntReg::T1, IntReg::T0);
        a.lock(IntReg::G0, 8);
        a.wait_event(IntReg::G1, 0);
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instruction::Alu {
                op: AluOp::Add,
                rd: IntReg::T1,
                rs1: IntReg::T0,
                rs2: IntReg::ZERO
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(&Instruction::Sync {
                kind: SyncKind::Lock,
                base: IntReg::G0,
                offset: 8
            })
        );
    }
}
