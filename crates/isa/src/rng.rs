//! A small deterministic PRNG used throughout the workspace.
//!
//! Lookahead's workloads need reproducible pseudo-random inputs
//! (particle positions, wire lists, netlists) and the test suites need
//! cheap randomized coverage. Neither needs cryptographic quality, and
//! the workspace builds offline, so instead of an external crate we
//! keep one xorshift* generator here in the bottom crate where every
//! other crate can reach it.
//!
//! The generator is `xorshift64*` (Vigna, "An experimental exploration
//! of Marsaglia's xorshift generators, scrambled"): a 64-bit xorshift
//! state with a multiplicative output scramble. Seeds pass through a
//! splitmix64 step so that small or zero seeds still produce
//! well-mixed streams.

/// A deterministic `xorshift64*` pseudo-random number generator.
///
/// The same seed always yields the same sequence, on every platform —
/// workload generation and tests rely on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`. Any seed is acceptable
    /// (including 0): it is pre-mixed with splitmix64 so the xorshift
    /// state is never zero.
    pub fn seed_from_u64(seed: u64) -> XorShift64 {
        // splitmix64 finalizer; its output is uniform over u64 and is
        // zero only for one input, which we then nudge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next value in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply reduction (Lemire); the slight
    /// modulo bias is irrelevant at the ranges used here and keeps the
    /// generator branch-free and fast.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform value in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        let width = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.next_below(width) as i64)
    }

    /// A uniform value in the closed range `[lo, hi]`.
    pub fn range_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
        if width == 0 {
            // Full i64 range: every u64 maps to a distinct value.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(width) as i64)
    }

    /// A uniform value in `[0, n)` as `usize`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// A uniform float in the half-open range `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `percent / 100`.
    pub fn percent(&mut self, percent: u32) -> bool {
        self.next_below(100) < percent as u64
    }

    /// Picks a uniformly random element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = XorShift64::seed_from_u64(7);
        let mut b = XorShift64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::seed_from_u64(1);
        let mut b = XorShift64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = XorShift64::seed_from_u64(0);
        let values: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift64::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let w = r.range_i64_inclusive(-3, 3);
            assert!((-3..=3).contains(&w));
            let f = r.range_f64(-0.7, 0.7);
            assert!((-0.7..0.7).contains(&f));
            let u = r.next_below(9);
            assert!(u < 9);
        }
    }

    #[test]
    fn ranges_cover_their_bounds() {
        // Every value of a small range appears over enough draws.
        let mut r = XorShift64::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.range_i64_inclusive(0, 6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn percent_is_roughly_calibrated() {
        let mut r = XorShift64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.percent(10)).count();
        assert!((700..1300).contains(&hits), "10% of 10k draws: {hits}");
    }
}
