//! SRISC instruction definitions.
//!
//! Instructions are held fully decoded — the simulators never need an
//! encoded binary form, so there is none. Each variant corresponds to
//! one instruction class of the paper's processor model: single-cycle
//! integer/floating-point operations, loads and stores handled by the
//! load/store unit, branches resolved by the branch unit, and the
//! ANL-macro-style synchronization primitives (classified as *acquire*
//! or *release* operations for the consistency models).

use crate::reg::{FpReg, IntReg};
use std::fmt;

/// Size in bytes of an SRISC memory word. All loads and stores move one
/// aligned 8-byte word; a 16-byte cache line therefore holds two words.
pub const WORD_BYTES: u64 = 8;

/// Integer ALU operations (all single-cycle in the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero yields 0 (the simulators never
    /// trap).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    And,
    Or,
    Xor,
    /// Shift left logical (shift amount taken modulo 64).
    Sll,
    /// Shift right logical (shift amount taken modulo 64).
    Srl,
    /// Shift right arithmetic (shift amount taken modulo 64).
    Sra,
    /// Set-less-than, signed: `rd = (rs1 < rs2) as i64`.
    Slt,
    /// Set-less-than, unsigned comparison of the raw bits.
    Sltu,
}

/// Floating-point ALU operations (single-cycle, per the paper's
/// assumption that all functional units except load/store take one
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `fd = -fs1` (`fs2` ignored).
    Neg,
    /// `fd = |fs1|` (`fs2` ignored).
    Abs,
    /// `fd = max(fs1, fs2)`.
    Max,
    /// `fd = min(fs1, fs2)`.
    Min,
    /// `fd = sqrt(fs1)` (`fs2` ignored).
    Sqrt,
}

/// Floating-point comparisons, producing 0/1 in an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    Eq,
    Lt,
    Le,
}

/// Conditions for conditional branches, comparing two integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl BranchCond {
    /// Evaluates the condition on two signed operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }
}

/// The kind of a synchronization instruction.
///
/// The paper's applications synchronize through the Argonne National
/// Laboratory macro package: locks, barriers, and producer/consumer
/// events. Release consistency classifies each as an *acquire* (gains
/// permission: lock, wait-event, leaving a barrier) or a *release*
/// (gives permission: unlock, set-event, arriving at a barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Acquire a lock; the lock variable lives at a shared address.
    Lock,
    /// Release a lock.
    Unlock,
    /// Global barrier across all processors.
    Barrier,
    /// Block until the event word at the address becomes non-zero.
    WaitEvent,
    /// Set the event word at the address to one, waking waiters.
    SetEvent,
}

impl SyncKind {
    /// Whether the operation is an acquire in the release-consistency
    /// classification. A barrier acts as both: arrival is a release,
    /// departure an acquire; we classify it as an acquire because the
    /// processor *stalls* on the acquire half.
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            SyncKind::Lock | SyncKind::WaitEvent | SyncKind::Barrier
        )
    }

    /// Whether the operation is a release in the release-consistency
    /// classification. Barriers are releases as well as acquires.
    pub fn is_release(self) -> bool {
        matches!(
            self,
            SyncKind::Unlock | SyncKind::SetEvent | SyncKind::Barrier
        )
    }
}

/// A fully decoded SRISC instruction.
///
/// Branch and jump targets are instruction indices into the containing
/// [`Program`](crate::program::Program) (the PC advances by one per
/// instruction, not by a byte size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Three-register integer ALU operation: `rd = rs1 op rs2`.
    Alu {
        op: AluOp,
        rd: IntReg,
        rs1: IntReg,
        rs2: IntReg,
    },
    /// Register-immediate integer ALU operation: `rd = rs1 op imm`.
    AluImm {
        op: AluOp,
        rd: IntReg,
        rs1: IntReg,
        imm: i64,
    },
    /// Load immediate: `rd = imm`.
    LoadImm { rd: IntReg, imm: i64 },
    /// Load floating-point immediate: `fd = value`.
    LoadImmF { fd: FpReg, value: f64 },
    /// Three-register floating-point operation: `fd = fs1 op fs2`.
    Fpu {
        op: FpuOp,
        fd: FpReg,
        fs1: FpReg,
        fs2: FpReg,
    },
    /// Floating-point compare into an integer register: `rd = (fs1 op fs2)`.
    FpCmp {
        op: FpCmpOp,
        rd: IntReg,
        fs1: FpReg,
        fs2: FpReg,
    },
    /// Convert integer to double: `fd = rs as f64`.
    IntToFp { fd: FpReg, rs: IntReg },
    /// Convert double to integer (truncating): `rd = fs as i64`.
    FpToInt { rd: IntReg, fs: FpReg },
    /// Integer load: `rd = mem[rs1 + offset]` (8-byte word).
    Load {
        rd: IntReg,
        base: IntReg,
        offset: i64,
    },
    /// Integer store: `mem[rs1 + offset] = rs`.
    Store {
        rs: IntReg,
        base: IntReg,
        offset: i64,
    },
    /// Floating-point load: `fd = mem[rs1 + offset]`.
    LoadF {
        fd: FpReg,
        base: IntReg,
        offset: i64,
    },
    /// Floating-point store: `mem[rs1 + offset] = fs`.
    StoreF {
        fs: FpReg,
        base: IntReg,
        offset: i64,
    },
    /// Conditional branch to an instruction index.
    Branch {
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        target: usize,
    },
    /// Unconditional jump to an instruction index.
    Jump { target: usize },
    /// Jump and link: `rd = pc + 1; pc = target`.
    JumpAndLink { rd: IntReg, target: usize },
    /// Indirect jump: `pc = rs` (used for returns).
    JumpReg { rs: IntReg },
    /// Synchronization operation on the shared word at `base + offset`.
    /// Barriers ignore the address operand's value but it is kept for
    /// uniformity (each static barrier site uses a distinct address).
    Sync {
        kind: SyncKind,
        base: IntReg,
        offset: i64,
    },
    /// No operation.
    Nop,
    /// Stop this processor.
    Halt,
}

/// Coarse classification of an instruction, as used by the timing
/// models to route the instruction to a functional unit and by the
/// trace statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (including immediate forms, moves, conversions).
    IntAlu,
    /// Floating-point ALU.
    FpAlu,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump / jump-and-link / indirect jump.
    Jump,
    /// Synchronization primitive.
    Sync(SyncKind),
    /// Nop or halt.
    Other,
}

impl Instruction {
    /// The coarse class of this instruction.
    pub fn class(&self) -> OpClass {
        match self {
            Instruction::Alu { .. } | Instruction::AluImm { .. } | Instruction::LoadImm { .. } => {
                OpClass::IntAlu
            }
            Instruction::FpToInt { .. } | Instruction::FpCmp { .. } => OpClass::IntAlu,
            Instruction::Fpu { .. }
            | Instruction::LoadImmF { .. }
            | Instruction::IntToFp { .. } => OpClass::FpAlu,
            Instruction::Load { .. } | Instruction::LoadF { .. } => OpClass::Load,
            Instruction::Store { .. } | Instruction::StoreF { .. } => OpClass::Store,
            Instruction::Branch { .. } => OpClass::Branch,
            Instruction::Jump { .. }
            | Instruction::JumpAndLink { .. }
            | Instruction::JumpReg { .. } => OpClass::Jump,
            Instruction::Sync { kind, .. } => OpClass::Sync(*kind),
            Instruction::Nop | Instruction::Halt => OpClass::Other,
        }
    }

    /// Whether this instruction reads or writes memory (loads, stores,
    /// and synchronization operations, which all touch a shared word).
    pub fn is_memory(&self) -> bool {
        matches!(
            self.class(),
            OpClass::Load | OpClass::Store | OpClass::Sync(_)
        )
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// Integer source registers read by this instruction, in a fixed
    /// small buffer (at most two). The hard-wired zero register is
    /// still reported; dependence tracking may ignore it.
    pub fn int_sources(&self) -> SourceRegs {
        let mut s = SourceRegs::default();
        match *self {
            Instruction::Alu { rs1, rs2, .. } => {
                s.push(rs1);
                s.push(rs2);
            }
            Instruction::AluImm { rs1, .. } => s.push(rs1),
            Instruction::IntToFp { rs, .. } => s.push(rs),
            Instruction::Load { base, .. } | Instruction::LoadF { base, .. } => s.push(base),
            Instruction::Store { rs, base, .. } => {
                s.push(rs);
                s.push(base);
            }
            Instruction::StoreF { base, .. } => s.push(base),
            Instruction::Branch { rs1, rs2, .. } => {
                s.push(rs1);
                s.push(rs2);
            }
            Instruction::JumpReg { rs } => s.push(rs),
            Instruction::Sync { base, .. } => s.push(base),
            _ => {}
        }
        s
    }

    /// Floating-point source registers read by this instruction.
    pub fn fp_sources(&self) -> SourceFpRegs {
        let mut s = SourceFpRegs::default();
        match *self {
            Instruction::Fpu { op, fs1, fs2, .. } => {
                s.push(fs1);
                if !matches!(op, FpuOp::Neg | FpuOp::Abs | FpuOp::Sqrt) {
                    s.push(fs2);
                }
            }
            Instruction::FpCmp { fs1, fs2, .. } => {
                s.push(fs1);
                s.push(fs2);
            }
            Instruction::FpToInt { fs, .. } => s.push(fs),
            Instruction::StoreF { fs, .. } => s.push(fs),
            _ => {}
        }
        s
    }

    /// The integer destination register written by this instruction, if
    /// any. Writes to the zero register are reported as `None` (they
    /// have no architectural effect and create no dependence).
    pub fn int_dest(&self) -> Option<IntReg> {
        let rd = match *self {
            Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::LoadImm { rd, .. }
            | Instruction::FpCmp { rd, .. }
            | Instruction::FpToInt { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::JumpAndLink { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The floating-point destination register written by this
    /// instruction, if any.
    pub fn fp_dest(&self) -> Option<FpReg> {
        match *self {
            Instruction::Fpu { fd, .. }
            | Instruction::LoadImmF { fd, .. }
            | Instruction::IntToFp { fd, .. }
            | Instruction::LoadF { fd, .. } => Some(fd),
            _ => None,
        }
    }
}

impl Instruction {
    /// Rewrites the instruction's register operands through separate
    /// source and destination maps (needed by register renaming, where
    /// an instruction like `add r1, r1, r2` reads the *old* value of
    /// `r1` but defines a new one). Branch/jump targets, immediates and
    /// opcodes are untouched.
    pub fn map_registers(
        self,
        mut src_int: impl FnMut(IntReg) -> IntReg,
        mut dst_int: impl FnMut(IntReg) -> IntReg,
        mut src_fp: impl FnMut(FpReg) -> FpReg,
        mut dst_fp: impl FnMut(FpReg) -> FpReg,
    ) -> Instruction {
        match self {
            Instruction::Alu { op, rd, rs1, rs2 } => Instruction::Alu {
                op,
                rd: dst_int(rd),
                rs1: src_int(rs1),
                rs2: src_int(rs2),
            },
            Instruction::AluImm { op, rd, rs1, imm } => Instruction::AluImm {
                op,
                rd: dst_int(rd),
                rs1: src_int(rs1),
                imm,
            },
            Instruction::LoadImm { rd, imm } => Instruction::LoadImm {
                rd: dst_int(rd),
                imm,
            },
            Instruction::LoadImmF { fd, value } => Instruction::LoadImmF {
                fd: dst_fp(fd),
                value,
            },
            Instruction::Fpu { op, fd, fs1, fs2 } => Instruction::Fpu {
                op,
                fd: dst_fp(fd),
                fs1: src_fp(fs1),
                fs2: src_fp(fs2),
            },
            Instruction::FpCmp { op, rd, fs1, fs2 } => Instruction::FpCmp {
                op,
                rd: dst_int(rd),
                fs1: src_fp(fs1),
                fs2: src_fp(fs2),
            },
            Instruction::IntToFp { fd, rs } => Instruction::IntToFp {
                fd: dst_fp(fd),
                rs: src_int(rs),
            },
            Instruction::FpToInt { rd, fs } => Instruction::FpToInt {
                rd: dst_int(rd),
                fs: src_fp(fs),
            },
            Instruction::Load { rd, base, offset } => Instruction::Load {
                rd: dst_int(rd),
                base: src_int(base),
                offset,
            },
            Instruction::Store { rs, base, offset } => Instruction::Store {
                rs: src_int(rs),
                base: src_int(base),
                offset,
            },
            Instruction::LoadF { fd, base, offset } => Instruction::LoadF {
                fd: dst_fp(fd),
                base: src_int(base),
                offset,
            },
            Instruction::StoreF { fs, base, offset } => Instruction::StoreF {
                fs: src_fp(fs),
                base: src_int(base),
                offset,
            },
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Instruction::Branch {
                cond,
                rs1: src_int(rs1),
                rs2: src_int(rs2),
                target,
            },
            Instruction::JumpAndLink { rd, target } => Instruction::JumpAndLink {
                rd: dst_int(rd),
                target,
            },
            Instruction::JumpReg { rs } => Instruction::JumpReg { rs: src_int(rs) },
            Instruction::Sync { kind, base, offset } => Instruction::Sync {
                kind,
                base: src_int(base),
                offset,
            },
            other @ (Instruction::Jump { .. } | Instruction::Nop | Instruction::Halt) => other,
        }
    }
}

/// Fixed-capacity list of integer source registers (at most two).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceRegs {
    regs: [Option<IntReg>; 2],
}

impl SourceRegs {
    fn push(&mut self, r: IntReg) {
        for slot in &mut self.regs {
            if slot.is_none() {
                *slot = Some(r);
                return;
            }
        }
        unreachable!("more than two integer sources");
    }

    /// Iterates over the source registers.
    pub fn iter(&self) -> impl Iterator<Item = IntReg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// Number of source registers.
    pub fn len(&self) -> usize {
        self.regs.iter().flatten().count()
    }

    /// Whether there are no source registers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed-capacity list of floating-point source registers (at most two).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceFpRegs {
    regs: [Option<FpReg>; 2],
}

impl SourceFpRegs {
    fn push(&mut self, r: FpReg) {
        for slot in &mut self.regs {
            if slot.is_none() {
                *slot = Some(r);
                return;
            }
        }
        unreachable!("more than two fp sources");
    }

    /// Iterates over the source registers.
    pub fn iter(&self) -> impl Iterator<Item = FpReg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// Number of source registers.
    pub fn len(&self) -> usize {
        self.regs.iter().flatten().count()
    }

    /// Whether there are no source registers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(*op))
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(*op))
            }
            Instruction::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instruction::LoadImmF { fd, value } => write!(f, "lif {fd}, {value}"),
            Instruction::Fpu { op, fd, fs1, fs2 } => {
                write!(f, "f{} {fd}, {fs1}, {fs2}", fpu_name(*op))
            }
            Instruction::FpCmp { op, rd, fs1, fs2 } => {
                let n = match op {
                    FpCmpOp::Eq => "eq",
                    FpCmpOp::Lt => "lt",
                    FpCmpOp::Le => "le",
                };
                write!(f, "fcmp.{n} {rd}, {fs1}, {fs2}")
            }
            Instruction::IntToFp { fd, rs } => write!(f, "cvt.d.l {fd}, {rs}"),
            Instruction::FpToInt { rd, fs } => write!(f, "cvt.l.d {rd}, {fs}"),
            Instruction::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instruction::Store { rs, base, offset } => write!(f, "sd {rs}, {offset}({base})"),
            Instruction::LoadF { fd, base, offset } => write!(f, "fld {fd}, {offset}({base})"),
            Instruction::StoreF { fs, base, offset } => write!(f, "fsd {fs}, {offset}({base})"),
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let n = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Le => "ble",
                    BranchCond::Gt => "bgt",
                };
                write!(f, "{n} {rs1}, {rs2}, @{target}")
            }
            Instruction::Jump { target } => write!(f, "j @{target}"),
            Instruction::JumpAndLink { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instruction::JumpReg { rs } => write!(f, "jr {rs}"),
            Instruction::Sync { kind, base, offset } => {
                let n = match kind {
                    SyncKind::Lock => "lock",
                    SyncKind::Unlock => "unlock",
                    SyncKind::Barrier => "barrier",
                    SyncKind::WaitEvent => "waitev",
                    SyncKind::SetEvent => "setev",
                };
                write!(f, "{n} {offset}({base})")
            }
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn fpu_name(op: FpuOp) -> &'static str {
    match op {
        FpuOp::Add => "add",
        FpuOp::Sub => "sub",
        FpuOp::Mul => "mul",
        FpuOp::Div => "div",
        FpuOp::Neg => "neg",
        FpuOp::Abs => "abs",
        FpuOp::Max => "max",
        FpuOp::Min => "min",
        FpuOp::Sqrt => "sqrt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_cond_eval_and_negate() {
        for (cond, a, b, expect) in [
            (BranchCond::Eq, 1, 1, true),
            (BranchCond::Ne, 1, 1, false),
            (BranchCond::Lt, -2, 1, true),
            (BranchCond::Ge, -2, 1, false),
            (BranchCond::Le, 3, 3, true),
            (BranchCond::Gt, 3, 3, false),
        ] {
            assert_eq!(cond.eval(a, b), expect, "{cond:?} {a} {b}");
            assert_eq!(cond.negate().eval(a, b), !expect, "negated {cond:?}");
        }
    }

    #[test]
    fn sync_kind_classification() {
        assert!(SyncKind::Lock.is_acquire());
        assert!(!SyncKind::Lock.is_release());
        assert!(SyncKind::Unlock.is_release());
        assert!(!SyncKind::Unlock.is_acquire());
        assert!(SyncKind::Barrier.is_acquire());
        assert!(SyncKind::Barrier.is_release());
        assert!(SyncKind::WaitEvent.is_acquire());
        assert!(SyncKind::SetEvent.is_release());
    }

    #[test]
    fn class_of_each_variant() {
        let ld = Instruction::Load {
            rd: IntReg::T0,
            base: IntReg::G0,
            offset: 8,
        };
        assert_eq!(ld.class(), OpClass::Load);
        assert!(ld.is_memory());
        assert!(!ld.is_control());

        let br = Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: IntReg::T0,
            rs2: IntReg::ZERO,
            target: 0,
        };
        assert_eq!(br.class(), OpClass::Branch);
        assert!(br.is_control());
        assert!(!br.is_memory());

        let sync = Instruction::Sync {
            kind: SyncKind::Lock,
            base: IntReg::G1,
            offset: 0,
        };
        assert_eq!(sync.class(), OpClass::Sync(SyncKind::Lock));
        assert!(sync.is_memory());
    }

    #[test]
    fn dest_of_zero_register_write_is_none() {
        let i = Instruction::AluImm {
            op: AluOp::Add,
            rd: IntReg::ZERO,
            rs1: IntReg::T0,
            imm: 1,
        };
        assert_eq!(i.int_dest(), None);
    }

    #[test]
    fn sources_of_store() {
        let st = Instruction::Store {
            rs: IntReg::T1,
            base: IntReg::G0,
            offset: 0,
        };
        let srcs: Vec<_> = st.int_sources().iter().collect();
        assert_eq!(srcs, vec![IntReg::T1, IntReg::G0]);
        assert_eq!(st.int_dest(), None);
    }

    #[test]
    fn unary_fpu_has_single_fp_source() {
        let neg = Instruction::Fpu {
            op: FpuOp::Neg,
            fd: FpReg::F1,
            fs1: FpReg::F2,
            fs2: FpReg::F0,
        };
        assert_eq!(neg.fp_sources().len(), 1);
        let add = Instruction::Fpu {
            op: FpuOp::Add,
            fd: FpReg::F1,
            fs1: FpReg::F2,
            fs2: FpReg::F3,
        };
        assert_eq!(add.fp_sources().len(), 2);
    }

    #[test]
    fn display_round_trip_spot_checks() {
        let i = Instruction::Load {
            rd: IntReg::T0,
            base: IntReg::G0,
            offset: 16,
        };
        assert_eq!(i.to_string(), "ld r5, 16(r25)");
        assert_eq!(Instruction::Halt.to_string(), "halt");
        assert_eq!(
            Instruction::Sync {
                kind: SyncKind::Barrier,
                base: IntReg::G5,
                offset: 0
            }
            .to_string(),
            "barrier 0(r30)"
        );
    }
}
