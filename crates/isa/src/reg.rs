//! Register names for the SRISC architecture.
//!
//! SRISC has 32 integer registers and 32 floating-point registers.
//! Integer register 0 ([`IntReg::ZERO`]) is hard-wired to zero, as in
//! MIPS; writes to it are discarded. The remaining registers are
//! general purpose, but the conventional aliases below (`T*` caller
//! temporaries, `S*` saved values, `A*` arguments, `G*` globals) make
//! hand-written workload kernels readable.

use std::fmt;

/// An integer register, `r0`–`r31`.
///
/// `r0` is hard-wired to zero. Construct registers either from the
/// named constants (preferred in workload code) or via
/// [`IntReg::new`], which validates the index.
///
/// # Example
///
/// ```
/// use lookahead_isa::reg::IntReg;
/// let r = IntReg::new(5)?;
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// # Ok::<(), lookahead_isa::reg::RegIndexError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point register, `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

/// Error returned when constructing a register from an out-of-range index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegIndexError {
    index: usize,
}

impl fmt::Display for RegIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range (0..32)", self.index)
    }
}

impl std::error::Error for RegIndexError {}

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 32;

impl IntReg {
    /// The hard-wired zero register, `r0`.
    pub const ZERO: IntReg = IntReg(0);
    /// Argument registers `a0`..`a3` (`r1`..`r4`). The multiprocessor
    /// simulator passes the processor id in `A0` and the processor
    /// count in `A1` at program start.
    pub const A0: IntReg = IntReg(1);
    pub const A1: IntReg = IntReg(2);
    pub const A2: IntReg = IntReg(3);
    pub const A3: IntReg = IntReg(4);
    /// Caller temporaries `t0`..`t9` (`r5`..`r14`).
    pub const T0: IntReg = IntReg(5);
    pub const T1: IntReg = IntReg(6);
    pub const T2: IntReg = IntReg(7);
    pub const T3: IntReg = IntReg(8);
    pub const T4: IntReg = IntReg(9);
    pub const T5: IntReg = IntReg(10);
    pub const T6: IntReg = IntReg(11);
    pub const T7: IntReg = IntReg(12);
    pub const T8: IntReg = IntReg(13);
    pub const T9: IntReg = IntReg(14);
    /// Saved values `s0`..`s9` (`r15`..`r24`).
    pub const S0: IntReg = IntReg(15);
    pub const S1: IntReg = IntReg(16);
    pub const S2: IntReg = IntReg(17);
    pub const S3: IntReg = IntReg(18);
    pub const S4: IntReg = IntReg(19);
    pub const S5: IntReg = IntReg(20);
    pub const S6: IntReg = IntReg(21);
    pub const S7: IntReg = IntReg(22);
    pub const S8: IntReg = IntReg(23);
    pub const S9: IntReg = IntReg(24);
    /// Globals `g0`..`g5` (`r25`..`r30`), conventionally base pointers
    /// to shared data structures.
    pub const G0: IntReg = IntReg(25);
    pub const G1: IntReg = IntReg(26);
    pub const G2: IntReg = IntReg(27);
    pub const G3: IntReg = IntReg(28);
    pub const G4: IntReg = IntReg(29);
    pub const G5: IntReg = IntReg(30);
    /// Link register (`r31`), written by jump-and-link.
    pub const RA: IntReg = IntReg(31);

    /// Creates a register from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`RegIndexError`] if `index >= 32`.
    pub fn new(index: usize) -> Result<IntReg, RegIndexError> {
        if index < NUM_INT_REGS {
            Ok(IntReg(index as u8))
        } else {
            Err(RegIndexError { index })
        }
    }

    /// The register's index, in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 integer registers.
    pub fn all() -> impl Iterator<Item = IntReg> {
        (0..NUM_INT_REGS as u8).map(IntReg)
    }
}

impl FpReg {
    pub const F0: FpReg = FpReg(0);
    pub const F1: FpReg = FpReg(1);
    pub const F2: FpReg = FpReg(2);
    pub const F3: FpReg = FpReg(3);
    pub const F4: FpReg = FpReg(4);
    pub const F5: FpReg = FpReg(5);
    pub const F6: FpReg = FpReg(6);
    pub const F7: FpReg = FpReg(7);
    pub const F8: FpReg = FpReg(8);
    pub const F9: FpReg = FpReg(9);
    pub const F10: FpReg = FpReg(10);
    pub const F11: FpReg = FpReg(11);
    pub const F12: FpReg = FpReg(12);
    pub const F13: FpReg = FpReg(13);
    pub const F14: FpReg = FpReg(14);
    pub const F15: FpReg = FpReg(15);

    /// Creates a register from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`RegIndexError`] if `index >= 32`.
    pub fn new(index: usize) -> Result<FpReg, RegIndexError> {
        if index < NUM_FP_REGS {
            Ok(FpReg(index as u8))
        } else {
            Err(RegIndexError { index })
        }
    }

    /// The register's index, in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all 32 floating-point registers.
    pub fn all() -> impl Iterator<Item = FpReg> {
        (0..NUM_FP_REGS as u8).map(FpReg)
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_new_validates() {
        assert_eq!(IntReg::new(0).unwrap(), IntReg::ZERO);
        assert_eq!(IntReg::new(31).unwrap(), IntReg::RA);
        assert!(IntReg::new(32).is_err());
    }

    #[test]
    fn fp_reg_new_validates() {
        assert_eq!(FpReg::new(3).unwrap(), FpReg::F3);
        assert!(FpReg::new(32).is_err());
    }

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::T0.is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntReg::T0.to_string(), "r5");
        assert_eq!(FpReg::F2.to_string(), "f2");
        assert_eq!(
            IntReg::new(99).unwrap_err().to_string(),
            "register index 99 out of range (0..32)"
        );
    }

    #[test]
    fn all_iterators_cover_register_files() {
        assert_eq!(IntReg::all().count(), 32);
        assert_eq!(FpReg::all().count(), 32);
        assert_eq!(IntReg::all().next().unwrap(), IntReg::ZERO);
    }
}
