//! Assembled SRISC programs and their initial shared-memory images.

use crate::instr::{Instruction, WORD_BYTES};
use std::collections::BTreeMap;
use std::fmt;

/// An assembled, immutable SRISC program.
///
/// A program is a sequence of instructions addressed by instruction
/// index (the PC advances by one per instruction). All processors in a
/// multiprocessor run execute the *same* program, distinguishing
/// themselves by the processor id passed in `A0` — the SPMD style of
/// the paper's applications.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    /// Optional source-level names for instruction indices, used by the
    /// disassembler output.
    labels: BTreeMap<usize, String>,
}

impl Program {
    /// Creates a program from raw instructions.
    pub fn new(instructions: Vec<Instruction>) -> Program {
        Program {
            instructions,
            labels: BTreeMap::new(),
        }
    }

    /// Creates a program with named labels at instruction indices.
    pub fn with_labels(instructions: Vec<Instruction>, labels: BTreeMap<usize, String>) -> Program {
        Program {
            instructions,
            labels,
        }
    }

    /// The instruction at `pc`, or `None` past the end of the program.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<&Instruction> {
        self.instructions.get(pc)
    }

    /// All instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The label at an instruction index, if one was defined.
    pub fn label_at(&self, pc: usize) -> Option<&str> {
        self.labels.get(&pc).map(String::as_str)
    }

    /// All defined labels as `(instruction index, name)` pairs, in
    /// index order (used by the disassembler and the trace archiver).
    pub fn labels(&self) -> impl Iterator<Item = (usize, &str)> {
        self.labels.iter().map(|(&pc, name)| (pc, name.as_str()))
    }

    /// Renders the whole program as assembly text (the disassembler).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, instr) in self.instructions.iter().enumerate() {
            if let Some(name) = self.label_at(pc) {
                out.push_str(name);
                out.push_str(":\n");
            }
            out.push_str(&format!("  {pc:6}  {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// Initial contents of the shared memory, produced by a workload's
/// setup phase, plus a bump allocator for laying out shared data.
///
/// Addresses are byte addresses; allocations are aligned to the 8-byte
/// word size. The layout starts at address 0 and grows upward.
///
/// # Example
///
/// ```
/// use lookahead_isa::program::DataImage;
///
/// let mut image = DataImage::new();
/// let vec_base = image.alloc_words(4);      // 4 zero words
/// let pi = image.alloc_f64(3.14159);        // one initialized double
/// assert_eq!(vec_base % 8, 0);
/// assert_eq!(image.read_f64(pi), 3.14159);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataImage {
    words: Vec<u64>,
}

impl DataImage {
    /// Creates an empty image.
    pub fn new() -> DataImage {
        DataImage::default()
    }

    /// Total size of the image in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    /// Allocates `n` zeroed words and returns the byte address of the
    /// first.
    pub fn alloc_words(&mut self, n: usize) -> u64 {
        let addr = self.size_bytes();
        self.words.resize(self.words.len() + n, 0);
        addr
    }

    /// Allocates one word holding a signed integer.
    pub fn alloc_i64(&mut self, value: i64) -> u64 {
        let addr = self.alloc_words(1);
        self.write_i64(addr, value);
        addr
    }

    /// Allocates one word holding a double.
    pub fn alloc_f64(&mut self, value: f64) -> u64 {
        let addr = self.alloc_words(1);
        self.write_f64(addr, value);
        addr
    }

    /// Allocates a slice of integers, returning the base byte address.
    pub fn alloc_i64_slice(&mut self, values: &[i64]) -> u64 {
        let addr = self.alloc_words(values.len());
        for (i, v) in values.iter().enumerate() {
            self.write_i64(addr + i as u64 * WORD_BYTES, *v);
        }
        addr
    }

    /// Allocates a slice of doubles, returning the base byte address.
    pub fn alloc_f64_slice(&mut self, values: &[f64]) -> u64 {
        let addr = self.alloc_words(values.len());
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + i as u64 * WORD_BYTES, *v);
        }
        addr
    }

    /// Pads the allocation point up to a multiple of `align` bytes
    /// (must itself be a multiple of the word size). Useful to place
    /// data structures on cache-line boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a multiple of [`WORD_BYTES`].
    pub fn align_to(&mut self, align: u64) -> u64 {
        assert!(
            align > 0 && align.is_multiple_of(WORD_BYTES),
            "bad alignment {align}"
        );
        while !self.size_bytes().is_multiple_of(align) {
            self.alloc_words(1);
        }
        self.size_bytes()
    }

    fn word_index(addr: u64) -> usize {
        assert!(
            addr.is_multiple_of(WORD_BYTES),
            "unaligned address {addr:#x}"
        );
        (addr / WORD_BYTES) as usize
    }

    /// Reads the raw word at a byte address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    pub fn read_raw(&self, addr: u64) -> u64 {
        self.words[Self::word_index(addr)]
    }

    /// Writes the raw word at a byte address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    pub fn write_raw(&mut self, addr: u64, value: u64) {
        let idx = Self::word_index(addr);
        self.words[idx] = value;
    }

    /// Reads the word at a byte address as a signed integer.
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_raw(addr) as i64
    }

    /// Writes a signed integer at a byte address.
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_raw(addr, value as u64);
    }

    /// Reads the word at a byte address as a double.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_raw(addr))
    }

    /// Writes a double at a byte address.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_raw(addr, value.to_bits());
    }

    /// The raw words of the image, for handing to a simulator's memory.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// The raw words of the image, borrowed.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction;

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::new(vec![Instruction::Nop, Instruction::Halt]);
        assert_eq!(p.fetch(0), Some(&Instruction::Nop));
        assert_eq!(p.fetch(1), Some(&Instruction::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn disassemble_includes_labels() {
        let mut labels = BTreeMap::new();
        labels.insert(1, "loop".to_string());
        let p = Program::with_labels(vec![Instruction::Nop, Instruction::Halt], labels);
        let text = p.disassemble();
        assert!(text.contains("loop:"));
        assert!(text.contains("halt"));
        assert_eq!(p.label_at(1), Some("loop"));
        assert_eq!(p.label_at(0), None);
    }

    #[test]
    fn data_image_alloc_and_rw() {
        let mut img = DataImage::new();
        let a = img.alloc_words(2);
        let b = img.alloc_i64(-7);
        let c = img.alloc_f64(2.5);
        assert_eq!(a, 0);
        assert_eq!(b, 16);
        assert_eq!(c, 24);
        assert_eq!(img.read_i64(b), -7);
        assert_eq!(img.read_f64(c), 2.5);
        img.write_i64(a, 42);
        assert_eq!(img.read_i64(a), 42);
        assert_eq!(img.size_bytes(), 32);
    }

    #[test]
    fn data_image_slices() {
        let mut img = DataImage::new();
        let ints = img.alloc_i64_slice(&[1, 2, 3]);
        let flts = img.alloc_f64_slice(&[0.5, 1.5]);
        assert_eq!(img.read_i64(ints + 16), 3);
        assert_eq!(img.read_f64(flts + 8), 1.5);
    }

    #[test]
    fn align_to_cache_line() {
        let mut img = DataImage::new();
        img.alloc_words(1);
        let aligned = img.align_to(16);
        assert_eq!(aligned % 16, 0);
        assert_eq!(aligned, 16);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut img = DataImage::new();
        img.alloc_words(2);
        img.read_raw(4);
    }
}
