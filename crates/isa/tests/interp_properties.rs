//! Randomized property tests of the SRISC interpreter and assembler:
//! structured control flow compiles to programs whose execution matches
//! a direct Rust evaluation of the same computation.
//!
//! Inputs are driven by the in-tree deterministic PRNG
//! ([`XorShift64`]) rather than an external property-testing crate, so
//! every run explores the same fixed family of cases.

use lookahead_isa::interp::{Effect, FlatMemory, Machine, Memory};
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{AluOp, Assembler, BranchCond, IntReg, Program};

/// Evaluate a small arithmetic expression both through SRISC and in
/// Rust directly.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
}

const ALL_OPS: [Op; 8] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Rem,
    Op::And,
    Op::Or,
    Op::Xor,
];

impl Op {
    fn alu(self) -> AluOp {
        match self {
            Op::Add => AluOp::Add,
            Op::Sub => AluOp::Sub,
            Op::Mul => AluOp::Mul,
            Op::Div => AluOp::Div,
            Op::Rem => AluOp::Rem,
            Op::And => AluOp::And,
            Op::Or => AluOp::Or,
            Op::Xor => AluOp::Xor,
        }
    }

    fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            Op::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
        }
    }
}

fn run(p: &Program) -> Machine {
    let mut mem = FlatMemory::new(4096);
    let mut m = Machine::new();
    m.run(p, &mut mem, 10_000_000).expect("halts");
    m
}

/// A chain of ALU operations folded over two seed values matches the
/// wrapping Rust evaluation.
#[test]
fn alu_chains_match_rust() {
    let mut rng = XorShift64::seed_from_u64(0xA1);
    for case in 0..256 {
        let seed_a = rng.next_u64() as i64;
        let seed_b = rng.next_u64() as i64;
        let len = rng.range_usize(23) + 1;
        let ops: Vec<Op> = (0..len).map(|_| *rng.choose(&ALL_OPS)).collect();
        let mut a = Assembler::new();
        a.li(IntReg::T1, seed_a);
        a.li(IntReg::T2, seed_b);
        let mut expect = seed_a;
        for op in &ops {
            a.alu(op.alu(), IntReg::T1, IntReg::T1, IntReg::T2);
            expect = op.eval(expect, seed_b);
        }
        a.halt();
        let m = run(&a.assemble().unwrap());
        assert_eq!(m.ireg(IntReg::T1), expect, "case {case}: {ops:?}");
    }
    // Edge values the random draw might miss.
    for (seed_a, seed_b) in [(i64::MIN, -1), (i64::MIN, 0), (i64::MAX, i64::MIN)] {
        for op in ALL_OPS {
            let mut a = Assembler::new();
            a.li(IntReg::T1, seed_a);
            a.li(IntReg::T2, seed_b);
            a.alu(op.alu(), IntReg::T1, IntReg::T1, IntReg::T2);
            a.halt();
            let m = run(&a.assemble().unwrap());
            assert_eq!(m.ireg(IntReg::T1), op.eval(seed_a, seed_b), "{op:?}");
        }
    }
}

/// Counted loops execute exactly their trip count, for any bounds.
#[test]
fn for_range_trip_counts() {
    for start in (-50i64..50).step_by(7) {
        for end in (-50i64..50).step_by(9) {
            let mut a = Assembler::new();
            a.li(IntReg::T1, 0);
            a.for_range(IntReg::T0, start, end, |a| {
                a.addi(IntReg::T1, IntReg::T1, 1);
            });
            a.halt();
            let m = run(&a.assemble().unwrap());
            assert_eq!(m.ireg(IntReg::T1), (end - start).max(0), "{start}..{end}");
        }
    }
}

/// Nested structured control flow: count the pairs (i, j) with j < i,
/// both through SRISC and directly.
#[test]
fn nested_loops_and_branches() {
    for n in 0i64..20 {
        let mut a = Assembler::new();
        a.li(IntReg::T3, 0);
        a.for_range(IntReg::T0, 0, n, |a| {
            a.for_to(IntReg::T1, 0, IntReg::T0, |a| {
                a.if_then(BranchCond::Lt, IntReg::T1, IntReg::T0, |a| {
                    a.addi(IntReg::T3, IntReg::T3, 1);
                });
            });
        });
        a.halt();
        let m = run(&a.assemble().unwrap());
        assert_eq!(m.ireg(IntReg::T3), n * (n - 1) / 2, "n = {n}");
    }
}

/// `peek_addr` always predicts the address the subsequent step
/// actually touches.
#[test]
fn peek_addr_matches_effects() {
    let mut rng = XorShift64::seed_from_u64(0xA2);
    for case in 0..64 {
        let len = rng.range_usize(39) + 1;
        let words: Vec<u64> = (0..len).map(|_| rng.next_below(64)).collect();
        let writes = rng.next_bool();
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.li(IntReg::T1, 7);
        for &w in &words {
            if writes {
                a.store(IntReg::T1, IntReg::G0, (w * 8) as i64);
            } else {
                a.load(IntReg::T2, IntReg::G0, (w * 8) as i64);
            }
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(4096);
        let mut m = Machine::new();
        loop {
            let peeked = m.peek_addr(&p);
            match m.step(&p, &mut mem).unwrap() {
                Effect::Load { addr } | Effect::Store { addr } => {
                    assert_eq!(peeked, Some(addr), "case {case}");
                }
                Effect::Halt => break,
                _ => assert_eq!(peeked, None, "case {case}"),
            }
        }
    }
}

/// Stores land where they should and nowhere else.
#[test]
fn stores_are_word_precise() {
    let mut rng = XorShift64::seed_from_u64(0xA3);
    for _ in 0..64 {
        let word = rng.next_below(64);
        let value = rng.next_u64() as i64;
        let mut a = Assembler::new();
        a.li(IntReg::G0, 0);
        a.li(IntReg::T1, value);
        a.store(IntReg::T1, IntReg::G0, (word * 8) as i64);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = FlatMemory::new(64 * 8);
        let mut m = Machine::new();
        m.run(&p, &mut mem, 1000).unwrap();
        for w in 0..64u64 {
            let got = mem.read(w * 8);
            if w == word {
                assert_eq!(got, value as u64);
            } else {
                assert_eq!(got, 0);
            }
        }
    }
}

/// Assembled structured programs never contain out-of-range branch
/// targets (every target is a valid instruction index).
#[test]
fn assembled_targets_in_range() {
    for n in 1i64..12 {
        for m in 1i64..12 {
            let mut a = Assembler::new();
            a.for_range(IntReg::T0, 0, n, |a| {
                a.if_then_else(
                    BranchCond::Lt,
                    IntReg::T0,
                    IntReg::T1,
                    |a| a.addi(IntReg::T2, IntReg::T2, 1),
                    |a| {
                        a.for_range(IntReg::T3, 0, m, |a| {
                            a.addi(IntReg::T4, IntReg::T4, 1);
                        })
                    },
                );
            });
            a.halt();
            let p = a.assemble().unwrap();
            for ins in p.instructions() {
                use lookahead_isa::Instruction;
                let target = match ins {
                    Instruction::Branch { target, .. }
                    | Instruction::Jump { target }
                    | Instruction::JumpAndLink { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= p.len(), "target {t} beyond program {}", p.len());
                }
            }
            // And it runs to completion.
            run(&p);
        }
    }
}
