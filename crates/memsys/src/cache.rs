//! Direct-mapped write-back cache tag array.
//!
//! The cache tracks only *tags and states* — never data. Architectural
//! values live in the interpreter's flat memory; the simulators consult
//! the cache purely to classify accesses as hits or misses and to model
//! coherence, which is all the paper's fixed-latency memory model
//! needs.

use std::fmt;

/// MSI coherence state of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Not present (or invalidated by another processor's write).
    #[default]
    Invalid,
    /// Present, clean, possibly shared with other caches. Readable.
    Shared,
    /// Present, dirty, exclusive to this cache. Readable and writable.
    Modified,
}

impl LineState {
    /// Whether a read hits in this state.
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether a write hits in this state (ownership already held).
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

/// Geometry of a direct-mapped cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Set associativity; 1 = direct-mapped (the paper's choice).
    pub ways: usize,
}

impl CacheConfig {
    /// The paper's configuration: 64 KB, 16-byte lines, direct-mapped.
    pub const PAPER: CacheConfig = CacheConfig {
        size_bytes: 64 * 1024,
        line_bytes: 16,
        ways: 1,
    };

    /// Returns the configuration with a different associativity
    /// (1 = direct-mapped).
    pub fn with_ways(self, ways: usize) -> CacheConfig {
        CacheConfig { ways, ..self }
    }

    /// Number of lines in the cache.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.ways.max(1)
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// The set index for `addr`.
    #[inline]
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.num_sets() as u64) as usize
    }

    /// Validates that sizes are non-zero powers of two and the cache
    /// holds at least one full set.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes == 0 {
            return Err(CacheConfigError::LineNotPowerOfTwo(self.line_bytes));
        }
        if !self.size_bytes.is_power_of_two() || self.size_bytes < self.line_bytes {
            return Err(CacheConfigError::SizeNotPowerOfTwo(self.size_bytes));
        }
        if self.ways == 0
            || !self.num_lines().is_multiple_of(self.ways)
            || self.num_lines() < self.ways
        {
            return Err(CacheConfigError::BadAssociativity(self.ways));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::PAPER
    }
}

/// Error for invalid cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Line size must be a non-zero power of two.
    LineNotPowerOfTwo(u64),
    /// Capacity must be a power of two and at least one line.
    SizeNotPowerOfTwo(u64),
    /// Associativity must be non-zero and divide the line count.
    BadAssociativity(usize),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::LineNotPowerOfTwo(n) => {
                write!(f, "line size {n} is not a non-zero power of two")
            }
            CacheConfigError::SizeNotPowerOfTwo(n) => {
                write!(f, "cache size {n} is not a power of two at least one line")
            }
            CacheConfigError::BadAssociativity(w) => {
                write!(
                    f,
                    "associativity {w} does not divide the cache's line count"
                )
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    state: LineState,
    /// LRU stamp (larger = more recently touched).
    used: u64,
}

/// What happens to the victim line when a new line is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// The set was empty (or held the same line already).
    None,
    /// A clean line was silently dropped; its line address is reported
    /// so the coherence layer can forget it.
    Clean { line_addr: u64 },
    /// A dirty line was written back to memory.
    Writeback { line_addr: u64 },
}

/// A set-associative, write-back cache tag array with LRU replacement
/// (associativity 1 gives the paper's direct-mapped cache).
///
/// # Example
///
/// ```
/// use lookahead_memsys::cache::{CacheConfig, DirectCache, LineState};
///
/// let mut c = DirectCache::new(CacheConfig::PAPER);
/// assert_eq!(c.state_of(0x40), LineState::Invalid);
/// c.fill(0x40, LineState::Shared);
/// assert!(c.state_of(0x40).readable());
/// ```
#[derive(Debug, Clone)]
pub struct DirectCache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
}

impl DirectCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> DirectCache {
        config.validate().expect("invalid cache configuration");
        DirectCache {
            config,
            lines: vec![Line::default(); config.num_lines()],
            clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.config.set_index(addr);
        let ways = self.config.ways;
        set * ways..(set + 1) * ways
    }

    /// Index of the resident way holding `addr`'s line, if any.
    #[inline]
    fn find(&self, addr: u64) -> Option<usize> {
        let tag = self.config.line_addr(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].state != LineState::Invalid && self.lines[i].tag == tag)
    }

    /// The coherence state of the line containing `addr`
    /// ([`LineState::Invalid`] if it is not resident).
    pub fn state_of(&self, addr: u64) -> LineState {
        self.find(addr)
            .map(|i| self.lines[i].state)
            .unwrap_or(LineState::Invalid)
    }

    /// Records a use of the (resident) line for LRU purposes.
    pub fn touch(&mut self, addr: u64) {
        if let Some(i) = self.find(addr) {
            self.clock += 1;
            self.lines[i].used = self.clock;
        }
    }

    /// Changes the state of a *resident* line (e.g. Shared → Modified
    /// on an upgrade, Modified → Shared on a remote read).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident; callers must check
    /// [`DirectCache::state_of`] first.
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let line_addr = self.config.line_addr(addr);
        let i = self
            .find(addr)
            .unwrap_or_else(|| panic!("set_state on non-resident line {line_addr:#x}"));
        self.lines[i].state = state;
    }

    /// Invalidates the line containing `addr` if resident, returning
    /// its previous state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        self.find(addr).map(|i| {
            let old = self.lines[i].state;
            self.lines[i].state = LineState::Invalid;
            old
        })
    }

    /// Fills the line containing `addr` in the given state, evicting
    /// the LRU way if the set is full. Returns what happened to the
    /// victim.
    pub fn fill(&mut self, addr: u64, state: LineState) -> Eviction {
        let line_addr = self.config.line_addr(addr);
        self.clock += 1;
        let clock = self.clock;
        // Refill of a resident line.
        if let Some(i) = self.find(addr) {
            self.lines[i].state = state;
            self.lines[i].used = clock;
            return Eviction::None;
        }
        let range = self.set_range(addr);
        // Prefer an invalid way; otherwise evict the LRU.
        let victim = range
            .clone()
            .find(|&i| self.lines[i].state == LineState::Invalid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].used)
                    .expect("set has at least one way")
            });
        let line = &mut self.lines[victim];
        let eviction = match line.state {
            LineState::Invalid => Eviction::None,
            LineState::Modified => Eviction::Writeback {
                line_addr: line.tag,
            },
            LineState::Shared => Eviction::Clean {
                line_addr: line.tag,
            },
        };
        line.tag = line_addr;
        line.state = state;
        line.used = clock;
        eviction
    }

    /// Iterates over resident lines as `(line_address, state)` pairs.
    pub fn resident(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.lines
            .iter()
            .filter(|l| l.state != LineState::Invalid)
            .map(|l| (l.tag, l.state))
    }

    /// Number of resident (non-invalid) lines — for tests and stats.
    pub fn resident_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state != LineState::Invalid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DirectCache {
        // 4 lines of 16 bytes -> 64-byte cache.
        DirectCache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 1,
        })
    }

    #[test]
    fn geometry_helpers() {
        let c = CacheConfig::PAPER;
        assert_eq!(c.num_lines(), 4096);
        assert_eq!(c.line_addr(0x12345), 0x12340);
        assert_eq!(c.set_index(0x0), c.set_index(0x10000));
        assert_ne!(c.set_index(0x0), c.set_index(0x10));
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(CacheConfig {
            size_bytes: 48,
            line_bytes: 16,
            ways: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 12,
            ways: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 8,
            line_bytes: 16,
            ways: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig::PAPER.validate().is_ok());
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.state_of(0x20), LineState::Invalid);
        assert_eq!(c.fill(0x20, LineState::Shared), Eviction::None);
        assert_eq!(c.state_of(0x20), LineState::Shared);
        assert_eq!(c.state_of(0x28), LineState::Shared, "same line");
        assert_eq!(c.state_of(0x30), LineState::Invalid, "different line");
    }

    #[test]
    fn conflict_eviction_clean_and_dirty() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        // 0x40 maps to the same set (4 lines * 16 bytes = 64-byte wrap).
        assert_eq!(
            c.fill(0x40, LineState::Shared),
            Eviction::Clean { line_addr: 0x00 }
        );
        c.set_state(0x40, LineState::Modified);
        assert_eq!(
            c.fill(0x80, LineState::Shared),
            Eviction::Writeback { line_addr: 0x40 }
        );
    }

    #[test]
    fn refill_same_line_is_not_eviction() {
        let mut c = small();
        c.fill(0x10, LineState::Shared);
        assert_eq!(c.fill(0x10, LineState::Modified), Eviction::None);
        assert_eq!(c.state_of(0x10), LineState::Modified);
    }

    #[test]
    fn invalidate_reports_previous_state() {
        let mut c = small();
        c.fill(0x10, LineState::Modified);
        assert_eq!(c.invalidate(0x18), Some(LineState::Modified));
        assert_eq!(c.state_of(0x10), LineState::Invalid);
        assert_eq!(c.invalidate(0x10), None);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_requires_residency() {
        let mut c = small();
        c.set_state(0x10, LineState::Modified);
    }

    #[test]
    fn resident_line_count() {
        let mut c = small();
        assert_eq!(c.resident_lines(), 0);
        c.fill(0x00, LineState::Shared);
        c.fill(0x10, LineState::Modified);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn two_way_set_keeps_both_lines() {
        // 2 sets x 2 ways, 16B lines -> 64-byte cache. 0x00 and 0x40
        // map to set 0; direct-mapped they'd conflict, 2-way they
        // coexist.
        let mut c = DirectCache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        });
        assert_eq!(c.fill(0x00, LineState::Shared), Eviction::None);
        assert_eq!(c.fill(0x40, LineState::Shared), Eviction::None);
        assert!(c.state_of(0x00).readable());
        assert!(c.state_of(0x40).readable());
        // Third line in the set evicts the LRU (0x00).
        assert_eq!(
            c.fill(0x80, LineState::Shared),
            Eviction::Clean { line_addr: 0x00 }
        );
        assert!(c.state_of(0x40).readable());
        assert!(!c.state_of(0x00).readable());
    }

    #[test]
    fn lru_respects_touch() {
        let mut c = DirectCache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        });
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        c.touch(0x00); // 0x40 becomes LRU
        assert_eq!(
            c.fill(0x80, LineState::Shared),
            Eviction::Clean { line_addr: 0x40 }
        );
        assert!(c.state_of(0x00).readable());
    }

    #[test]
    fn bad_associativity_rejected() {
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 0
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 3
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 4
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn state_predicates() {
        assert!(!LineState::Invalid.readable());
        assert!(LineState::Shared.readable());
        assert!(!LineState::Shared.writable());
        assert!(LineState::Modified.writable());
    }
}
