//! Memory timing parameters.

/// Timing parameters of the simulated memory hierarchy.
///
/// The paper uses a fixed miss penalty — 50 cycles in the main
/// experiments, 100 cycles in the sensitivity study — and does not
/// model queueing or contention in the interconnect or at memory
/// modules (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryParams {
    /// Latency of a cache hit, in cycles (1 in the paper).
    pub hit_latency: u32,
    /// Latency of any cache miss, in cycles (50 or 100 in the paper).
    pub miss_penalty: u32,
}

impl MemoryParams {
    /// The paper's main configuration: 1-cycle hits, 50-cycle misses.
    pub const LATENCY_50: MemoryParams = MemoryParams {
        hit_latency: 1,
        miss_penalty: 50,
    };

    /// The paper's high-latency configuration: 100-cycle misses.
    pub const LATENCY_100: MemoryParams = MemoryParams {
        hit_latency: 1,
        miss_penalty: 100,
    };

    /// Creates parameters with an explicit miss penalty and 1-cycle hits.
    pub fn with_miss_penalty(miss_penalty: u32) -> MemoryParams {
        MemoryParams {
            hit_latency: 1,
            miss_penalty,
        }
    }

    /// Latency of an access given whether it missed.
    #[inline]
    pub fn latency(&self, miss: bool) -> u32 {
        if miss {
            self.miss_penalty
        } else {
            self.hit_latency
        }
    }
}

impl Default for MemoryParams {
    /// Defaults to the paper's main configuration ([`MemoryParams::LATENCY_50`]).
    fn default() -> MemoryParams {
        MemoryParams::LATENCY_50
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(MemoryParams::LATENCY_50.miss_penalty, 50);
        assert_eq!(MemoryParams::LATENCY_100.miss_penalty, 100);
        assert_eq!(MemoryParams::default(), MemoryParams::LATENCY_50);
    }

    #[test]
    fn latency_selects_on_miss() {
        let p = MemoryParams::with_miss_penalty(80);
        assert_eq!(p.latency(false), 1);
        assert_eq!(p.latency(true), 80);
    }
}
