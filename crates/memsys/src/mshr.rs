//! Miss status holding registers (MSHRs) for lockup-free caches.
//!
//! The paper's dynamically scheduled processor uses a lockup-free data
//! cache [Kroft 81] "that allows for multiple outstanding requests"
//! (§3.1). The MSHR file tracks those outstanding misses: a primary
//! miss allocates an entry; a secondary miss to the same line merges
//! into the existing entry and completes when it does; the file has a
//! configurable capacity (unbounded by default, matching the paper's
//! aggressive memory-system assumption).

use std::collections::BTreeMap;

/// A file of miss status holding registers keyed by line address.
///
/// Timing is expressed in absolute cycles: the caller supplies `now`
/// and the miss latency and gets back the completion time.
///
/// # Example
///
/// ```
/// use lookahead_memsys::mshr::MshrFile;
///
/// let mut mshrs = MshrFile::new(Some(2));
/// let t1 = mshrs.request(0x100, 10, 50).expect("allocates");
/// assert_eq!(t1, 60);
/// // Secondary miss to the same line merges:
/// assert_eq!(mshrs.request(0x100, 12, 50), Some(60));
/// // A different line allocates the second entry:
/// assert_eq!(mshrs.request(0x200, 12, 50), Some(62));
/// // The file is now full for new lines:
/// assert_eq!(mshrs.request(0x300, 13, 50), None);
/// mshrs.retire_completed(60);
/// assert_eq!(mshrs.request(0x300, 61, 50), Some(111));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    /// Maximum simultaneously outstanding lines; `None` = unbounded.
    capacity: Option<usize>,
    /// line address -> completion cycle
    outstanding: BTreeMap<u64, u64>,
    /// Peak simultaneously outstanding entries (for stats).
    peak: usize,
}

impl MshrFile {
    /// Creates an MSHR file with the given capacity (`None` for
    /// unbounded, the paper's aggressive assumption).
    pub fn new(capacity: Option<usize>) -> MshrFile {
        MshrFile {
            capacity,
            outstanding: BTreeMap::new(),
            peak: 0,
        }
    }

    /// Requests service for a miss on `line_addr` at cycle `now` with
    /// the given latency.
    ///
    /// Returns the completion cycle, or `None` if the file is full and
    /// the line has no outstanding entry (structural hazard: the caller
    /// must retry later). A request for a line already outstanding
    /// merges and returns the existing completion time.
    pub fn request(&mut self, line_addr: u64, now: u64, latency: u32) -> Option<u64> {
        if let Some(&done) = self.outstanding.get(&line_addr) {
            #[cfg(feature = "obs")]
            lookahead_obs::with(|r| {
                r.metrics.inc("memsys.mshr.merge_hits", 1);
                r.event(now, lookahead_obs::EventKind::MshrMerge { line: line_addr });
            });
            return Some(done);
        }
        if let Some(cap) = self.capacity {
            if self.outstanding.len() >= cap {
                #[cfg(feature = "obs")]
                lookahead_obs::with(|r| r.metrics.inc("memsys.mshr.full_stalls", 1));
                return None;
            }
        }
        let done = now + latency as u64;
        self.outstanding.insert(line_addr, done);
        self.peak = self.peak.max(self.outstanding.len());
        #[cfg(feature = "obs")]
        lookahead_obs::with(|r| {
            r.metrics.inc("memsys.mshr.allocations", 1);
            r.metrics
                .observe("memsys.mshr.outstanding", self.outstanding.len() as u64);
            r.event(now, lookahead_obs::EventKind::MshrAlloc { line: line_addr });
        });
        Some(done)
    }

    /// Completion time of the outstanding miss on `line_addr`, if any.
    pub fn completion_of(&self, line_addr: u64) -> Option<u64> {
        self.outstanding.get(&line_addr).copied()
    }

    /// Drops all entries whose completion time is `<= now`.
    pub fn retire_completed(&mut self, now: u64) {
        self.outstanding.retain(|_, &mut done| done > now);
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }

    /// Whether a new line cannot currently be allocated.
    pub fn is_full(&self) -> bool {
        self.capacity
            .is_some_and(|cap| self.outstanding.len() >= cap)
    }

    /// The earliest completion time among outstanding misses.
    pub fn next_completion(&self) -> Option<u64> {
        self.outstanding.values().min().copied()
    }

    /// The next cycle strictly after `now` at which an outstanding miss
    /// retires. `None` when nothing is outstanding or only entries
    /// already retirable at `now` remain (a `retire_completed(now)`
    /// would free them immediately). Discrete-event schedulers use
    /// this to decide when an MSHR-limited unit is next worth
    /// visiting.
    pub fn next_progress_time(&self, now: u64) -> Option<u64> {
        self.outstanding
            .values()
            .filter(|&&t| t > now)
            .min()
            .copied()
    }

    /// Peak number of simultaneously outstanding misses observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Clears all entries (e.g. between re-timed runs).
    pub fn reset(&mut self) {
        self.outstanding.clear();
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_miss_allocates() {
        let mut m = MshrFile::new(None);
        assert_eq!(m.request(0x40, 100, 50), Some(150));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(None);
        let t = m.request(0x40, 100, 50).unwrap();
        assert_eq!(m.request(0x40, 120, 50), Some(t), "merged, same completion");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_limits_distinct_lines() {
        let mut m = MshrFile::new(Some(1));
        assert!(m.request(0x40, 0, 50).is_some());
        assert!(m.is_full());
        assert_eq!(m.request(0x80, 0, 50), None);
        // Merge into the existing line still works at capacity.
        assert!(m.request(0x40, 10, 50).is_some());
    }

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(Some(1));
        m.request(0x40, 0, 50);
        m.retire_completed(49);
        assert!(m.is_full(), "not yet complete at 49");
        m.retire_completed(50);
        assert!(m.is_empty());
        assert_eq!(m.request(0x80, 51, 50), Some(101));
    }

    #[test]
    fn next_completion_is_minimum() {
        let mut m = MshrFile::new(None);
        m.request(0x40, 0, 50);
        m.request(0x80, 10, 50);
        assert_eq!(m.next_completion(), Some(50));
    }

    #[test]
    fn next_progress_skips_already_retirable_entries() {
        let mut m = MshrFile::new(None);
        m.request(0x40, 0, 50); // completes at 50
        m.request(0x80, 10, 50); // completes at 60
        assert_eq!(m.next_progress_time(0), Some(50));
        assert_eq!(m.next_progress_time(50), Some(60), "50 is retirable now");
        assert_eq!(m.next_progress_time(60), None);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MshrFile::new(None);
        m.request(0x40, 0, 50);
        m.request(0x80, 0, 50);
        m.retire_completed(1000);
        assert_eq!(m.peak(), 2);
        m.reset();
        assert_eq!(m.peak(), 0);
    }
}
