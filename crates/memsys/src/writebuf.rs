//! Write buffers with read bypass.
//!
//! Statically scheduled processors hide write latency by placing stores
//! in a write buffer and continuing execution (§2.2). How aggressively
//! the buffer may drain depends on the consistency model:
//!
//! * **Serialized** draining (SC, PC, and any model that keeps writes
//!   in order with respect to one another): one write is in flight at a
//!   time; the next issues when the previous completes.
//! * **Overlapped** draining (WO/RC between synchronization points):
//!   every write issues immediately and completes after its own
//!   latency, so multiple writes overlap.
//!
//! *Releases* (unlock, set-event, barrier arrival) are pushed with
//! [`WriteBuffer::push_release`]: they must not complete before every
//! earlier write has completed, even under overlapped draining —
//! that is precisely the release-consistency constraint.
//!
//! The buffer reports completion times; the caller decides what stalls
//! (a full buffer stalls the processor; a release does not).

use std::collections::VecDeque;
use std::fmt;

/// How pending writes drain to memory. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DrainPolicy {
    /// One write in flight at a time (writes serialize).
    Serialized,
    /// All writes in flight simultaneously (writes overlap).
    Overlapped,
}

/// Error returned by pushes into a full buffer; the caller should stall
/// the processor and retry after [`WriteBuffer::retire`] frees a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull;

impl fmt::Display for BufferFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "write buffer full")
    }
}

impl std::error::Error for BufferFull {}

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: u64,
    completes_at: u64,
}

/// A FIFO write buffer with deterministic completion times.
///
/// # Example
///
/// ```
/// use lookahead_memsys::writebuf::{DrainPolicy, WriteBuffer};
///
/// let mut wb = WriteBuffer::new(16, DrainPolicy::Overlapped);
/// let t1 = wb.push(0x100, 50, 0)?;   // completes at 50
/// let t2 = wb.push(0x200, 50, 1)?;   // overlaps: completes at 51
/// assert_eq!((t1, t2), (50, 51));
/// // A release waits for both:
/// let tr = wb.push_release(0x300, 1, 2)?;
/// assert_eq!(tr, 52);
/// # Ok::<(), lookahead_memsys::writebuf::BufferFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    policy: DrainPolicy,
    entries: VecDeque<Entry>,
    /// Completion time of the most recently pushed entry (survives
    /// retirement; used for serialized issue).
    last_completion: u64,
    /// Total cycles-weighted occupancy and pushes, for stats.
    pushes: u64,
    full_stalls: u64,
}

impl WriteBuffer {
    /// Creates a buffer of `capacity` entries (the paper uses 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DrainPolicy) -> WriteBuffer {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            capacity,
            policy,
            entries: VecDeque::with_capacity(capacity),
            last_completion: 0,
            pushes: 0,
            full_stalls: 0,
        }
    }

    /// The drain policy.
    pub fn policy(&self) -> DrainPolicy {
        self.policy
    }

    /// Number of pending writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer has no pending writes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push would fail right now.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pushes an ordinary write observed at cycle `now` with the given
    /// memory latency, returning its completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] if no slot is free; also counts the event
    /// for [`WriteBuffer::full_stalls`].
    pub fn push(&mut self, addr: u64, latency: u32, now: u64) -> Result<u64, BufferFull> {
        self.push_inner(addr, latency, now, false)
    }

    /// Pushes a release operation: under any policy it completes only
    /// after every previously pushed write has completed.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] if no slot is free.
    pub fn push_release(&mut self, addr: u64, latency: u32, now: u64) -> Result<u64, BufferFull> {
        self.push_inner(addr, latency, now, true)
    }

    fn push_inner(
        &mut self,
        addr: u64,
        latency: u32,
        now: u64,
        release: bool,
    ) -> Result<u64, BufferFull> {
        if self.is_full() {
            self.full_stalls += 1;
            #[cfg(feature = "obs")]
            lookahead_obs::with(|r| {
                r.metrics.inc("memsys.writebuf.full_stalls", 1);
                r.event(now, lookahead_obs::EventKind::WbFull);
            });
            return Err(BufferFull);
        }
        let start = match self.policy {
            DrainPolicy::Serialized => now.max(self.last_completion),
            DrainPolicy::Overlapped => {
                if release {
                    // A release is ordered after all pending writes.
                    now.max(self.pending_drain_time())
                } else {
                    now
                }
            }
        };
        let completes_at = start + latency as u64;
        self.entries.push_back(Entry { addr, completes_at });
        // FIFO retirement: a write cannot leave the buffer before the
        // one ahead of it, so clamp last_completion monotonically.
        self.last_completion = self.last_completion.max(completes_at);
        self.pushes += 1;
        #[cfg(feature = "obs")]
        lookahead_obs::with(|r| {
            r.metrics.inc("memsys.writebuf.pushes", 1);
            r.metrics
                .observe("memsys.writebuf.occupancy", self.entries.len() as u64);
            r.event(now, lookahead_obs::EventKind::WbPush { addr });
            r.event(completes_at, lookahead_obs::EventKind::WbDrain { addr });
        });
        Ok(completes_at)
    }

    /// Pops every entry at the head whose completion time is `<= now`
    /// (FIFO retirement). Returns how many retired.
    pub fn retire(&mut self, now: u64) -> usize {
        let mut n = 0;
        while let Some(head) = self.entries.front() {
            if head.completes_at <= now {
                self.entries.pop_front();
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Whether a pending write matches the exact word address — a
    /// subsequent read of that word can be serviced by forwarding from
    /// the buffer instead of going to memory.
    pub fn contains_word(&self, addr: u64) -> bool {
        self.entries.iter().any(|e| e.addr == addr)
    }

    /// Whether any pending write falls in the line containing `addr`.
    pub fn contains_line(&self, addr: u64, line_bytes: u64) -> bool {
        let line = addr & !(line_bytes - 1);
        self.entries
            .iter()
            .any(|e| (e.addr & !(line_bytes - 1)) == line)
    }

    /// Cycle by which every currently pending write will have
    /// completed (0 if empty).
    pub fn pending_drain_time(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.completes_at)
            .max()
            .unwrap_or(0)
    }

    /// Completion time of the head entry, if any — the next retirement
    /// opportunity.
    pub fn head_completion(&self) -> Option<u64> {
        self.entries.front().map(|e| e.completes_at)
    }

    /// The next cycle strictly after `now` at which the buffer's state
    /// changes on its own — the head entry's retirement, since
    /// retirement is FIFO. `None` when nothing is pending or the head
    /// is already retirable (a `retire(now)` would make progress
    /// immediately). Discrete-event schedulers use this to decide when
    /// a processor stalled on this buffer is next worth visiting.
    pub fn next_progress_time(&self, now: u64) -> Option<u64> {
        self.head_completion().filter(|&t| t > now)
    }

    /// Total writes pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Times a push failed because the buffer was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Empties the buffer and zeroes timing state (not statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.last_completion = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_writes_queue_behind_each_other() {
        let mut wb = WriteBuffer::new(16, DrainPolicy::Serialized);
        assert_eq!(wb.push(0x0, 50, 0).unwrap(), 50);
        assert_eq!(wb.push(0x8, 50, 1).unwrap(), 100, "waits for first");
        assert_eq!(wb.push(0x10, 1, 2).unwrap(), 101);
    }

    #[test]
    fn overlapped_writes_complete_independently() {
        let mut wb = WriteBuffer::new(16, DrainPolicy::Overlapped);
        assert_eq!(wb.push(0x0, 50, 0).unwrap(), 50);
        assert_eq!(wb.push(0x8, 50, 1).unwrap(), 51);
        assert_eq!(wb.push(0x10, 1, 2).unwrap(), 3);
    }

    #[test]
    fn release_orders_after_pending_writes() {
        let mut wb = WriteBuffer::new(16, DrainPolicy::Overlapped);
        wb.push(0x0, 50, 0).unwrap();
        wb.push(0x8, 50, 5).unwrap(); // completes at 55
        let t = wb.push_release(0x100, 1, 6).unwrap();
        assert_eq!(t, 56, "release issues after last write completes");
    }

    #[test]
    fn release_on_empty_buffer_issues_immediately() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        assert_eq!(wb.push_release(0x100, 50, 10).unwrap(), 60);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut wb = WriteBuffer::new(2, DrainPolicy::Serialized);
        wb.push(0x0, 50, 0).unwrap();
        wb.push(0x8, 50, 0).unwrap();
        assert_eq!(wb.push(0x10, 50, 0), Err(BufferFull));
        assert_eq!(wb.full_stalls(), 1);
        assert!(wb.is_full());
    }

    #[test]
    fn fifo_retirement() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        wb.push(0x0, 50, 0).unwrap(); // done at 50
        wb.push(0x8, 1, 1).unwrap(); // done at 2 but behind head
        assert_eq!(wb.retire(10), 0, "head not complete, nothing retires");
        assert_eq!(wb.retire(50), 2, "head completes, both leave");
        assert!(wb.is_empty());
    }

    #[test]
    fn forwarding_probes() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        wb.push(0x108, 50, 0).unwrap();
        assert!(wb.contains_word(0x108));
        assert!(!wb.contains_word(0x100));
        assert!(wb.contains_line(0x100, 16), "0x108 is in line 0x100");
        assert!(!wb.contains_line(0x110, 16));
    }

    #[test]
    fn serialized_issue_after_retirement_gap() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Serialized);
        wb.push(0x0, 50, 0).unwrap();
        wb.retire(50);
        // Pushed long after the previous completed: issues immediately.
        assert_eq!(wb.push(0x8, 50, 200).unwrap(), 250);
    }

    #[test]
    fn drain_time_and_head_completion() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        assert_eq!(wb.pending_drain_time(), 0);
        assert_eq!(wb.head_completion(), None);
        wb.push(0x0, 50, 0).unwrap();
        wb.push(0x8, 10, 1).unwrap();
        assert_eq!(wb.pending_drain_time(), 50);
        assert_eq!(wb.head_completion(), Some(50));
    }

    #[test]
    fn next_progress_is_head_retirement_or_nothing() {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        assert_eq!(wb.next_progress_time(0), None, "empty buffer");
        wb.push(0x0, 50, 0).unwrap(); // head completes at 50
        wb.push(0x8, 10, 1).unwrap(); // behind head (FIFO)
        assert_eq!(wb.next_progress_time(0), Some(50));
        assert_eq!(
            wb.next_progress_time(50),
            None,
            "head retirable at 50: progress is immediate, not future"
        );
        wb.retire(50);
        assert!(wb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        WriteBuffer::new(0, DrainPolicy::Serialized);
    }
}
