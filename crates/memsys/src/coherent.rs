//! Invalidation-based cache coherence across processors.
//!
//! [`CoherentSystem`] holds one write-back cache per processor
//! (direct-mapped in the paper's configuration, set-associative if
//! configured) and implements an MSI invalidation protocol over them,
//! matching the paper's "invalidation-based scheme" (§3.2):
//!
//! * a **read miss** fetches the line Shared, downgrading a remote
//!   Modified copy (which is written back);
//! * a **write** requires Modified: a write to a Shared line is an
//!   *upgrade* and a write to a non-resident line a *write miss*; both
//!   invalidate all remote copies and both cost the full miss penalty
//!   (the paper's fixed-latency model does not distinguish them).
//!
//! Misses are classified ([`MissKind`]) as cold (first reference to the
//! line by this processor), coherence (the line was invalidated by a
//! remote writer since we last held it), or replacement (lost to a
//! direct-mapped conflict). The paper notes its 64 KB caches are large
//! relative to the problem sizes, so misses "mainly reflect inherent
//! communication" — the classification lets us verify the same holds
//! for our scaled workloads.

use crate::cache::{CacheConfig, DirectCache, Eviction, LineState};
use std::collections::HashMap;

/// Why an access missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First access to this line by this processor.
    Cold,
    /// The line was held before but invalidated by a remote write
    /// (communication miss).
    Coherence,
    /// The line was held before but evicted by a conflicting fill.
    Replacement,
    /// Write to a Shared line: ownership upgrade (still a full-latency
    /// miss in the paper's model).
    Upgrade,
}

/// Result of a coherent access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Serviced by the local cache in one cycle.
    Hit,
    /// Required a memory/coherence transaction.
    Miss(MissKind),
}

impl AccessOutcome {
    /// Whether the access missed.
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss(_))
    }
}

/// Per-processor coherence statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    pub read_hits: u64,
    pub read_misses: u64,
    pub write_hits: u64,
    pub write_misses: u64,
    /// Write misses that were ownership upgrades of a Shared line.
    pub upgrades: u64,
    /// Misses caused by remote invalidation (communication).
    pub coherence_misses: u64,
    /// Misses caused by direct-mapped conflicts.
    pub replacement_misses: u64,
    /// Invalidations this processor's writes sent to remote caches.
    pub invalidations_sent: u64,
    /// Times this processor's lines were invalidated by remote writes.
    pub invalidations_received: u64,
    /// Dirty lines written back (eviction or remote read/write).
    pub writebacks: u64,
}

/// Counter path for a miss classification.
#[cfg(feature = "obs")]
fn miss_counter(kind: MissKind) -> &'static str {
    match kind {
        MissKind::Cold => "memsys.cache.miss.cold",
        MissKind::Coherence => "memsys.cache.miss.coherence",
        MissKind::Replacement => "memsys.cache.miss.replacement",
        MissKind::Upgrade => "memsys.cache.miss.upgrade",
    }
}

/// Reason a processor lost a line, used for miss classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LossReason {
    Invalidated,
    Evicted,
}

/// The caches holding a line, yielded in ascending id order; either
/// decoded from a directory bitmask or pre-collected by a probe walk.
enum Holders {
    Mask(u128),
    List(std::vec::IntoIter<usize>),
}

impl Iterator for Holders {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Holders::Mask(m) => {
                if *m == 0 {
                    return None;
                }
                let p = m.trailing_zeros() as usize;
                *m &= *m - 1;
                Some(p)
            }
            Holders::List(it) => it.next(),
        }
    }
}

/// An MSI-coherent collection of per-processor caches.
///
/// # Example
///
/// ```
/// use lookahead_memsys::coherent::{AccessOutcome, CoherentSystem, MissKind};
/// use lookahead_memsys::cache::CacheConfig;
///
/// let mut sys = CoherentSystem::new(2, CacheConfig::PAPER);
/// assert_eq!(sys.read(0, 0x100), AccessOutcome::Miss(MissKind::Cold));
/// assert_eq!(sys.read(0, 0x100), AccessOutcome::Hit);
/// // A remote write invalidates processor 0's copy...
/// assert_eq!(sys.write(1, 0x100), AccessOutcome::Miss(MissKind::Cold));
/// // ...so the next read is a coherence (communication) miss.
/// assert_eq!(sys.read(0, 0x100), AccessOutcome::Miss(MissKind::Coherence));
/// ```
#[derive(Debug, Clone)]
pub struct CoherentSystem {
    caches: Vec<DirectCache>,
    stats: Vec<CoherenceStats>,
    /// Per processor: lines we used to hold and why we lost them.
    lost_lines: Vec<HashMap<u64, LossReason>>,
    config: CacheConfig,
    /// Directory: line address → bitmask of the caches holding a copy.
    /// Kept exactly in sync with residency (set on fill, cleared on
    /// invalidation and eviction) so a miss consults only the actual
    /// sharers instead of probing every cache — the probe walk
    /// dominates miss cost on larger machines. `None` beyond 128
    /// processors, where every miss falls back to the full walk.
    sharers: Option<HashMap<u64, u128>>,
}

impl CoherentSystem {
    /// Creates a system of `num_procs` empty caches.
    ///
    /// # Panics
    ///
    /// Panics if `num_procs` is zero or the geometry is invalid.
    pub fn new(num_procs: usize, config: CacheConfig) -> CoherentSystem {
        assert!(num_procs > 0, "need at least one processor");
        CoherentSystem {
            caches: (0..num_procs).map(|_| DirectCache::new(config)).collect(),
            stats: vec![CoherenceStats::default(); num_procs],
            lost_lines: vec![HashMap::new(); num_procs],
            config,
            sharers: (num_procs <= 128).then(HashMap::new),
        }
    }

    /// Records that `proc` now holds a copy of `line`.
    fn sharers_add(&mut self, line: u64, proc: usize) {
        if let Some(s) = &mut self.sharers {
            *s.entry(line).or_insert(0) |= 1u128 << proc;
        }
    }

    /// Records that `proc` no longer holds a copy of `line`.
    fn sharers_remove(&mut self, line: u64, proc: usize) {
        if let Some(s) = &mut self.sharers {
            if let Some(m) = s.get_mut(&line) {
                *m &= !(1u128 << proc);
                if *m == 0 {
                    s.remove(&line);
                }
            }
        }
    }

    /// The caches other than `proc` holding a copy of `line`, in
    /// ascending id order — straight off the directory bitmask when
    /// present (no probing, no allocation), by full probe walk on
    /// machines too wide for the mask. The iterator borrows nothing,
    /// so callers can mutate caches and stats while draining it.
    fn remote_holders(&self, line: u64, proc: usize) -> Holders {
        match &self.sharers {
            Some(s) => Holders::Mask(s.get(&line).copied().unwrap_or(0) & !(1u128 << proc)),
            None => Holders::List(
                (0..self.caches.len())
                    .filter(|&other| {
                        other != proc && self.caches[other].state_of(line) != LineState::Invalid
                    })
                    .collect::<Vec<_>>()
                    .into_iter(),
            ),
        }
    }

    /// Number of processors (caches).
    pub fn num_procs(&self) -> usize {
        self.caches.len()
    }

    /// The shared cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics for processor `proc`.
    pub fn stats(&self, proc: usize) -> &CoherenceStats {
        &self.stats[proc]
    }

    /// The coherence state of `addr` in processor `proc`'s cache.
    pub fn state_of(&self, proc: usize, addr: u64) -> LineState {
        self.caches[proc].state_of(addr)
    }

    fn classify_miss(&self, proc: usize, line: u64) -> MissKind {
        match self.lost_lines[proc].get(&line) {
            Some(LossReason::Invalidated) => MissKind::Coherence,
            Some(LossReason::Evicted) => MissKind::Replacement,
            None => MissKind::Cold,
        }
    }

    fn note_eviction(&mut self, proc: usize, eviction: Eviction) {
        match eviction {
            Eviction::None => {}
            Eviction::Clean { line_addr } => {
                self.sharers_remove(line_addr, proc);
                self.lost_lines[proc].insert(line_addr, LossReason::Evicted);
            }
            Eviction::Writeback { line_addr } => {
                self.sharers_remove(line_addr, proc);
                self.lost_lines[proc].insert(line_addr, LossReason::Evicted);
                self.stats[proc].writebacks += 1;
                #[cfg(feature = "obs")]
                lookahead_obs::with(|r| r.metrics.inc("memsys.cache.writebacks", 1));
            }
        }
    }

    /// Performs a coherent read by processor `proc`.
    pub fn read(&mut self, proc: usize, addr: u64) -> AccessOutcome {
        let line = self.config.line_addr(addr);
        if self.caches[proc].state_of(addr).readable() {
            self.caches[proc].touch(addr);
            self.stats[proc].read_hits += 1;
            #[cfg(feature = "obs")]
            lookahead_obs::with(|r| r.metrics.inc("memsys.cache.read_hits", 1));
            return AccessOutcome::Hit;
        }
        let kind = self.classify_miss(proc, line);
        self.stats[proc].read_misses += 1;
        if kind == MissKind::Coherence {
            self.stats[proc].coherence_misses += 1;
        } else if kind == MissKind::Replacement {
            self.stats[proc].replacement_misses += 1;
        }
        #[cfg(feature = "obs")]
        lookahead_obs::with(|r| {
            r.metrics.inc("memsys.cache.read_misses", 1);
            r.metrics.inc(miss_counter(kind), 1);
        });
        // Downgrade a remote Modified copy (it supplies the data and
        // writes back).
        for other in self.remote_holders(line, proc) {
            if self.caches[other].state_of(addr) == LineState::Modified {
                self.caches[other].set_state(addr, LineState::Shared);
                self.stats[other].writebacks += 1;
            }
        }
        let eviction = self.caches[proc].fill(addr, LineState::Shared);
        self.note_eviction(proc, eviction);
        self.sharers_add(line, proc);
        self.lost_lines[proc].remove(&line);
        AccessOutcome::Miss(kind)
    }

    /// Performs a coherent write by processor `proc`.
    pub fn write(&mut self, proc: usize, addr: u64) -> AccessOutcome {
        let line = self.config.line_addr(addr);
        let local = self.caches[proc].state_of(addr);
        if local.writable() {
            self.caches[proc].touch(addr);
            self.stats[proc].write_hits += 1;
            #[cfg(feature = "obs")]
            lookahead_obs::with(|r| r.metrics.inc("memsys.cache.write_hits", 1));
            return AccessOutcome::Hit;
        }
        // Invalidate all remote copies.
        for other in self.remote_holders(line, proc) {
            if let Some(old) = self.caches[other].invalidate(addr) {
                self.stats[proc].invalidations_sent += 1;
                self.stats[other].invalidations_received += 1;
                #[cfg(feature = "obs")]
                lookahead_obs::with(|r| r.metrics.inc("memsys.cache.invalidations", 1));
                self.sharers_remove(line, other);
                self.lost_lines[other].insert(line, LossReason::Invalidated);
                if old == LineState::Modified {
                    self.stats[other].writebacks += 1;
                }
            }
        }
        let kind = if local == LineState::Shared {
            MissKind::Upgrade
        } else {
            self.classify_miss(proc, line)
        };
        self.stats[proc].write_misses += 1;
        match kind {
            MissKind::Upgrade => self.stats[proc].upgrades += 1,
            MissKind::Coherence => self.stats[proc].coherence_misses += 1,
            MissKind::Replacement => self.stats[proc].replacement_misses += 1,
            MissKind::Cold => {}
        }
        #[cfg(feature = "obs")]
        lookahead_obs::with(|r| {
            r.metrics.inc("memsys.cache.write_misses", 1);
            r.metrics.inc(miss_counter(kind), 1);
        });
        let eviction = self.caches[proc].fill(addr, LineState::Modified);
        self.note_eviction(proc, eviction);
        self.sharers_add(line, proc);
        self.lost_lines[proc].remove(&line);
        AccessOutcome::Miss(kind)
    }

    /// Checks the single-writer invariant: a line Modified in one cache
    /// is resident in no other cache. Intended for tests and debug
    /// assertions; cost is proportional to total resident lines.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated line.
    pub fn check_coherence_invariant(&self) -> Result<(), String> {
        let mut seen: HashMap<u64, (usize, LineState)> = HashMap::new();
        let mut resident_mask: HashMap<u64, u128> = HashMap::new();
        for (p, cache) in self.caches.iter().enumerate() {
            for (line, state) in cache.resident() {
                if let Some(&(q, prev)) = seen.get(&line) {
                    if state == LineState::Modified || prev == LineState::Modified {
                        return Err(format!(
                            "line {line:#x}: {prev:?} in cache {q} but {state:?} in cache {p}"
                        ));
                    }
                } else {
                    seen.insert(line, (p, state));
                }
                if p < 128 {
                    *resident_mask.entry(line).or_insert(0) |= 1u128 << p;
                }
            }
        }
        // The directory must mirror residency exactly: a stale bit
        // would spuriously invalidate, a missing bit would skip a
        // required invalidation or downgrade.
        if let Some(sharers) = &self.sharers {
            for (&line, &mask) in sharers {
                let actual = resident_mask.get(&line).copied().unwrap_or(0);
                if mask != actual {
                    return Err(format!(
                        "directory for line {line:#x}: mask {mask:#x} but residency {actual:#x}"
                    ));
                }
            }
            for (&line, &actual) in &resident_mask {
                if !sharers.contains_key(&line) {
                    return Err(format!(
                        "directory missing line {line:#x} held by mask {actual:#x}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> CoherentSystem {
        CoherentSystem::new(4, CacheConfig::PAPER)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut s = sys();
        assert_eq!(s.read(0, 0x40), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(s.read(0, 0x40), AccessOutcome::Hit);
        assert_eq!(s.read(0, 0x48), AccessOutcome::Hit, "same 16B line");
        assert_eq!(s.stats(0).read_hits, 2);
        assert_eq!(s.stats(0).read_misses, 1);
    }

    #[test]
    fn write_requires_ownership() {
        let mut s = sys();
        assert_eq!(s.write(0, 0x40), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(s.write(0, 0x40), AccessOutcome::Hit);
        assert_eq!(s.state_of(0, 0x40), LineState::Modified);
    }

    #[test]
    fn read_after_remote_write_is_coherence_miss() {
        let mut s = sys();
        s.read(0, 0x40);
        s.write(1, 0x40);
        assert_eq!(s.state_of(0, 0x40), LineState::Invalid);
        assert_eq!(s.read(0, 0x40), AccessOutcome::Miss(MissKind::Coherence));
        assert_eq!(s.stats(0).coherence_misses, 1);
        assert_eq!(s.stats(0).invalidations_received, 1);
        assert_eq!(s.stats(1).invalidations_sent, 1);
    }

    #[test]
    fn write_to_shared_line_is_upgrade() {
        let mut s = sys();
        s.read(0, 0x40);
        assert_eq!(s.write(0, 0x40), AccessOutcome::Miss(MissKind::Upgrade));
        assert_eq!(s.stats(0).upgrades, 1);
    }

    #[test]
    fn remote_read_downgrades_modified() {
        let mut s = sys();
        s.write(0, 0x40);
        assert_eq!(s.read(1, 0x40), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(s.state_of(0, 0x40), LineState::Shared);
        assert_eq!(s.state_of(1, 0x40), LineState::Shared);
        assert_eq!(s.stats(0).writebacks, 1);
    }

    #[test]
    fn conflict_eviction_classified_as_replacement() {
        let mut s = CoherentSystem::new(
            1,
            CacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 1,
            },
        );
        s.read(0, 0x00);
        s.read(0, 0x40); // same set, evicts 0x00
        assert_eq!(s.read(0, 0x00), AccessOutcome::Miss(MissKind::Replacement));
        assert_eq!(s.stats(0).replacement_misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut s = CoherentSystem::new(
            1,
            CacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 1,
            },
        );
        s.write(0, 0x00);
        s.read(0, 0x40); // evicts dirty 0x00
        assert_eq!(s.stats(0).writebacks, 1);
    }

    #[test]
    fn single_writer_invariant_via_api() {
        let mut s = sys();
        s.write(0, 0x40);
        s.write(1, 0x40);
        s.write(2, 0x40);
        // Only the last writer may hold the line, and in Modified.
        assert_eq!(s.state_of(0, 0x40), LineState::Invalid);
        assert_eq!(s.state_of(1, 0x40), LineState::Invalid);
        assert_eq!(s.state_of(2, 0x40), LineState::Modified);
    }

    #[test]
    fn write_after_remote_write_is_coherence_miss() {
        let mut s = sys();
        s.write(0, 0x40);
        s.write(1, 0x40);
        assert_eq!(s.write(0, 0x40), AccessOutcome::Miss(MissKind::Coherence));
    }

    mod properties {
        use super::*;
        use lookahead_isa::rng::XorShift64;

        /// Random access sequences never violate the single-writer
        /// invariant, and hit/miss counts always sum to the number of
        /// accesses issued.
        #[test]
        fn random_accesses_preserve_coherence() {
            let mut rng = XorShift64::seed_from_u64(0xF2);
            for case in 0..128 {
                let len = rng.range_usize(299) + 1;
                let mut s = CoherentSystem::new(
                    4,
                    CacheConfig {
                        size_bytes: 256,
                        line_bytes: 16,
                        ways: 1,
                    },
                );
                let mut issued = [0u64; 4];
                for _ in 0..len {
                    let proc = rng.range_usize(4);
                    let is_write = rng.next_bool();
                    let addr = rng.next_below(512) * 8;
                    if is_write {
                        s.write(proc, addr);
                    } else {
                        s.read(proc, addr);
                    }
                    issued[proc] += 1;
                    if let Err(e) = s.check_coherence_invariant() {
                        panic!("case {case}: coherence violated: {e}");
                    }
                }
                for (p, &n) in issued.iter().enumerate() {
                    let st = s.stats(p);
                    assert_eq!(
                        st.read_hits + st.read_misses + st.write_hits + st.write_misses,
                        n,
                        "case {case} proc {p}"
                    );
                }
            }
        }
    }
}
