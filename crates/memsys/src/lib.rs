//! Memory-system substrates for the Lookahead simulators.
//!
//! The paper's simulated memory system (§3.1–3.2) consists of:
//!
//! * per-processor **64 KB direct-mapped write-back data caches** with
//!   16-byte lines, kept coherent by an **invalidation-based** scheme
//!   ([`cache`], [`coherent`]);
//! * **lockup-free** caches in the dynamically scheduled processor,
//!   allowing multiple outstanding misses ([`mshr`]);
//! * **write buffers** that let the processor proceed past pending
//!   writes, with reads allowed to bypass them ([`writebuf`]);
//! * a fixed-latency memory: 1 cycle on a hit, a constant penalty
//!   (50 or 100 cycles) on any miss, with no contention modelled
//!   ([`params`]).
//!
//! These components are shared between the multiprocessor trace
//! generator (`lookahead-multiproc`) and the processor timing models
//! (`lookahead-core`). Architectural *data* is kept separately (in the
//! interpreter's flat memory); the structures here track only tags,
//! states and timing, which is exactly what the paper's trace-driven
//! methodology requires.

pub mod cache;
pub mod coherent;
pub mod mshr;
pub mod params;
pub mod writebuf;

pub use cache::{CacheConfig, DirectCache, LineState};
pub use coherent::{AccessOutcome, CoherenceStats, CoherentSystem, MissKind};
pub use mshr::MshrFile;
pub use params::MemoryParams;
pub use writebuf::{DrainPolicy, WriteBuffer};
