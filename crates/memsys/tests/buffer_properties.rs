//! Randomized property tests of the write buffer and MSHR file timing
//! contracts, driven by the in-tree deterministic PRNG.

use lookahead_isa::rng::XorShift64;
use lookahead_memsys::{DrainPolicy, MshrFile, WriteBuffer};

/// Completion times reported by a write buffer never decrease for
/// later pushes under serialized draining, and an overlapped buffer's
/// completions are never later than a serialized one's for the same
/// pushes.
#[test]
fn overlapped_never_slower_than_serialized() {
    let mut rng = XorShift64::seed_from_u64(0xB1);
    for case in 0..256 {
        let len = rng.range_usize(39) + 1;
        let pushes: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.next_below(8), rng.range_i64(1, 60) as u32))
            .collect();
        let mut ser = WriteBuffer::new(64, DrainPolicy::Serialized);
        let mut ovl = WriteBuffer::new(64, DrainPolicy::Overlapped);
        let mut now = 0u64;
        let mut last_ser = 0u64;
        for (gap, lat) in pushes {
            now += gap;
            ser.retire(now);
            ovl.retire(now);
            let s = ser.push(0x100, lat, now).unwrap();
            let o = ovl.push(0x100, lat, now).unwrap();
            assert!(
                o <= s,
                "case {case}: overlapped {o} later than serialized {s}"
            );
            assert!(
                s >= last_ser,
                "case {case}: serialized completions must be monotone"
            );
            last_ser = s;
            assert!(
                o >= now + lat as u64,
                "case {case}: cannot finish before its own latency"
            );
        }
    }
}

/// A release never completes before any previously pushed write, under
/// either policy.
#[test]
fn release_is_ordered_after_all_writes() {
    let mut rng = XorShift64::seed_from_u64(0xB2);
    for case in 0..256 {
        let len = rng.range_usize(19) + 1;
        let lats: Vec<u32> = (0..len).map(|_| rng.range_i64(1, 80) as u32).collect();
        let policy = if rng.next_bool() {
            DrainPolicy::Serialized
        } else {
            DrainPolicy::Overlapped
        };
        let mut wb = WriteBuffer::new(64, policy);
        let mut latest = 0u64;
        for (i, lat) in lats.iter().enumerate() {
            let t = wb.push(i as u64 * 8, *lat, i as u64).unwrap();
            latest = latest.max(t);
        }
        let rel = wb.push_release(0x1000, 1, lats.len() as u64).unwrap();
        assert!(
            rel > latest - 1,
            "case {case}: release {rel} before a pending write {latest}"
        );
    }
}

/// The buffer never holds more than its capacity, and FIFO retirement
/// frees pushes in order.
#[test]
fn capacity_is_respected() {
    let mut rng = XorShift64::seed_from_u64(0xB3);
    for _case in 0..256 {
        let len = rng.range_usize(59) + 1;
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        let mut now = 0u64;
        for _ in 0..len {
            let advance = rng.next_bool();
            let lat = rng.range_i64(1, 60) as u32;
            if advance {
                now += 40;
                wb.retire(now);
            }
            if !wb.is_full() {
                wb.push(0x40, lat, now).unwrap();
            } else {
                assert!(wb.push(0x40, lat, now).is_err());
            }
            assert!(wb.len() <= 4);
        }
    }
}

/// MSHR merging: requests to the same line always return the same
/// completion while outstanding; distinct lines respect capacity.
#[test]
fn mshr_merge_and_capacity() {
    let mut rng = XorShift64::seed_from_u64(0xB4);
    for case in 0..256 {
        let len = rng.range_usize(49) + 1;
        let cap = rng.range_usize(4) + 1;
        let mut m = MshrFile::new(Some(cap));
        let mut outstanding: std::collections::HashMap<u64, u64> = Default::default();
        let mut now = 0u64;
        for _ in 0..len {
            let line_idx = rng.next_below(8);
            now += 1;
            m.retire_completed(now);
            outstanding.retain(|_, &mut t| t > now);
            let line = line_idx * 16;
            match m.request(line, now, 50) {
                Some(done) => {
                    if let Some(&prev) = outstanding.get(&line) {
                        assert_eq!(done, prev, "case {case}: merge must reuse completion");
                    } else {
                        assert_eq!(done, now + 50);
                        assert!(outstanding.len() < cap);
                        outstanding.insert(line, done);
                    }
                }
                None => {
                    assert!(
                        outstanding.len() >= cap,
                        "case {case}: refused below capacity"
                    );
                    assert!(!outstanding.contains_key(&line));
                }
            }
            assert!(m.len() <= cap);
        }
    }
}
