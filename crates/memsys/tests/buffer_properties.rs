//! Property tests of the write buffer and MSHR file timing contracts.

use lookahead_memsys::{DrainPolicy, MshrFile, WriteBuffer};
use proptest::prelude::*;

proptest! {
    /// Completion times reported by a write buffer never decrease for
    /// later pushes under serialized draining, and an overlapped
    /// buffer's completions are never later than a serialized one's
    /// for the same pushes.
    #[test]
    fn overlapped_never_slower_than_serialized(
        pushes in proptest::collection::vec((0u64..8, 1u32..60), 1..40)
    ) {
        let mut ser = WriteBuffer::new(64, DrainPolicy::Serialized);
        let mut ovl = WriteBuffer::new(64, DrainPolicy::Overlapped);
        let mut now = 0u64;
        let mut last_ser = 0u64;
        for (gap, lat) in pushes {
            now += gap;
            ser.retire(now);
            ovl.retire(now);
            let s = ser.push(0x100, lat, now).unwrap();
            let o = ovl.push(0x100, lat, now).unwrap();
            prop_assert!(o <= s, "overlapped {o} later than serialized {s}");
            prop_assert!(s >= last_ser, "serialized completions must be monotone");
            last_ser = s;
            prop_assert!(o >= now + lat as u64, "cannot finish before its own latency");
        }
    }

    /// A release never completes before any previously pushed write,
    /// under either policy.
    #[test]
    fn release_is_ordered_after_all_writes(
        lats in proptest::collection::vec(1u32..80, 1..20),
        policy_ser in any::<bool>(),
    ) {
        let policy = if policy_ser { DrainPolicy::Serialized } else { DrainPolicy::Overlapped };
        let mut wb = WriteBuffer::new(64, policy);
        let mut latest = 0u64;
        for (i, lat) in lats.iter().enumerate() {
            let t = wb.push(i as u64 * 8, *lat, i as u64).unwrap();
            latest = latest.max(t);
        }
        let rel = wb.push_release(0x1000, 1, lats.len() as u64).unwrap();
        prop_assert!(rel > latest - 1, "release {rel} before a pending write {latest}");
    }

    /// The buffer never holds more than its capacity, and FIFO
    /// retirement frees pushes in order.
    #[test]
    fn capacity_is_respected(
        ops in proptest::collection::vec((any::<bool>(), 1u32..60), 1..60)
    ) {
        let mut wb = WriteBuffer::new(4, DrainPolicy::Overlapped);
        let mut now = 0u64;
        for (advance, lat) in ops {
            if advance {
                now += 40;
                wb.retire(now);
            }
            if !wb.is_full() {
                wb.push(0x40, lat, now).unwrap();
            } else {
                prop_assert!(wb.push(0x40, lat, now).is_err());
            }
            prop_assert!(wb.len() <= 4);
        }
    }

    /// MSHR merging: requests to the same line always return the same
    /// completion while outstanding; distinct lines respect capacity.
    #[test]
    fn mshr_merge_and_capacity(
        lines in proptest::collection::vec(0u64..8, 1..50),
        cap in 1usize..5,
    ) {
        let mut m = MshrFile::new(Some(cap));
        let mut outstanding: std::collections::HashMap<u64, u64> = Default::default();
        let mut now = 0u64;
        for line_idx in lines {
            now += 1;
            m.retire_completed(now);
            outstanding.retain(|_, &mut t| t > now);
            let line = line_idx * 16;
            match m.request(line, now, 50) {
                Some(done) => {
                    if let Some(&prev) = outstanding.get(&line) {
                        prop_assert_eq!(done, prev, "merge must reuse completion");
                    } else {
                        prop_assert_eq!(done, now + 50);
                        prop_assert!(outstanding.len() < cap);
                        outstanding.insert(line, done);
                    }
                }
                None => {
                    prop_assert!(outstanding.len() >= cap, "refused below capacity");
                    prop_assert!(!outstanding.contains_key(&line));
                }
            }
            prop_assert!(m.len() <= cap);
        }
    }
}
