//! LOCUS — standard-cell wire routing over a shared cost array.
//!
//! The paper's LOCUS (LocusRoute) routes the wires of a standard-cell
//! circuit over a *cost array* that counts the wires running through
//! each routing cell; wires are routed in parallel, each evaluating
//! several candidate paths and marking the cheapest into the shared
//! array. Our kernel routes each two-pin wire by evaluating its two
//! L-shaped candidate paths (horizontal-first and vertical-first):
//! summing the current cost cells along each (bursts of reads over
//! shared data), choosing the cheaper (a data-dependent branch), then
//! incrementing the cells of the winner (read-modify-writes that
//! invalidate other processors' copies — LOCUS's communication). A
//! lock-protected global tally is updated once per wire, matching the
//! paper's modest lock count (Table 2).
//!
//! As in the real LocusRoute, concurrent wires read the cost array
//! *while others update it*, so the chosen paths — and hence the exact
//! final array — depend on the interleaving. The verifier therefore
//! checks interleaving-independent invariants (every candidate pair
//! covers the same number of cells, so the array total is exact), and
//! for single-processor builds it checks the full array against the
//! reference bit for bit.

use crate::{BuiltWorkload, Workload};
use lookahead_isa::program::DataImage;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{AluOp, Assembler, BranchCond, IntReg};

/// Globals block layout (byte offsets).
const G_LOCK: i64 = 0;
const G_ROUTED: i64 = 16;
const G_TOTAL_COST: i64 = 24;
const G_BARRIER: i64 = 32;

/// The LOCUS wire-routing kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Locus {
    /// Number of two-pin wires to route (paper: 1,266 multi-pin wires).
    pub wires: usize,
    /// Cost-array columns (paper: 481).
    pub cols: usize,
    /// Cost-array rows (paper: 18).
    pub rows: usize,
    /// Wire-placement seed.
    pub seed: u64,
}

impl Default for Locus {
    /// The experiment-harness size: 300 wires over a 160×18 array.
    fn default() -> Locus {
        Locus {
            wires: 300,
            cols: 160,
            rows: 18,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Wire {
    x1: i64,
    y1: i64,
    x2: i64,
    y2: i64,
}

impl Wire {
    /// Number of cells on either candidate path.
    fn cells(&self) -> i64 {
        (self.x2 - self.x1).abs() + (self.y2 - self.y1).abs() + 1
    }
}

impl Locus {
    /// A size small enough for unit tests.
    pub fn small() -> Locus {
        Locus {
            wires: 40,
            cols: 32,
            rows: 8,
            seed: 11,
        }
    }

    /// The paper's size: 1,266 wires over a 481×18 cost array.
    pub fn paper() -> Locus {
        Locus {
            wires: 1_266,
            cols: 481,
            rows: 18,
            seed: 11,
        }
    }

    /// Beyond the paper: 1,900 wires over a 640×18 cost array, sized
    /// for the streamed bounded-memory pipeline.
    pub fn large() -> Locus {
        Locus {
            wires: 1_900,
            cols: 640,
            rows: 18,
            seed: 11,
        }
    }

    fn wire_list(&self) -> Vec<Wire> {
        let mut rng = XorShift64::seed_from_u64(self.seed);
        (0..self.wires)
            .map(|_| {
                // Standard-cell wires are mostly short and horizontal:
                // pick a span of bounded width.
                let x1 = rng.range_i64(0, self.cols as i64);
                let span = (self.cols as i64 / 4).max(2);
                let x2 = (x1 + rng.range_i64_inclusive(-span, span)).clamp(0, self.cols as i64 - 1);
                let y1 = rng.range_i64(0, self.rows as i64);
                let y2 = rng.range_i64(0, self.rows as i64);
                Wire { x1, y1, x2, y2 }
            })
            .collect()
    }

    /// Reference single-threaded routing (wires in index order) with
    /// the identical cost and tie-break rules. Returns the final cost
    /// array and the total cost tally.
    fn reference(&self, wires: &[Wire]) -> (Vec<i64>, i64) {
        let mut cost = vec![0i64; self.cols * self.rows];
        let mut total = 0i64;
        for w in wires {
            let sum_path = |cost: &[i64], horiz_first: bool| -> i64 {
                let mut s = 0;
                for (x, y) in self.path_cells(w, horiz_first) {
                    s += cost[(y * self.cols as i64 + x) as usize];
                }
                s
            };
            let sh = sum_path(&cost, true);
            let sv = sum_path(&cost, false);
            let horiz = sh <= sv;
            total += if horiz { sh } else { sv };
            for (x, y) in self.path_cells(w, horiz) {
                cost[(y * self.cols as i64 + x) as usize] += 1;
            }
        }
        (cost, total)
    }

    /// The cells of a candidate L path, in walk order.
    fn path_cells(&self, w: &Wire, horiz_first: bool) -> Vec<(i64, i64)> {
        let mut cells = Vec::new();
        let step = |a: i64, b: i64| if b >= a { 1 } else { -1 };
        if horiz_first {
            let mut x = w.x1;
            loop {
                cells.push((x, w.y1));
                if x == w.x2 {
                    break;
                }
                x += step(w.x1, w.x2);
            }
            let mut y = w.y1;
            while y != w.y2 {
                y += step(w.y1, w.y2);
                cells.push((w.x2, y));
            }
        } else {
            let mut y = w.y1;
            loop {
                cells.push((w.x1, y));
                if y == w.y2 {
                    break;
                }
                y += step(w.y1, w.y2);
            }
            let mut x = w.x1;
            while x != w.x2 {
                x += step(w.x1, w.x2);
                cells.push((x, w.y2));
            }
        }
        cells
    }
}

impl Workload for Locus {
    fn name(&self) -> &'static str {
        "LOCUS"
    }

    fn build(&self, num_procs: usize) -> BuiltWorkload {
        assert!(self.wires >= 1 && self.cols >= 2 && self.rows >= 2);
        let wires = self.wire_list();

        // ---- shared memory layout -------------------------------------
        let mut image = DataImage::new();
        image.align_to(16);
        let cost_base = image.alloc_words(self.cols * self.rows);
        image.align_to(16);
        let wires_base = image.alloc_words(self.wires * 4);
        for (i, w) in wires.iter().enumerate() {
            let rec = wires_base + (i * 32) as u64;
            image.write_i64(rec, w.x1);
            image.write_i64(rec + 8, w.y1);
            image.write_i64(rec + 16, w.x2);
            image.write_i64(rec + 24, w.y2);
        }
        image.align_to(16);
        let globals = image.alloc_words(8);

        // ---- program ----------------------------------------------------
        // G0 cost base, G1 wires base, G2 wire count, G3 globals,
        // G4 cols. S1 wire index; S2..S5 = x1,y1,x2,y2;
        // T1 x, T2 y, T3 step, T4 addr, T5 value, T6 sum_h, T7 sum_v.
        use IntReg as R;
        let mut b = Assembler::new();
        b.li(R::G0, cost_base as i64);
        b.li(R::G1, wires_base as i64);
        b.li(R::G2, self.wires as i64);
        b.li(R::G3, globals as i64);
        b.li(R::G4, self.cols as i64);

        // Accumulate or increment the cell at (x=T1, y=T2).
        // `inc` chooses increment (routing) vs accumulate into `acc`.
        let touch_cell = |b: &mut Assembler, inc: bool, acc: IntReg| {
            b.mul(R::T4, R::T2, R::G4);
            b.add(R::T4, R::T4, R::T1);
            b.alu_imm(AluOp::Sll, R::T4, R::T4, 3);
            b.add(R::T4, R::G0, R::T4);
            b.load(R::T5, R::T4, 0);
            if inc {
                b.addi(R::T5, R::T5, 1);
                b.store(R::T5, R::T4, 0);
            } else {
                b.add(acc, acc, R::T5);
            }
        };

        // Walk one L path. `horiz_first` fixes the leg order; `inc`
        // selects increment vs sum into `acc`.
        let walk = |b: &mut Assembler, horiz_first: bool, inc: bool, acc: IntReg| {
            if !inc {
                b.li(acc, 0);
            }
            let (lead_cur, lead_end, lead_fix) = if horiz_first {
                (R::S2, R::S4, R::S3) // x from x1 to x2 at y1
            } else {
                (R::S3, R::S5, R::S2) // y from y1 to y2 at x1
            };
            // Leading leg, inclusive of both endpoints.
            if horiz_first {
                b.mv(R::T1, lead_cur);
                b.mv(R::T2, lead_fix);
            } else {
                b.mv(R::T2, lead_cur);
                b.mv(R::T1, lead_fix);
            }
            let cur = if horiz_first { R::T1 } else { R::T2 };
            b.li(R::T3, 1);
            b.if_then(BranchCond::Lt, lead_end, lead_cur, |b| {
                b.li(R::T3, -1);
            });
            let head = b.label();
            let tail_start = b.label();
            b.bind(head).expect("fresh label");
            touch_cell(b, inc, acc);
            b.branch(BranchCond::Eq, cur, lead_end, tail_start);
            b.add(cur, cur, R::T3);
            b.jump(head);
            b.bind(tail_start).expect("fresh label");
            // Trailing leg, exclusive of the corner.
            let (tail_cur_src, tail_end) = if horiz_first {
                (R::S3, R::S5) // y from y1 to y2 at x2 (T1 == x2 already)
            } else {
                (R::S2, R::S4) // x from x1 to x2 at y2 (T2 == y2 already)
            };
            let tcur = if horiz_first { R::T2 } else { R::T1 };
            b.mv(tcur, tail_cur_src);
            b.li(R::T3, 1);
            b.if_then(BranchCond::Lt, tail_end, tail_cur_src, |b| {
                b.li(R::T3, -1);
            });
            let thead = b.label();
            let tdone = b.label();
            b.bind(thead).expect("fresh label");
            b.branch(BranchCond::Eq, tcur, tail_end, tdone);
            b.add(tcur, tcur, R::T3);
            touch_cell(b, inc, acc);
            b.jump(thead);
            b.bind(tdone).expect("fresh label");
        };

        // Route my (interleaved) share of the wires.
        b.for_step(R::S1, R::A0, R::G2, num_procs as i64, |b| {
            b.muli(R::S6, R::S1, 32);
            b.add(R::S6, R::G1, R::S6);
            b.load(R::S2, R::S6, 0); // x1
            b.load(R::S3, R::S6, 8); // y1
            b.load(R::S4, R::S6, 16); // x2
            b.load(R::S5, R::S6, 24); // y2
            walk(b, true, false, R::T6); // sum horizontal-first
            walk(b, false, false, R::T7); // sum vertical-first
                                          // Choose the cheaper path (ties go horizontal) and mark it.
            b.if_then_else(
                BranchCond::Le,
                R::T6,
                R::T7,
                |b| {
                    b.mv(R::S7, R::T6);
                    walk(b, true, true, R::ZERO);
                },
                |b| {
                    b.mv(R::S7, R::T7);
                    walk(b, false, true, R::ZERO);
                },
            );
            // Global tally under the lock.
            b.lock(R::G3, G_LOCK);
            b.load(R::T0, R::G3, G_ROUTED);
            b.addi(R::T0, R::T0, 1);
            b.store(R::T0, R::G3, G_ROUTED);
            b.load(R::T0, R::G3, G_TOTAL_COST);
            b.add(R::T0, R::T0, R::S7);
            b.store(R::T0, R::G3, G_TOTAL_COST);
            b.unlock(R::G3, G_LOCK);
        });
        b.barrier(R::G3, G_BARRIER);
        b.halt();
        let program = b.assemble().expect("LOCUS assembles");

        // ---- verifier ---------------------------------------------------
        let me = *self;
        let expected_cells: i64 = wires.iter().map(Wire::cells).sum();
        let single_proc_ref = if num_procs == 1 {
            Some(self.reference(&wires))
        } else {
            None
        };
        let verify = move |mem: &lookahead_isa::interp::FlatMemory| -> Result<(), String> {
            let routed = mem.read_i64(globals + G_ROUTED as u64);
            if routed != me.wires as i64 {
                return Err(format!("routed {routed} of {} wires", me.wires));
            }
            let mut sum = 0i64;
            for c in 0..me.cols * me.rows {
                let v = mem.read_i64(cost_base + (c * 8) as u64);
                if v < 0 || v > me.wires as i64 {
                    return Err(format!("cost cell {c} out of range: {v}"));
                }
                sum += v;
            }
            // Cost-cell increments are unprotected read-modify-writes,
            // as in the real LocusRoute, so with several processors an
            // increment can occasionally be lost to a race; the total
            // may only ever fall short, never exceed.
            if sum > expected_cells {
                return Err(format!(
                    "cost array total {sum} exceeds expected {expected_cells}"
                ));
            }
            if sum * 100 < expected_cells * 99 {
                return Err(format!(
                    "lost too many cost updates: {sum} of {expected_cells}"
                ));
            }
            if single_proc_ref.is_some() && sum != expected_cells {
                return Err(format!(
                    "cost array total {sum} != expected {expected_cells} (single processor)"
                ));
            }
            if let Some((ref_cost, ref_total)) = &single_proc_ref {
                for (c, want) in ref_cost.iter().enumerate() {
                    let got = mem.read_i64(cost_base + (c * 8) as u64);
                    if got != *want {
                        return Err(format!(
                            "cost cell {c}: simulated {got} != reference {want}"
                        ));
                    }
                }
                let total = mem.read_i64(globals + G_TOTAL_COST as u64);
                if total != *ref_total {
                    return Err(format!("total cost {total} != reference {ref_total}"));
                }
            }
            Ok(())
        };

        BuiltWorkload {
            program,
            image,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_verify;
    use lookahead_isa::SyncKind;

    #[test]
    fn path_cells_cover_both_candidates_equally() {
        let l = Locus::small();
        for w in l.wire_list() {
            let h = l.path_cells(&w, true);
            let v = l.path_cells(&w, false);
            assert_eq!(h.len() as i64, w.cells());
            assert_eq!(v.len() as i64, w.cells());
            assert_eq!(h.first(), Some(&(w.x1, w.y1)));
            assert_eq!(h.last(), Some(&(w.x2, w.y2)));
            assert_eq!(v.first(), Some(&(w.x1, w.y1)));
            assert_eq!(v.last(), Some(&(w.x2, w.y2)));
        }
    }

    #[test]
    fn locus_verifies_on_one_processor_exactly() {
        run_and_verify(&Locus::small(), 1);
    }

    #[test]
    fn locus_verifies_on_four_processors() {
        run_and_verify(&Locus::small(), 4);
    }

    #[test]
    fn locus_verifies_on_sixteen_processors() {
        run_and_verify(
            &Locus {
                wires: 96,
                ..Locus::small()
            },
            16,
        );
    }

    #[test]
    fn locus_takes_one_lock_per_wire() {
        let out = run_and_verify(&Locus::small(), 4);
        let locks: u64 = out
            .traces
            .iter()
            .flat_map(|t| t.iter())
            .filter(|e| e.sync_access().is_some_and(|s| s.kind == SyncKind::Lock))
            .count() as u64;
        assert_eq!(locks, 40, "one lock acquisition per routed wire");
    }
}
