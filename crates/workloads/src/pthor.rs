//! PTHOR — parallel event-driven logic simulation.
//!
//! The paper's PTHOR is a Chandy–Misra distributed-time logic
//! simulator: logic elements, nets linking them, and per-processor
//! task queues of activated elements. Each processor repeatedly pops
//! an activated element, evaluates it, and schedules newly activated
//! elements onto the task queues. Its profile in the paper is extreme
//! on every axis: the most locks by far (Table 2: ~6,000 per
//! processor), the worst branch prediction (Table 3: 81.2%), and long
//! load-dependence chains (§4.1.3: ~50% of read misses delayed over 50
//! cycles by dependences).
//!
//! Our kernel is a faithful event-driven simulator over a generated
//! gate netlist: per-processor LIFO task queues protected by locks,
//! work stealing from other processors' queues, a lock-protected
//! global active-task counter for termination detection, and a
//! three-phase clock cycle (stimulus/flip-flop release → event loop to
//! convergence → flip-flop next-state capture) separated by barriers.
//! Gate evaluation chases pointers — gate record → input gate ids →
//! their output words — producing exactly the dependent-load chains
//! and data-dependent branches (gate-type dispatch, value-change
//! tests, steal loops) the paper attributes PTHOR's behaviour to.
//!
//! Determinism: the final gate outputs are the unique fixed point of
//! the combinational network given the flip-flop states and stimulus,
//! so they match the levelized Rust reference regardless of the order
//! in which events were processed.

use crate::{BuiltWorkload, Workload};
use lookahead_isa::program::DataImage;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{AluOp, Assembler, BranchCond, IntReg};

/// Gate type codes stored in the netlist.
const T_AND: i64 = 0;
const T_OR: i64 = 1;
const T_XOR: i64 = 2;
const T_NAND: i64 = 3;
const T_NOT: i64 = 4;
const T_DFF: i64 = 5;
const T_INPUT: i64 = 6;

/// Gate record layout (byte offsets within the 64-byte record).
const OFF_TYPE: i64 = 0;
const OFF_IN0: i64 = 8;
const OFF_IN1: i64 = 16;
const OFF_OUT: i64 = 24;
const OFF_NEXT: i64 = 32;
const OFF_FANOUT_N: i64 = 40;
const OFF_FANOUT_BASE: i64 = 48;
const GATE_BYTES: i64 = 64;

/// Globals block layout (byte offsets from the globals base).
const G_BARRIER: i64 = 0;
const G_ACTIVE_LOCK: i64 = 16;
const G_ACTIVE: i64 = 32;
const G_ERROR: i64 = 48;

/// The PTHOR logic-simulation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pthor {
    /// Total gates, including primary inputs (paper: ~11,000
    /// two-input gates).
    pub gates: usize,
    /// Number of primary-input gates (driven by the stimulus).
    pub inputs: usize,
    /// Fraction of non-input gates that are flip-flops, in percent.
    pub dff_percent: usize,
    /// Simulated clock cycles (paper: 5).
    pub cycles: usize,
    /// Netlist generation seed.
    pub seed: u64,
}

impl Default for Pthor {
    /// The experiment-harness size: a ~1,500-gate circuit, 5 clock
    /// cycles.
    fn default() -> Pthor {
        Pthor {
            gates: 1_500,
            inputs: 12,
            dff_percent: 10,
            cycles: 5,
            seed: 1992,
        }
    }
}

/// A generated netlist gate.
#[derive(Debug, Clone, Copy)]
struct Gate {
    ty: i64,
    in0: i64,
    in1: i64,
}

impl Pthor {
    /// A size small enough for unit tests.
    pub fn small() -> Pthor {
        Pthor {
            gates: 80,
            inputs: 6,
            dff_percent: 15,
            cycles: 2,
            seed: 7,
        }
    }

    /// The paper's size: an ~11,000-gate circuit simulated for 5
    /// clock cycles.
    pub fn paper() -> Pthor {
        Pthor {
            gates: 11_000,
            inputs: 32,
            dff_percent: 10,
            cycles: 5,
            seed: 1992,
        }
    }

    /// Beyond the paper: a ~16,000-gate circuit over 6 clock cycles,
    /// sized for the streamed bounded-memory pipeline.
    pub fn large() -> Pthor {
        Pthor {
            gates: 16_000,
            inputs: 40,
            dff_percent: 10,
            cycles: 6,
            seed: 1992,
        }
    }

    /// Generates the netlist: primary inputs first, then a topological
    /// mix of combinational gates (inputs strictly earlier in id
    /// order, so the combinational network is a DAG) and flip-flops
    /// (whose input may be any other gate, giving sequential
    /// feedback).
    fn netlist(&self) -> Vec<Gate> {
        assert!(self.inputs >= 2 && self.gates > self.inputs + 2);
        let mut rng = XorShift64::seed_from_u64(self.seed);
        let mut gates = Vec::with_capacity(self.gates);
        for _ in 0..self.inputs {
            gates.push(Gate {
                ty: T_INPUT,
                in0: -1,
                in1: -1,
            });
        }
        for g in self.inputs..self.gates {
            let is_dff = rng.percent(self.dff_percent as u32);
            if is_dff {
                // Any other gate may feed a flip-flop (feedback ok).
                let mut in0 = rng.range_i64(0, self.gates as i64);
                if in0 == g as i64 {
                    in0 = (in0 + 1) % self.gates as i64;
                }
                gates.push(Gate {
                    ty: T_DFF,
                    in0,
                    in1: -1,
                });
            } else {
                let ty = rng.range_i64(0, 5);
                let in0 = rng.range_i64(0, g as i64);
                let in1 = if ty == T_NOT {
                    -1
                } else {
                    rng.range_i64(0, g as i64)
                };
                gates.push(Gate { ty, in0, in1 });
            }
        }
        gates
    }

    /// Fanout lists: for every gate, the *combinational* gates it
    /// feeds (flip-flops sample their input at the clock edge instead
    /// of being event-driven).
    fn fanouts(netlist: &[Gate]) -> Vec<Vec<i64>> {
        let mut fan: Vec<Vec<i64>> = vec![Vec::new(); netlist.len()];
        for (g, gate) in netlist.iter().enumerate() {
            if gate.ty == T_DFF || gate.ty == T_INPUT {
                continue;
            }
            for src in [gate.in0, gate.in1] {
                if src >= 0 {
                    fan[src as usize].push(g as i64);
                }
            }
        }
        fan
    }

    fn stimulus(cycle: usize, gate: usize) -> i64 {
        ((cycle as i64 + 1) >> (gate % 4)) & 1
    }

    fn eval(ty: i64, v0: i64, v1: i64) -> i64 {
        match ty {
            T_AND => v0 & v1,
            T_OR => v0 | v1,
            T_XOR => v0 ^ v1,
            T_NAND => (v0 & v1) ^ 1,
            T_NOT => v0 ^ 1,
            _ => unreachable!("combinational eval of {ty}"),
        }
    }

    /// The combinational fixed point with all inputs and flip-flops at
    /// zero — the state the netlist image starts in. The event-driven
    /// simulator is incremental, so it must start from a consistent
    /// state (e.g. a NAND of two zeros must already read 1).
    fn initial_outputs(netlist: &[Gate]) -> Vec<i64> {
        let mut out = vec![0i64; netlist.len()];
        for (g, gate) in netlist.iter().enumerate() {
            if gate.ty != T_INPUT && gate.ty != T_DFF {
                let v0 = if gate.in0 >= 0 {
                    out[gate.in0 as usize]
                } else {
                    0
                };
                let v1 = if gate.in1 >= 0 {
                    out[gate.in1 as usize]
                } else {
                    0
                };
                out[g] = Self::eval(gate.ty, v0, v1);
            }
        }
        out
    }

    /// Reference levelized simulation: returns `(out, next)` per gate
    /// after all cycles.
    fn reference(&self, netlist: &[Gate]) -> (Vec<i64>, Vec<i64>) {
        let n = netlist.len();
        let mut out = vec![0i64; n];
        let mut next = vec![0i64; n];
        for c in 0..self.cycles {
            for (g, gate) in netlist.iter().enumerate() {
                match gate.ty {
                    T_INPUT => out[g] = Self::stimulus(c, g),
                    T_DFF => out[g] = next[g],
                    _ => {}
                }
            }
            // One pass in id order suffices: combinational inputs are
            // strictly earlier gates.
            for (g, gate) in netlist.iter().enumerate() {
                if gate.ty != T_INPUT && gate.ty != T_DFF {
                    let v0 = if gate.in0 >= 0 {
                        out[gate.in0 as usize]
                    } else {
                        0
                    };
                    let v1 = if gate.in1 >= 0 {
                        out[gate.in1 as usize]
                    } else {
                        0
                    };
                    out[g] = Self::eval(gate.ty, v0, v1);
                }
            }
            for (g, gate) in netlist.iter().enumerate() {
                if gate.ty == T_DFF {
                    next[g] = out[gate.in0 as usize];
                }
            }
        }
        (out, next)
    }
}

impl Workload for Pthor {
    fn name(&self) -> &'static str {
        "PTHOR"
    }

    fn build(&self, num_procs: usize) -> BuiltWorkload {
        let netlist = self.netlist();
        let fanouts = Self::fanouts(&netlist);
        let n = netlist.len();
        let p = num_procs;

        // ---- shared memory layout -------------------------------------
        let mut image = DataImage::new();
        image.align_to(16);
        // Gate records.
        let gates_base = image.alloc_words(n * 8);
        // Flat fanout array with per-gate (count, base) in the record.
        let total_fanout: usize = fanouts.iter().map(Vec::len).sum();
        image.align_to(16);
        let fanout_base = image.alloc_words(total_fanout.max(1));
        let initial_out = Self::initial_outputs(&netlist);
        let mut cursor = 0usize;
        for (g, gate) in netlist.iter().enumerate() {
            let rec = gates_base + (g as i64 * GATE_BYTES) as u64;
            image.write_i64(rec + OFF_TYPE as u64, gate.ty);
            image.write_i64(rec + OFF_IN0 as u64, gate.in0);
            image.write_i64(rec + OFF_IN1 as u64, gate.in1);
            image.write_i64(rec + OFF_OUT as u64, initial_out[g]);
            image.write_i64(rec + OFF_FANOUT_N as u64, fanouts[g].len() as i64);
            image.write_i64(rec + OFF_FANOUT_BASE as u64, cursor as i64);
            for (k, &f) in fanouts[g].iter().enumerate() {
                image.write_i64(fanout_base + ((cursor + k) * 8) as u64, f);
            }
            cursor += fanouts[g].len();
        }
        // Per-processor task queues: [lock, count, items...].
        let capacity = (16 * n / p).max(128);
        let queue_words = 2 + capacity;
        image.align_to(16);
        let queues_base = image.alloc_words(p * queue_words);
        let queue_stride = (queue_words * 8) as i64;
        // Globals: barrier, active lock, active counter, error flag.
        image.align_to(16);
        let globals = image.alloc_words(8);

        // ---- program ----------------------------------------------------
        // G0 gates, G1 fanout array, G2 queues, G3 globals, G4 gate
        // count, G5 queue stride. S0 cycle, S1 popped gate id, S2 gate
        // record addr, S4 steal attempt, S5 fanout index, S6 fanout
        // count, S7 fanout cursor, S8 enqueue target gate.
        use IntReg as R;
        let mut b = Assembler::new();
        b.li(R::G0, gates_base as i64);
        b.li(R::G1, fanout_base as i64);
        b.li(R::G2, queues_base as i64);
        b.li(R::G3, globals as i64);
        b.li(R::G4, n as i64);
        b.li(R::G5, queue_stride);

        // enqueue(S8): push S8 onto its owner's queue. The active
        // counter was already bumped in bulk by enqueue_fanouts (the
        // increment must precede the push so the counter never
        // under-counts live work). Trashes T0, T7, T8.
        let enqueue = |b: &mut Assembler| {
            // owner queue address: T8 = queues + (S8 % P) * stride
            b.alu(AluOp::Rem, R::T8, R::S8, R::A1);
            b.mul(R::T8, R::T8, R::G5);
            b.add(R::T8, R::G2, R::T8);
            b.lock(R::T8, 0);
            b.load(R::T0, R::T8, 8); // count
            b.li(R::T7, capacity as i64);
            b.if_then_else(
                BranchCond::Ge,
                R::T0,
                R::T7,
                |b| {
                    // Overflow: record the error, drop the task.
                    b.li(R::T7, 1);
                    b.store(R::T7, R::G3, G_ERROR);
                },
                |b| {
                    // items[count] = S8; count++
                    b.alu_imm(AluOp::Sll, R::T7, R::T0, 3);
                    b.add(R::T7, R::T8, R::T7);
                    b.store(R::S8, R::T7, 16);
                    b.addi(R::T0, R::T0, 1);
                    b.store(R::T0, R::T8, 8);
                },
            );
            b.unlock(R::T8, 0);
        };

        // enqueue_fanouts of the gate whose record is in S2: bump the
        // active counter once for the whole fanout list (one lock per
        // evaluation instead of one per consumer, which would hammer
        // the global lock), then push each consumer.
        let enqueue_fanouts = |b: &mut Assembler| {
            b.load(R::S6, R::S2, OFF_FANOUT_N);
            b.load(R::S7, R::S2, OFF_FANOUT_BASE);
            b.if_then(BranchCond::Gt, R::S6, R::ZERO, |b| {
                b.lock(R::G3, G_ACTIVE_LOCK);
                b.load(R::T0, R::G3, G_ACTIVE);
                b.add(R::T0, R::T0, R::S6);
                b.store(R::T0, R::G3, G_ACTIVE);
                b.unlock(R::G3, G_ACTIVE_LOCK);
            });
            b.li(R::S5, 0);
            b.while_loop(BranchCond::Lt, R::S5, R::S6, |b| {
                b.add(R::T8, R::S7, R::S5);
                b.alu_imm(AluOp::Sll, R::T8, R::T8, 3);
                b.add(R::T8, R::G1, R::T8);
                b.load(R::S8, R::T8, 0);
                enqueue(b);
                b.addi(R::S5, R::S5, 1);
            });
        };

        // Flush batched task-completion decrements (held in S9) to the
        // global active counter.
        let flush_decrements = |b: &mut Assembler| {
            b.if_then(BranchCond::Gt, R::S9, R::ZERO, |b| {
                b.lock(R::G3, G_ACTIVE_LOCK);
                b.load(R::T0, R::G3, G_ACTIVE);
                b.sub(R::T0, R::T0, R::S9);
                b.store(R::T0, R::G3, G_ACTIVE);
                b.unlock(R::G3, G_ACTIVE_LOCK);
                b.li(R::S9, 0);
            });
        };

        b.for_range(R::S0, 0, self.cycles as i64, |b| {
            // ---- phase A: stimulus + flip-flop release ----------------
            b.for_step(R::S1, R::A0, R::G4, p as i64, |b| {
                b.muli(R::S2, R::S1, GATE_BYTES);
                b.add(R::S2, R::G0, R::S2);
                b.load(R::T1, R::S2, OFF_TYPE);
                b.li(R::T2, T_INPUT);
                b.if_then_else(
                    BranchCond::Eq,
                    R::T1,
                    R::T2,
                    |b| {
                        // T3 = stimulus = ((cycle+1) >> (id % 4)) & 1
                        b.alu_imm(AluOp::Rem, R::T4, R::S1, 4);
                        b.addi(R::T3, R::S0, 1);
                        b.alu(AluOp::Srl, R::T3, R::T3, R::T4);
                        b.alu_imm(AluOp::And, R::T3, R::T3, 1);
                        b.load(R::T5, R::S2, OFF_OUT);
                        b.if_then(BranchCond::Ne, R::T3, R::T5, |b| {
                            b.store(R::T3, R::S2, OFF_OUT);
                            enqueue_fanouts(b);
                        });
                    },
                    |b| {
                        b.li(R::T2, T_DFF);
                        b.if_then(BranchCond::Eq, R::T1, R::T2, |b| {
                            b.load(R::T3, R::S2, OFF_NEXT);
                            b.load(R::T5, R::S2, OFF_OUT);
                            b.if_then(BranchCond::Ne, R::T3, R::T5, |b| {
                                b.store(R::T3, R::S2, OFF_OUT);
                                enqueue_fanouts(b);
                            });
                        });
                    },
                );
            });
            b.barrier(R::G3, G_BARRIER);

            // ---- phase B: event loop until the active counter drains --
            b.li(R::S9, 0); // batched completion decrements
            let steal_top = b.named_label("steal_top");
            let got_task = b.named_label("got_task");
            let phase_done = b.named_label("phase_done");
            b.bind(steal_top).expect("fresh label");
            // Try each queue starting with my own.
            b.li(R::S4, 0);
            let try_next = b.named_label("try_next");
            let no_task = b.named_label("no_task");
            b.bind(try_next).expect("fresh label");
            b.branch(BranchCond::Ge, R::S4, R::A1, no_task);
            // victim = (me + S4) % P; T8 = its queue
            b.add(R::T8, R::A0, R::S4);
            b.alu(AluOp::Rem, R::T8, R::T8, R::A1);
            b.mul(R::T8, R::T8, R::G5);
            b.add(R::T8, R::G2, R::T8);
            b.lock(R::T8, 0);
            b.load(R::T0, R::T8, 8); // count
            b.if_then(BranchCond::Gt, R::T0, R::ZERO, |b| {
                b.addi(R::T0, R::T0, -1);
                b.store(R::T0, R::T8, 8);
                b.alu_imm(AluOp::Sll, R::T7, R::T0, 3);
                b.add(R::T7, R::T8, R::T7);
                b.load(R::S1, R::T7, 16); // popped gate id
                b.unlock(R::T8, 0);
                b.jump(got_task);
            });
            b.unlock(R::T8, 0);
            b.addi(R::S4, R::S4, 1);
            b.jump(try_next);

            b.bind(no_task).expect("fresh label");
            // All queues empty: publish my batched completions, then
            // check whether any work remains in flight. (The flush
            // must come first — the counter includes my unflushed
            // decrements, so it cannot read zero before them.)
            flush_decrements(b);
            b.load(R::T0, R::G3, G_ACTIVE);
            b.branch(BranchCond::Eq, R::T0, R::ZERO, phase_done);
            b.jump(steal_top);

            b.bind(got_task).expect("fresh label");
            // Evaluate gate S1.
            b.muli(R::S2, R::S1, GATE_BYTES);
            b.add(R::S2, R::G0, R::S2);
            b.load(R::T1, R::S2, OFF_TYPE);
            b.load(R::T2, R::S2, OFF_IN0);
            b.load(R::T3, R::S2, OFF_IN1);
            // T4 = value(in0)
            b.li(R::T4, 0);
            b.if_then(BranchCond::Ge, R::T2, R::ZERO, |b| {
                b.muli(R::T8, R::T2, GATE_BYTES);
                b.add(R::T8, R::G0, R::T8);
                b.load(R::T4, R::T8, OFF_OUT);
            });
            // T5 = value(in1)
            b.li(R::T5, 0);
            b.if_then(BranchCond::Ge, R::T3, R::ZERO, |b| {
                b.muli(R::T8, R::T3, GATE_BYTES);
                b.add(R::T8, R::G0, R::T8);
                b.load(R::T5, R::T8, OFF_OUT);
            });
            // T6 = eval(type, T4, T5) — chained type dispatch.
            let dispatch_done = b.label();
            for (code, emit) in [(T_AND, 0), (T_OR, 1), (T_XOR, 2), (T_NAND, 3), (T_NOT, 4)] {
                let skip = b.label();
                b.li(R::T7, code);
                b.branch(BranchCond::Ne, R::T1, R::T7, skip);
                match emit {
                    0 => b.alu(AluOp::And, R::T6, R::T4, R::T5),
                    1 => b.alu(AluOp::Or, R::T6, R::T4, R::T5),
                    2 => b.alu(AluOp::Xor, R::T6, R::T4, R::T5),
                    3 => {
                        b.alu(AluOp::And, R::T6, R::T4, R::T5);
                        b.alu_imm(AluOp::Xor, R::T6, R::T6, 1);
                    }
                    _ => b.alu_imm(AluOp::Xor, R::T6, R::T4, 1),
                }
                b.jump(dispatch_done);
                b.bind(skip).expect("fresh label");
            }
            // Unknown type (DFF/INPUT should never be queued): keep old.
            b.load(R::T6, R::S2, OFF_OUT);
            b.bind(dispatch_done).expect("fresh label");
            // Publish if changed, then activate consumers.
            b.load(R::T7, R::S2, OFF_OUT);
            b.if_then(BranchCond::Ne, R::T6, R::T7, |b| {
                b.store(R::T6, R::S2, OFF_OUT);
                enqueue_fanouts(b);
            });
            // Task complete: batch the decrement, flushing every 8
            // completions to keep the counter from drifting far.
            b.addi(R::S9, R::S9, 1);
            b.li(R::T0, 8);
            b.if_then(BranchCond::Ge, R::S9, R::T0, |b| {
                flush_decrements(b);
            });
            b.jump(steal_top);

            b.bind(phase_done).expect("fresh label");
            b.barrier(R::G3, G_BARRIER);

            // ---- phase C: flip-flops capture next state ----------------
            b.for_step(R::S1, R::A0, R::G4, p as i64, |b| {
                b.muli(R::S2, R::S1, GATE_BYTES);
                b.add(R::S2, R::G0, R::S2);
                b.load(R::T1, R::S2, OFF_TYPE);
                b.li(R::T2, T_DFF);
                b.if_then(BranchCond::Eq, R::T1, R::T2, |b| {
                    b.load(R::T3, R::S2, OFF_IN0);
                    b.muli(R::T8, R::T3, GATE_BYTES);
                    b.add(R::T8, R::G0, R::T8);
                    b.load(R::T4, R::T8, OFF_OUT);
                    b.store(R::T4, R::S2, OFF_NEXT);
                });
            });
            b.barrier(R::G3, G_BARRIER);
        });
        b.halt();
        let program = b.assemble().expect("PTHOR assembles");

        // ---- verifier ---------------------------------------------------
        let (expect_out, expect_next) = self.reference(&netlist);
        let verify = move |mem: &lookahead_isa::interp::FlatMemory| -> Result<(), String> {
            if mem.read_i64(globals + G_ERROR as u64) != 0 {
                return Err("task queue overflow during simulation".to_string());
            }
            if mem.read_i64(globals + G_ACTIVE as u64) != 0 {
                return Err("active-task counter nonzero at end".to_string());
            }
            for g in 0..expect_out.len() {
                let rec = gates_base + (g as i64 * GATE_BYTES) as u64;
                let out = mem.read_i64(rec + OFF_OUT as u64);
                if out != expect_out[g] {
                    return Err(format!(
                        "gate {g} output: simulated {out} != reference {}",
                        expect_out[g]
                    ));
                }
                let next = mem.read_i64(rec + OFF_NEXT as u64);
                if next != expect_next[g] {
                    return Err(format!(
                        "gate {g} next: simulated {next} != reference {}",
                        expect_next[g]
                    ));
                }
            }
            Ok(())
        };

        BuiltWorkload {
            program,
            image,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_verify;
    use lookahead_isa::SyncKind;

    #[test]
    fn reference_is_stable_fixpoint() {
        // Evaluating the reference's combinational pass twice changes
        // nothing (it is a fixed point).
        let p = Pthor::small();
        let netlist = p.netlist();
        let (mut out, _) = p.reference(&netlist);
        let before = out.clone();
        for (g, gate) in netlist.iter().enumerate() {
            if gate.ty != T_INPUT && gate.ty != T_DFF {
                let v0 = if gate.in0 >= 0 {
                    out[gate.in0 as usize]
                } else {
                    0
                };
                let v1 = if gate.in1 >= 0 {
                    out[gate.in1 as usize]
                } else {
                    0
                };
                out[g] = Pthor::eval(gate.ty, v0, v1);
            }
        }
        assert_eq!(out, before);
    }

    #[test]
    fn netlist_is_combinationally_acyclic() {
        let p = Pthor::default();
        for (g, gate) in p.netlist().iter().enumerate() {
            if gate.ty != T_DFF && gate.ty != T_INPUT {
                assert!(gate.in0 < g as i64, "gate {g} in0 not earlier");
                assert!(gate.in1 < g as i64, "gate {g} in1 not earlier");
            }
        }
    }

    #[test]
    fn pthor_verifies_on_one_processor() {
        run_and_verify(&Pthor::small(), 1);
    }

    #[test]
    fn pthor_verifies_on_four_processors() {
        run_and_verify(&Pthor::small(), 4);
    }

    #[test]
    fn pthor_verifies_on_sixteen_processors() {
        run_and_verify(
            &Pthor {
                gates: 200,
                ..Pthor::small()
            },
            16,
        );
    }

    #[test]
    fn pthor_is_lock_dominated() {
        let out = run_and_verify(&Pthor::small(), 4);
        let (mut locks, mut barriers) = (0u64, 0u64);
        for t in &out.traces {
            for e in t.iter() {
                if let Some(s) = e.sync_access() {
                    match s.kind {
                        SyncKind::Lock => locks += 1,
                        SyncKind::Barrier => barriers += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(barriers, 4 * 2 * 3, "three barriers per cycle");
        assert!(
            locks > barriers * 5,
            "PTHOR should be lock-dominated: {locks} locks vs {barriers} barriers"
        );
    }
}
