//! MP3D — particle simulation through a shared cell space.
//!
//! The paper's MP3D moves rarefied-gas molecules through a 3-D space
//! array each time step, with barriers between steps and a handful of
//! lock-protected global counters. Communication comes from particles
//! owned by different processors updating the *same* space-array
//! cells, which is what gives MP3D its high miss rates (Table 1:
//! 24.3 read misses and 22.5 write misses per thousand instructions —
//! the highest of the five applications).
//!
//! Our kernel keeps exactly that structure. Each time step, every
//! processor moves its (interleaved) share of particles: advance the
//! position by the velocity, reflect off the six walls (data-dependent
//! branches), locate the containing cell, and read-modify-write the
//! cell's occupancy count and quantized momentum accumulators. A
//! lock-protected global counter and two barriers close each step.
//!
//! Cell accumulators are *integers* (quantized velocities), so their
//! updates commute and the final memory is deterministic regardless of
//! interleaving — the verifier checks particles and cells bit-exactly
//! against a Rust reference. The paper's collision phase is omitted
//! (it would make results interleaving-dependent); the communication
//! pattern it produces — processors sharing cell records — is
//! preserved by the accumulator updates. See `DESIGN.md`.

use crate::{BuiltWorkload, Workload};
use lookahead_isa::program::DataImage;
use lookahead_isa::rng::XorShift64;
use lookahead_isa::{Assembler, BranchCond, FpCmpOp, FpReg, FpuOp, IntReg};

/// Words per particle record (x, y, z, vx, vy, vz, 2 words pad).
const PARTICLE_WORDS: usize = 8;
/// Words per cell record (count, mx, my, mz).
const CELL_WORDS: usize = 4;
/// Velocity quantization factor for the integer momentum accumulators.
const QUANT: f64 = 1000.0;

/// The MP3D particle-in-cell kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mp3d {
    /// Number of particles (paper: 10,000).
    pub particles: usize,
    /// Space-array dimensions (paper: 64×8×8).
    pub space: (usize, usize, usize),
    /// Number of time steps (paper: 5).
    pub steps: usize,
    /// RNG seed for initial positions and velocities.
    pub seed: u64,
}

impl Default for Mp3d {
    /// The experiment-harness size: 4,000 particles in 32×8×8 cells,
    /// 5 steps.
    fn default() -> Mp3d {
        Mp3d {
            particles: 4_000,
            space: (32, 8, 8),
            steps: 5,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Particle {
    pos: [f64; 3],
    vel: [f64; 3],
}

impl Mp3d {
    /// A size small enough for unit tests.
    pub fn small() -> Mp3d {
        Mp3d {
            particles: 64,
            space: (8, 4, 4),
            steps: 2,
            seed: 42,
        }
    }

    /// The paper's size: 10,000 particles in a 64×8×8 space array,
    /// 5 time steps.
    pub fn paper() -> Mp3d {
        Mp3d {
            particles: 10_000,
            space: (64, 8, 8),
            steps: 5,
            seed: 42,
        }
    }

    /// Beyond the paper: 15,000 particles in a 96×8×8 space array,
    /// sized for the streamed bounded-memory pipeline.
    pub fn large() -> Mp3d {
        Mp3d {
            particles: 15_000,
            space: (96, 8, 8),
            steps: 5,
            seed: 42,
        }
    }

    fn num_cells(&self) -> usize {
        self.space.0 * self.space.1 * self.space.2
    }

    fn initial_particles(&self) -> Vec<Particle> {
        let mut rng = XorShift64::seed_from_u64(self.seed);
        let dims = [
            self.space.0 as f64,
            self.space.1 as f64,
            self.space.2 as f64,
        ];
        (0..self.particles)
            .map(|_| Particle {
                pos: [
                    rng.range_f64(0.0, dims[0]),
                    rng.range_f64(0.0, dims[1]),
                    rng.range_f64(0.0, dims[2]),
                ],
                vel: [
                    rng.range_f64(-0.7, 0.7),
                    rng.range_f64(-0.7, 0.7),
                    rng.range_f64(-0.7, 0.7),
                ],
            })
            .collect()
    }

    /// Reference simulation with the identical arithmetic: returns the
    /// final particles and the cell accumulators `(count, mx, my, mz)`.
    fn reference(&self) -> (Vec<Particle>, Vec<[i64; 4]>) {
        let mut parts = self.initial_particles();
        let mut cells = vec![[0i64; 4]; self.num_cells()];
        let dims = [self.space.0, self.space.1, self.space.2];
        for _t in 0..self.steps {
            for p in parts.iter_mut() {
                let mut cell_coord = [0i64; 3];
                for a in 0..3 {
                    let d = dims[a] as f64;
                    p.pos[a] += p.vel[a];
                    if p.pos[a] < 0.0 {
                        p.pos[a] = -p.pos[a];
                        p.vel[a] = -p.vel[a];
                    } else if d <= p.pos[a] {
                        p.pos[a] = 2.0 * d - p.pos[a];
                        p.vel[a] = -p.vel[a];
                    }
                    let mut c = p.pos[a] as i64;
                    if c >= dims[a] as i64 {
                        c = dims[a] as i64 - 1;
                    }
                    cell_coord[a] = c;
                }
                let idx = ((cell_coord[2] * dims[1] as i64 + cell_coord[1]) * dims[0] as i64
                    + cell_coord[0]) as usize;
                cells[idx][0] += 1;
                for a in 0..3 {
                    cells[idx][1 + a] += (p.vel[a] * QUANT) as i64;
                }
            }
        }
        (parts, cells)
    }
}

impl Workload for Mp3d {
    fn name(&self) -> &'static str {
        "MP3D"
    }

    fn build(&self, num_procs: usize) -> BuiltWorkload {
        assert!(self.particles >= 1 && self.steps >= 1);
        let (cx, cy, cz) = self.space;
        assert!(cx >= 1 && cy >= 1 && cz >= 1);

        // ---- shared memory layout -------------------------------------
        let mut image = DataImage::new();
        image.align_to(16);
        let particles_base = image.alloc_words(self.particles * PARTICLE_WORDS);
        for (i, p) in self.initial_particles().iter().enumerate() {
            let base = particles_base + (i * PARTICLE_WORDS * 8) as u64;
            for a in 0..3 {
                image.write_f64(base + (a * 8) as u64, p.pos[a]);
                image.write_f64(base + ((3 + a) * 8) as u64, p.vel[a]);
            }
        }
        image.align_to(16);
        let cells_base = image.alloc_words(self.num_cells() * CELL_WORDS);
        image.align_to(16);
        let barrier = image.alloc_words(2);
        let lock = image.alloc_words(2);
        image.align_to(16);
        let global_moves = image.alloc_words(2);

        // ---- registers -------------------------------------------------
        // G0 particles, G1 cells, G2 particle count, G3 barrier,
        // G4 lock, G5 globals. S0 step, S1 particle index, S2 particle
        // addr, S4 local-moved counter. F8 = 0.0, F9 = QUANT,
        // F10/F11 = X/2X, F12/F13 = Y/2Y, F14/F15 = Z/2Z.
        use FpReg as F;
        use IntReg as R;
        let mut b = Assembler::new();
        b.li(R::G0, particles_base as i64);
        b.li(R::G1, cells_base as i64);
        b.li(R::G2, self.particles as i64);
        b.li(R::G3, barrier as i64);
        b.li(R::G4, lock as i64);
        b.li(R::G5, global_moves as i64);
        b.lif(F::F8, 0.0);
        b.lif(F::F9, QUANT);
        b.lif(F::F10, cx as f64);
        b.lif(F::F11, 2.0 * cx as f64);
        b.lif(F::F12, cy as f64);
        b.lif(F::F13, 2.0 * cy as f64);
        b.lif(F::F14, cz as f64);
        b.lif(F::F15, 2.0 * cz as f64);

        // One axis: position in `pos`, velocity in `vel`, wall in
        // `dim`, 2*wall in `dim2`. Trashes T0.
        let reflect = |b: &mut Assembler, pos: F, vel: F, dim: F, dim2: F| {
            b.fadd(pos, pos, vel);
            b.fcmp(FpCmpOp::Lt, R::T0, pos, F::F8);
            b.if_then_else(
                BranchCond::Ne,
                R::T0,
                R::ZERO,
                |b| {
                    b.fpu(FpuOp::Neg, pos, pos, pos);
                    b.fpu(FpuOp::Neg, vel, vel, vel);
                },
                |b| {
                    b.fcmp(FpCmpOp::Le, R::T0, dim, pos);
                    b.if_then(BranchCond::Ne, R::T0, R::ZERO, |b| {
                        b.fsub(pos, dim2, pos);
                        b.fpu(FpuOp::Neg, vel, vel, vel);
                    });
                },
            );
        };
        // Cell coordinate of `pos` into `out`, clamped to [0, dim).
        let cell_coord = |b: &mut Assembler, out: R, pos: F, dim: i64| {
            b.fp_to_int(out, pos);
            b.li(R::T5, dim);
            b.if_then(BranchCond::Ge, out, R::T5, |b| {
                b.addi(out, R::T5, -1);
            });
        };

        b.for_range(R::S0, 0, self.steps as i64, |b| {
            b.li(R::S4, 0); // particles I moved this step
            b.for_step(R::S1, R::A0, R::G2, num_procs as i64, |b| {
                // S2 = &particle
                b.muli(R::S2, R::S1, (PARTICLE_WORDS * 8) as i64);
                b.add(R::S2, R::G0, R::S2);
                b.loadf(F::F0, R::S2, 0); // x
                b.loadf(F::F1, R::S2, 8); // y
                b.loadf(F::F2, R::S2, 16); // z
                b.loadf(F::F3, R::S2, 24); // vx
                b.loadf(F::F4, R::S2, 32); // vy
                b.loadf(F::F5, R::S2, 40); // vz
                reflect(b, F::F0, F::F3, F::F10, F::F11);
                reflect(b, F::F1, F::F4, F::F12, F::F13);
                reflect(b, F::F2, F::F5, F::F14, F::F15);
                b.storef(F::F0, R::S2, 0);
                b.storef(F::F1, R::S2, 8);
                b.storef(F::F2, R::S2, 16);
                b.storef(F::F3, R::S2, 24);
                b.storef(F::F4, R::S2, 32);
                b.storef(F::F5, R::S2, 40);
                // cell coordinates
                cell_coord(b, R::T1, F::F0, cx as i64);
                cell_coord(b, R::T2, F::F1, cy as i64);
                cell_coord(b, R::T3, F::F2, cz as i64);
                // T3 = (((cz*CY)+cy)*CX + cx) * CELL_BYTES + cells
                b.muli(R::T3, R::T3, cy as i64);
                b.add(R::T3, R::T3, R::T2);
                b.muli(R::T3, R::T3, cx as i64);
                b.add(R::T3, R::T3, R::T1);
                b.muli(R::T3, R::T3, (CELL_WORDS * 8) as i64);
                b.add(R::T3, R::G1, R::T3);
                // count++
                b.load(R::T4, R::T3, 0);
                b.addi(R::T4, R::T4, 1);
                b.store(R::T4, R::T3, 0);
                b.mv(R::S5, R::T4); // keep the occupancy we observed
                                    // momentum accumulators (quantized)
                for (axis, vel) in [(0i64, F::F3), (1, F::F4), (2, F::F5)] {
                    b.fmul(F::F6, vel, F::F9);
                    b.fp_to_int(R::T4, F::F6);
                    let off = 8 + axis * 8;
                    b.load(R::T5, R::T3, off);
                    b.add(R::T5, R::T5, R::T4);
                    b.store(R::T5, R::T3, off);
                }
                // Collision-partner probe: chase a second cell whose
                // address depends on the occupancy value just loaded —
                // the paper's MP3D dependence chains, where "one read
                // miss affect[s] the address of the next read miss"
                // (§4.1.3). The probe is read-only (the value feeds a
                // running checksum in S6 only), so it perturbs timing
                // and coherence traffic without touching verified
                // state.
                b.sub(R::T5, R::T3, R::G1);
                b.alu_imm(lookahead_isa::AluOp::Srl, R::T5, R::T5, 5);
                b.muli(R::T4, R::S5, 7);
                b.add(R::T4, R::T4, R::T5);
                b.alu_imm(
                    lookahead_isa::AluOp::Rem,
                    R::T4,
                    R::T4,
                    self.num_cells() as i64,
                );
                b.muli(R::T4, R::T4, (CELL_WORDS * 8) as i64);
                b.add(R::T4, R::G1, R::T4);
                b.load(R::T5, R::T4, 0);
                b.add(R::S6, R::S6, R::T5);
                // Second link of the chain: the next probe's address
                // depends on the first probe's value.
                b.alu_imm(
                    lookahead_isa::AluOp::Rem,
                    R::T4,
                    R::S6,
                    self.num_cells() as i64,
                );
                b.muli(R::T4, R::T4, (CELL_WORDS * 8) as i64);
                b.add(R::T4, R::G1, R::T4);
                b.load(R::T5, R::T4, 8);
                b.add(R::S6, R::S6, R::T5);
                b.addi(R::S4, R::S4, 1);
            });
            b.barrier(R::G3, 0);
            // lock-protected global move counter
            b.lock(R::G4, 0);
            b.load(R::T0, R::G5, 0);
            b.add(R::T0, R::T0, R::S4);
            b.store(R::T0, R::G5, 0);
            b.unlock(R::G4, 0);
            b.barrier(R::G3, 0);
        });
        b.halt();
        let program = b.assemble().expect("MP3D assembles");

        // ---- verifier ---------------------------------------------------
        // Particle state is deterministic (only the owner touches it)
        // and checked bit-exactly. The cell accumulators are updated
        // with unprotected read-modify-writes — as in the real SPLASH
        // MP3D, which is famously racy on its space array — so on more
        // than one processor an increment can occasionally be lost.
        // With one processor there are no races and cells are exact;
        // otherwise we check the interleaving-independent invariants:
        // counts never exceed the reference and at least 95% of all
        // increments land (the simulator is deterministic, so this is
        // reproducible, not flaky).
        let (expect_parts, expect_cells) = self.reference();
        let me = *self;
        let exact_cells = num_procs == 1;
        let verify = move |mem: &lookahead_isa::interp::FlatMemory| -> Result<(), String> {
            for (i, p) in expect_parts.iter().enumerate() {
                let base = particles_base + (i * PARTICLE_WORDS * 8) as u64;
                for a in 0..3 {
                    let gp = mem.read_f64(base + (a * 8) as u64);
                    let gv = mem.read_f64(base + ((3 + a) * 8) as u64);
                    if gp.to_bits() != p.pos[a].to_bits() {
                        return Err(format!(
                            "particle {i} pos[{a}]: simulated {gp} != reference {}",
                            p.pos[a]
                        ));
                    }
                    if gv.to_bits() != p.vel[a].to_bits() {
                        return Err(format!(
                            "particle {i} vel[{a}]: simulated {gv} != reference {}",
                            p.vel[a]
                        ));
                    }
                }
            }
            let mut total_count = 0i64;
            for (c, want) in expect_cells.iter().enumerate() {
                let base = cells_base + (c * CELL_WORDS * 8) as u64;
                let count = mem.read_i64(base);
                if exact_cells {
                    for (w, &want) in want.iter().enumerate() {
                        let got = mem.read_i64(base + (w * 8) as u64);
                        if got != want {
                            return Err(format!(
                                "cell {c} word {w}: simulated {got} != reference {want}"
                            ));
                        }
                    }
                } else if count < 0 || count > want[0] {
                    return Err(format!("cell {c} count {count} outside [0, {}]", want[0]));
                }
                total_count += count;
            }
            let want_total = (me.particles * me.steps) as i64;
            if total_count * 100 < want_total * 95 {
                return Err(format!(
                    "lost too many cell updates: {total_count} of {want_total}"
                ));
            }
            let moves = mem.read_i64(global_moves);
            if moves != want_total {
                return Err(format!("global moves {moves} != {want_total}"));
            }
            Ok(())
        };

        BuiltWorkload {
            program,
            image,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_verify;
    use lookahead_isa::SyncKind;

    #[test]
    fn mp3d_verifies_on_one_processor() {
        run_and_verify(&Mp3d::small(), 1);
    }

    #[test]
    fn mp3d_verifies_on_four_processors() {
        run_and_verify(&Mp3d::small(), 4);
    }

    #[test]
    fn mp3d_verifies_on_sixteen_processors() {
        run_and_verify(
            &Mp3d {
                particles: 200,
                ..Mp3d::small()
            },
            16,
        );
    }

    #[test]
    fn mp3d_reflects_off_walls() {
        // With enough steps every particle reflects at least once; the
        // reference must keep all positions in bounds.
        let m = Mp3d {
            particles: 32,
            space: (4, 4, 4),
            steps: 20,
            seed: 7,
        };
        let (parts, cells) = m.reference();
        for p in &parts {
            for a in 0..3 {
                assert!(p.pos[a] >= 0.0 && p.pos[a] <= 4.0, "escaped: {:?}", p.pos);
            }
        }
        let total: i64 = cells.iter().map(|c| c[0]).sum();
        assert_eq!(total, 32 * 20, "every move lands in exactly one cell");
    }

    #[test]
    fn mp3d_uses_locks_and_barriers() {
        let out = run_and_verify(&Mp3d::small(), 4);
        let (mut locks, mut barriers) = (0u64, 0u64);
        for t in &out.traces {
            for e in t.iter() {
                if let Some(s) = e.sync_access() {
                    match s.kind {
                        SyncKind::Lock => locks += 1,
                        SyncKind::Barrier => barriers += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(locks, 4 * 2, "one lock per processor per step");
        assert_eq!(barriers, 4 * 2 * 2, "two barriers per processor per step");
    }
}
