//! LU — dense LU decomposition without pivoting.
//!
//! The paper's LU statically assigns matrix columns to processors in
//! an interleaved fashion. At elimination step `k` the owner of column
//! `k` computes the multipliers (divides the subdiagonal of column `k`
//! by the pivot) and *sets an event* for that column; every other
//! processor *waits* on the event, then all processors update the
//! columns they own with `A[i][j] -= A[i][k] * A[k][j]`. The paper ran
//! a 200×200 matrix; our default is 96×96 (configurable), which still
//! exceeds the 64 KB cache.
//!
//! The matrix is stored column-major so a column is contiguous, as in
//! the SPLASH kernel. Synchronization is exactly the paper's: one
//! event per column (Table 2 shows LU using wait/set events almost
//! exclusively) plus a final barrier.
//!
//! Determinism: each element is updated only by its owning processor
//! and the event ordering fixes the floating-point operation order, so
//! the simulated result matches the Rust reference *bit for bit*.

use crate::{BuiltWorkload, Workload};
use lookahead_isa::program::DataImage;
use lookahead_isa::{AluOp, Assembler, BranchCond, FpReg, IntReg};

/// LU decomposition of an `n`×`n` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lu {
    /// Matrix dimension.
    pub n: usize,
}

impl Default for Lu {
    /// The experiment-harness size: 96×96 (the paper used 200×200).
    fn default() -> Lu {
        Lu { n: 96 }
    }
}

impl Lu {
    /// A size small enough for unit tests.
    pub fn small() -> Lu {
        Lu { n: 16 }
    }

    /// The paper's size: a 200×200 matrix.
    pub fn paper() -> Lu {
        Lu { n: 200 }
    }

    /// Beyond the paper: a 256×256 matrix, for stressing the streamed
    /// bounded-memory pipeline (traces too large to comfortably hold
    /// per-model copies in memory).
    pub fn large() -> Lu {
        Lu { n: 256 }
    }

    /// The initial matrix: diagonally dominant (so elimination without
    /// pivoting is stable) with smoothly varying off-diagonal entries.
    fn initial_matrix(&self) -> Vec<f64> {
        let n = self.n;
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                let v = 1.0 / ((i as f64 - j as f64).abs() + 1.0);
                a[j * n + i] = if i == j { v + n as f64 } else { v };
            }
        }
        a
    }

    /// Reference elimination with the same loop structure and operation
    /// order as the SRISC kernel (column-major, divide-then-update).
    fn reference_lu(&self, a: &mut [f64]) {
        let n = self.n;
        for k in 0..n - 1 {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                a[k * n + i] /= pivot;
            }
            for j in k + 1..n {
                let akj = a[j * n + k];
                for i in k + 1..n {
                    a[j * n + i] -= a[k * n + i] * akj;
                }
            }
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn build(&self, num_procs: usize) -> BuiltWorkload {
        assert!(self.n >= 2, "LU needs at least a 2x2 matrix");
        assert!(num_procs >= 1);
        let n = self.n;

        // ---- shared memory layout -------------------------------------
        let mut image = DataImage::new();
        image.align_to(16);
        let matrix = image.alloc_f64_slice(&self.initial_matrix());
        image.align_to(16);
        let events = image.alloc_words(n); // one event per column
        image.align_to(16);
        let barrier = image.alloc_words(2);

        // ---- registers -------------------------------------------------
        // G0 = matrix base, G1 = events base, G2 = n, G3 = barrier
        // S0 = k, S1 = i (pivot) or j (update), S2 = inner i
        // T0..T8 = temporaries, T9 = assembler scratch
        use IntReg as R;
        let mut b = Assembler::new();
        b.li(R::G0, matrix as i64);
        b.li(R::G1, events as i64);
        b.li(R::G2, n as i64);
        b.li(R::G3, barrier as i64);

        b.for_range(R::S0, 0, (n - 1) as i64, |b| {
            // owner(k) = k mod nprocs
            b.alu(AluOp::Rem, R::T0, R::S0, R::A1);
            b.if_then_else(
                BranchCond::Eq,
                R::T0,
                R::A0,
                |b| {
                    // --- pivot work: divide subdiagonal of column k ---
                    // T1 = &A[0][k] = base + k*n*8
                    b.mul(R::T1, R::S0, R::G2);
                    b.alu_imm(AluOp::Sll, R::T1, R::T1, 3);
                    b.add(R::T1, R::G0, R::T1);
                    // F0 = pivot A[k][k]
                    b.alu_imm(AluOp::Sll, R::T2, R::S0, 3);
                    b.add(R::T2, R::T1, R::T2);
                    b.loadf(FpReg::F0, R::T2, 0);
                    // for i in k+1..n: A[i][k] /= pivot
                    b.addi(R::T3, R::S0, 1);
                    b.for_step(R::S1, R::T3, R::G2, 1, |b| {
                        b.index_word(R::T4, R::T1, R::S1);
                        b.loadf(FpReg::F1, R::T4, 0);
                        b.fdiv(FpReg::F1, FpReg::F1, FpReg::F0);
                        b.storef(FpReg::F1, R::T4, 0);
                    });
                    // publish column k
                    b.index_word(R::T4, R::G1, R::S0);
                    b.set_event(R::T4, 0);
                },
                |b| {
                    // --- consumer: wait for column k ---
                    b.index_word(R::T4, R::G1, R::S0);
                    b.wait_event(R::T4, 0);
                },
            );
            // --- update the columns I own: j in k+1..n, j mod P == me ---
            b.addi(R::T3, R::S0, 1);
            b.for_step(R::S1, R::T3, R::G2, 1, |b| {
                b.alu(AluOp::Rem, R::T0, R::S1, R::A1);
                b.if_then(BranchCond::Eq, R::T0, R::A0, |b| {
                    // T5 = &A[0][j], T1 = &A[0][k]
                    b.mul(R::T5, R::S1, R::G2);
                    b.alu_imm(AluOp::Sll, R::T5, R::T5, 3);
                    b.add(R::T5, R::G0, R::T5);
                    b.mul(R::T1, R::S0, R::G2);
                    b.alu_imm(AluOp::Sll, R::T1, R::T1, 3);
                    b.add(R::T1, R::G0, R::T1);
                    // F2 = A[k][j]
                    b.alu_imm(AluOp::Sll, R::T6, R::S0, 3);
                    b.add(R::T6, R::T5, R::T6);
                    b.loadf(FpReg::F2, R::T6, 0);
                    // for i in k+1..n: A[i][j] -= A[i][k] * A[k][j]
                    b.addi(R::T7, R::S0, 1);
                    b.for_step(R::S2, R::T7, R::G2, 1, |b| {
                        b.index_word(R::T8, R::T1, R::S2);
                        b.loadf(FpReg::F3, R::T8, 0);
                        b.index_word(R::T8, R::T5, R::S2);
                        b.loadf(FpReg::F4, R::T8, 0);
                        b.fmul(FpReg::F5, FpReg::F3, FpReg::F2);
                        b.fsub(FpReg::F4, FpReg::F4, FpReg::F5);
                        b.storef(FpReg::F4, R::T8, 0);
                    });
                });
            });
        });
        b.barrier(R::G3, 0);
        b.halt();
        let program = b.assemble().expect("LU assembles");

        // ---- verifier ---------------------------------------------------
        let mut expect = self.initial_matrix();
        self.reference_lu(&mut expect);
        let lu = *self;
        let verify = move |mem: &lookahead_isa::interp::FlatMemory| -> Result<(), String> {
            let n = lu.n;
            for j in 0..n {
                for i in 0..n {
                    let got = mem.read_f64(matrix + ((j * n + i) as u64) * 8);
                    let want = expect[j * n + i];
                    if got.to_bits() != want.to_bits() {
                        return Err(format!("A[{i}][{j}]: simulated {got} != reference {want}"));
                    }
                }
            }
            Ok(())
        };

        BuiltWorkload {
            program,
            image,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_verify;
    use lookahead_isa::SyncKind;

    #[test]
    fn reference_lu_reconstructs_matrix() {
        // L*U must reproduce the original matrix (modulo rounding):
        // a sanity check that the reference itself is a real LU.
        let lu = Lu { n: 8 };
        let orig = lu.initial_matrix();
        let mut fact = orig.clone();
        lu.reference_lu(&mut fact);
        let n = lu.n;
        let get = |m: &[f64], i: usize, j: usize| m[j * n + i];
        for i in 0..n {
            for j in 0..n {
                // (L*U)[i][j], L unit-lower, U upper.
                let mut sum = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { get(&fact, i, k) };
                    let u = get(&fact, k, j);
                    sum += l * u;
                }
                let want = get(&orig, i, j);
                assert!(
                    (sum - want).abs() < 1e-9 * want.abs().max(1.0),
                    "LU product mismatch at ({i},{j}): {sum} vs {want}"
                );
            }
        }
    }

    #[test]
    fn lu_verifies_on_one_processor() {
        run_and_verify(&Lu { n: 8 }, 1);
    }

    #[test]
    fn lu_verifies_on_four_processors() {
        run_and_verify(&Lu { n: 12 }, 4);
    }

    #[test]
    fn lu_verifies_on_sixteen_processors() {
        run_and_verify(&Lu::small(), 16);
    }

    #[test]
    fn lu_uses_events_not_locks() {
        let out = run_and_verify(&Lu { n: 12 }, 4);
        let mut waits = 0u64;
        let mut sets = 0u64;
        let mut locks = 0u64;
        for t in &out.traces {
            for e in t.iter() {
                if let Some(s) = e.sync_access() {
                    match s.kind {
                        SyncKind::WaitEvent => waits += 1,
                        SyncKind::SetEvent => sets += 1,
                        SyncKind::Lock => locks += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(locks, 0, "paper's LU uses no locks");
        assert_eq!(sets, 11, "one set per column 0..n-1");
        assert!(waits > 0, "non-owners wait on column events");
    }
}
