//! The five parallel applications of the paper, written from scratch
//! as SRISC programs: **MP3D**, **LU**, **PTHOR**, **LOCUS**, and
//! **OCEAN**.
//!
//! The paper's applications are C/Fortran programs from the SPLASH
//! suite run under Tango Lite. We reimplement each application's
//! *algorithm* as an SRISC kernel (see `DESIGN.md` for the
//! substitution rationale): LU really factors a matrix, PTHOR really
//! runs distributed-time logic simulation over a gate netlist, OCEAN
//! really relaxes PDE grids, MP3D really moves particles through a
//! cell space, and LOCUS really routes wires over a shared cost array.
//! The characteristics that drive the paper's results — miss behaviour,
//! data-dependence distance, branch predictability, synchronization
//! pattern — therefore emerge from real address streams and control
//! flow rather than from synthetic randomness.
//!
//! Every workload produces a [`BuiltWorkload`]: the SPMD program, the
//! initial shared-memory image, and a verifier that checks the final
//! shared memory against a reference computation in plain Rust. The
//! verifier makes the whole simulation stack self-checking: assembler,
//! interpreter, coherence, synchronization and scheduling all have to
//! be correct for a workload to verify.
//!
//! # Example
//!
//! ```
//! use lookahead_workloads::{Workload, lu::Lu};
//! use lookahead_multiproc::{SimConfig, Simulator};
//!
//! let built = Lu { n: 12 }.build(4);
//! let config = SimConfig { num_procs: 4, ..SimConfig::default() };
//! let out = Simulator::new(built.program, built.image, config)?.run()?;
//! (built.verify)(&out.final_memory).expect("LU result matches reference");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod locus;
pub mod lu;
pub mod mp3d;
pub mod ocean;
pub mod pthor;

use lookahead_isa::interp::FlatMemory;
use lookahead_isa::program::DataImage;
use lookahead_isa::Program;

/// A final-memory self-check: returns a description of the first
/// mismatch against the reference computation on failure.
pub type VerifyFn = Box<dyn Fn(&FlatMemory) -> Result<(), String> + Send + Sync>;

/// A workload compiled to SRISC, ready to hand to the multiprocessor
/// simulator, with a self-check against a Rust reference computation.
pub struct BuiltWorkload {
    /// The SPMD program all processors execute.
    pub program: Program,
    /// Initial shared memory contents.
    pub image: DataImage,
    /// Verifies the final shared memory against the reference result.
    pub verify: VerifyFn,
}

impl std::fmt::Debug for BuiltWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltWorkload")
            .field("program_len", &self.program.len())
            .field("image_bytes", &self.image.size_bytes())
            .finish()
    }
}

/// A parameterized application that can be compiled for a processor
/// count.
pub trait Workload {
    /// Short name ("LU", "MP3D", ...), as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Compiles the workload for `num_procs` processors.
    fn build(&self, num_procs: usize) -> BuiltWorkload;
}

/// The five applications with their default (scaled-down) parameters,
/// in the paper's order. `small` variants keep unit tests fast; the
/// defaults are what the experiment harness uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    Mp3d,
    Lu,
    Pthor,
    Locus,
    Ocean,
}

impl App {
    /// All five applications in the paper's order.
    pub const ALL: [App; 5] = [App::Mp3d, App::Lu, App::Pthor, App::Locus, App::Ocean];

    /// The application's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            App::Mp3d => "MP3D",
            App::Lu => "LU",
            App::Pthor => "PTHOR",
            App::Locus => "LOCUS",
            App::Ocean => "OCEAN",
        }
    }

    /// The workload at default (experiment-harness) size.
    pub fn default_workload(self) -> Box<dyn Workload + Send + Sync> {
        match self {
            App::Mp3d => Box::new(mp3d::Mp3d::default()),
            App::Lu => Box::new(lu::Lu::default()),
            App::Pthor => Box::new(pthor::Pthor::default()),
            App::Locus => Box::new(locus::Locus::default()),
            App::Ocean => Box::new(ocean::Ocean::default()),
        }
    }

    /// The workload at the paper's published size (minutes of
    /// simulation rather than seconds).
    pub fn paper_workload(self) -> Box<dyn Workload + Send + Sync> {
        match self {
            App::Mp3d => Box::new(mp3d::Mp3d::paper()),
            App::Lu => Box::new(lu::Lu::paper()),
            App::Pthor => Box::new(pthor::Pthor::paper()),
            App::Locus => Box::new(locus::Locus::paper()),
            App::Ocean => Box::new(ocean::Ocean::paper()),
        }
    }

    /// The workload at a size beyond the paper's, for stressing the
    /// streamed bounded-memory trace pipeline.
    pub fn large_workload(self) -> Box<dyn Workload + Send + Sync> {
        match self {
            App::Mp3d => Box::new(mp3d::Mp3d::large()),
            App::Lu => Box::new(lu::Lu::large()),
            App::Pthor => Box::new(pthor::Pthor::large()),
            App::Locus => Box::new(locus::Locus::large()),
            App::Ocean => Box::new(ocean::Ocean::large()),
        }
    }

    /// The workload at a small size suitable for unit tests.
    pub fn small_workload(self) -> Box<dyn Workload + Send + Sync> {
        match self {
            App::Mp3d => Box::new(mp3d::Mp3d::small()),
            App::Lu => Box::new(lu::Lu::small()),
            App::Pthor => Box::new(pthor::Pthor::small()),
            App::Locus => Box::new(locus::Locus::small()),
            App::Ocean => Box::new(ocean::Ocean::small()),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use lookahead_multiproc::{SimConfig, SimOutcome, Simulator};

    /// Builds, runs and verifies a workload on `n` processors,
    /// returning the outcome for further assertions.
    pub fn run_and_verify(w: &dyn Workload, n: usize) -> SimOutcome {
        let built = w.build(n);
        let config = SimConfig {
            num_procs: n,
            max_cycles: 500_000_000,
            ..SimConfig::default()
        };
        let out = Simulator::new(built.program, built.image, config)
            .unwrap_or_else(|e| panic!("{}: config error: {e}", w.name()))
            .run()
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", w.name()));
        (built.verify)(&out.final_memory)
            .unwrap_or_else(|e| panic!("{}: verification failed: {e}", w.name()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_match_paper() {
        let names: Vec<_> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["MP3D", "LU", "PTHOR", "LOCUS", "OCEAN"]);
        assert_eq!(App::Lu.to_string(), "LU");
    }
}
