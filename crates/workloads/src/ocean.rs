//! OCEAN — red-black relaxation over a family of coupled 2-D grids.
//!
//! The paper's OCEAN solves spatial partial differential equations on
//! ~25 two-dimensional arrays with barrier synchronization between
//! phases (Table 2 shows barriers as essentially its only
//! synchronization). Our kernel keeps that structure: `grids` square
//! arrays are relaxed for `steps` time steps with red-black
//! Gauss–Seidel sweeps; each grid after the first is coupled to its
//! predecessor, so every step touches all arrays, and a barrier
//! separates every color phase of every grid — giving the
//! barrier-dominated synchronization profile and the high write-miss
//! traffic (each point is rewritten every step) the paper reports for
//! OCEAN.
//!
//! Rows are block-partitioned across processors, so the only
//! communication is at partition boundaries (neighbor rows), as in the
//! real application.
//!
//! Determinism: red points read only black points (and vice versa),
//! and the coupling term reads the *previous* grid, whose sweep is
//! separated by a barrier — so the update order within a sweep cannot
//! affect the result and the simulated grids match the Rust reference
//! bit for bit.

use crate::{BuiltWorkload, Workload};
use lookahead_isa::program::DataImage;
use lookahead_isa::{AluOp, Assembler, BranchCond, FpReg, IntReg};

/// Red-black relaxation over `grids` coupled `n`×`n` arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ocean {
    /// Grid dimension (the paper simulated a 98×98-point grid).
    pub n: usize,
    /// Number of coupled arrays (paper: ~25).
    pub grids: usize,
    /// Number of time steps.
    pub steps: usize,
}

impl Default for Ocean {
    /// The experiment-harness size: 50×50, 12 grids, 3 steps.
    fn default() -> Ocean {
        Ocean {
            n: 50,
            grids: 12,
            steps: 3,
        }
    }
}

impl Ocean {
    /// A size small enough for unit tests.
    pub fn small() -> Ocean {
        Ocean {
            n: 10,
            grids: 2,
            steps: 1,
        }
    }

    /// The paper's size: a 98×98-point grid over ~25 arrays (we run
    /// 8 time steps; the original iterates to convergence).
    pub fn paper() -> Ocean {
        Ocean {
            n: 98,
            grids: 25,
            steps: 8,
        }
    }

    /// Beyond the paper: a 146×146 grid for 10 steps, sized for the
    /// streamed bounded-memory pipeline.
    pub fn large() -> Ocean {
        Ocean {
            n: 146,
            grids: 25,
            steps: 10,
        }
    }

    fn initial_grids(&self) -> Vec<f64> {
        let (n, k) = (self.n, self.grids);
        let mut v = vec![0.0f64; k * n * n];
        for g in 0..k {
            for i in 0..n {
                for j in 0..n {
                    // Quadratic in i and j so the field is not harmonic
                    // (the discrete Laplacian of a linear field is the
                    // field itself, which would make relaxation a no-op).
                    v[g * n * n + i * n + j] =
                        ((i * i * 3 + j * j * 5 + g * 11) % 101) as f64 / 101.0;
                }
            }
        }
        v
    }

    /// Reference relaxation with the identical update formula.
    fn reference(&self, v: &mut [f64]) {
        let (n, k) = (self.n, self.grids);
        let stride = n * n;
        for _t in 0..self.steps {
            for g in 0..k {
                for color in 0..2usize {
                    for i in 1..n - 1 {
                        let mut j = 1 + ((i + 1 + color) % 2);
                        while j < n - 1 {
                            let base = g * stride + i * n + j;
                            // Same association order as the SRISC kernel:
                            // (up + down) + (left + right), then * 0.25.
                            let mut val =
                                0.25 * ((v[base - n] + v[base + n]) + (v[base - 1] + v[base + 1]));
                            if g > 0 {
                                val = 0.5 * (val + v[base - stride]);
                            }
                            v[base] = val;
                            j += 2;
                        }
                    }
                }
            }
        }
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "OCEAN"
    }

    fn build(&self, num_procs: usize) -> BuiltWorkload {
        assert!(self.n >= 4, "OCEAN needs at least a 4x4 grid");
        assert!(self.grids >= 1 && self.steps >= 1);
        let (n, k) = (self.n, self.grids);
        let stride_bytes = (n * n * 8) as i64;
        let row_bytes = (n * 8) as i64;

        // ---- shared memory layout -------------------------------------
        let mut image = DataImage::new();
        image.align_to(16);
        let grids_base = image.alloc_f64_slice(&self.initial_grids());
        image.align_to(16);
        let barrier = image.alloc_words(2);

        // Block row partition of interior rows 1..n-1.
        let interior = n - 2;
        let h = interior.div_ceil(num_procs);

        // ---- registers -------------------------------------------------
        // G0 = current grid base, G1 = barrier, G2 = n-1 (interior end)
        // G3 = row_start, G4 = row_end, G5 = grids base
        // S0 = t, S1 = g, S2 = color, S3 = i, S4 = j
        // F10 = 0.25, F11 = 0.5
        use IntReg as R;
        let mut b = Assembler::new();
        b.li(R::G5, grids_base as i64);
        b.li(R::G1, barrier as i64);
        b.li(R::G2, (n - 1) as i64);
        b.lif(FpReg::F10, 0.25);
        b.lif(FpReg::F11, 0.5);
        // row_start = min(1 + p*h, n-1); row_end = min(row_start+h, n-1)
        b.muli(R::G3, R::A0, h as i64);
        b.addi(R::G3, R::G3, 1);
        b.if_then(BranchCond::Gt, R::G3, R::G2, |b| {
            b.mv(R::G3, R::G2);
        });
        b.addi(R::G4, R::G3, h as i64);
        b.if_then(BranchCond::Gt, R::G4, R::G2, |b| {
            b.mv(R::G4, R::G2);
        });

        b.for_range(R::S0, 0, self.steps as i64, |b| {
            b.for_range(R::S1, 0, k as i64, |b| {
                // G0 = grids_base + g*stride
                b.muli(R::G0, R::S1, stride_bytes);
                b.add(R::G0, R::G5, R::G0);
                b.for_range(R::S2, 0, 2, |b| {
                    // my rows: i in [row_start, row_end)
                    b.for_step(R::S3, R::G3, R::G4, 1, |b| {
                        // j0 = 1 + (i + 1 + color) % 2
                        b.add(R::T0, R::S3, R::S2);
                        b.addi(R::T0, R::T0, 1);
                        b.alu_imm(AluOp::Rem, R::T0, R::T0, 2);
                        b.addi(R::S4, R::T0, 1);
                        // T1 = &A[i][j0]
                        b.muli(R::T1, R::S3, row_bytes);
                        b.add(R::T1, R::G0, R::T1);
                        b.alu_imm(AluOp::Sll, R::T2, R::S4, 3);
                        b.add(R::T1, R::T1, R::T2);
                        // The column sweep, specialized by whether
                        // this grid couples to its predecessor. Two
                        // straight-line loop bodies (no per-point
                        // branch) keep the branch rate close to the
                        // paper's OCEAN and leave the loops in the
                        // canonical shape the unroller accepts.
                        let stencil = |b: &mut Assembler| {
                            b.loadf(FpReg::F0, R::T1, -row_bytes); // up
                            b.loadf(FpReg::F1, R::T1, row_bytes); // down
                            b.loadf(FpReg::F2, R::T1, -8); // left
                            b.loadf(FpReg::F3, R::T1, 8); // right
                            b.fadd(FpReg::F0, FpReg::F0, FpReg::F1);
                            b.fadd(FpReg::F2, FpReg::F2, FpReg::F3);
                            b.fadd(FpReg::F0, FpReg::F0, FpReg::F2);
                            b.fmul(FpReg::F0, FpReg::F0, FpReg::F10);
                        };
                        b.if_then_else(
                            BranchCond::Gt,
                            R::S1,
                            R::ZERO,
                            |b| {
                                b.while_loop(BranchCond::Lt, R::S4, R::G2, |b| {
                                    stencil(b);
                                    b.loadf(FpReg::F4, R::T1, -stride_bytes);
                                    b.fadd(FpReg::F0, FpReg::F0, FpReg::F4);
                                    b.fmul(FpReg::F0, FpReg::F0, FpReg::F11);
                                    b.storef(FpReg::F0, R::T1, 0);
                                    b.addi(R::T1, R::T1, 16);
                                    b.addi(R::S4, R::S4, 2);
                                });
                            },
                            |b| {
                                b.while_loop(BranchCond::Lt, R::S4, R::G2, |b| {
                                    stencil(b);
                                    b.storef(FpReg::F0, R::T1, 0);
                                    b.addi(R::T1, R::T1, 16);
                                    b.addi(R::S4, R::S4, 2);
                                });
                            },
                        );
                    });
                    b.barrier(R::G1, 0);
                });
            });
        });
        b.halt();
        let program = b.assemble().expect("OCEAN assembles");

        // ---- verifier ---------------------------------------------------
        let mut expect = self.initial_grids();
        self.reference(&mut expect);
        let me = *self;
        let verify = move |mem: &lookahead_isa::interp::FlatMemory| -> Result<(), String> {
            let n = me.n;
            for (idx, want) in expect.iter().enumerate() {
                let got = mem.read_f64(grids_base + idx as u64 * 8);
                if got.to_bits() != want.to_bits() {
                    let g = idx / (n * n);
                    let i = (idx / n) % n;
                    let j = idx % n;
                    return Err(format!(
                        "grid {g} [{i}][{j}]: simulated {got} != reference {want}"
                    ));
                }
            }
            Ok(())
        };

        BuiltWorkload {
            program,
            image,
            verify: Box::new(verify),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_and_verify;
    use lookahead_isa::SyncKind;

    #[test]
    fn ocean_verifies_on_one_processor() {
        run_and_verify(&Ocean::small(), 1);
    }

    #[test]
    fn ocean_verifies_on_four_processors() {
        run_and_verify(
            &Ocean {
                n: 12,
                grids: 3,
                steps: 2,
            },
            4,
        );
    }

    #[test]
    fn ocean_verifies_on_sixteen_processors() {
        run_and_verify(
            &Ocean {
                n: 20,
                grids: 2,
                steps: 1,
            },
            16,
        );
    }

    #[test]
    fn ocean_synchronizes_only_with_barriers() {
        let out = run_and_verify(
            &Ocean {
                n: 12,
                grids: 3,
                steps: 2,
            },
            4,
        );
        let mut barriers = 0u64;
        let mut others = 0u64;
        for t in &out.traces {
            for e in t.iter() {
                if let Some(s) = e.sync_access() {
                    if s.kind == SyncKind::Barrier {
                        barriers += 1;
                    } else {
                        others += 1;
                    }
                }
            }
        }
        assert_eq!(others, 0, "OCEAN uses only barriers");
        // procs * steps * grids * 2 colors.
        assert_eq!(barriers, 4 * 2 * 3 * 2);
    }

    #[test]
    fn reference_changes_interior_preserves_boundary() {
        let o = Ocean::small();
        let orig = o.initial_grids();
        let mut v = orig.clone();
        o.reference(&mut v);
        let n = o.n;
        for j in 0..n {
            assert_eq!(v[j], orig[j], "top boundary row untouched");
            assert_eq!(v[(n - 1) * n + j], orig[(n - 1) * n + j]);
        }
        assert_ne!(v[n + 1], orig[n + 1], "interior relaxed");
    }
}
