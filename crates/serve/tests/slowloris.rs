//! Slow-loris regression: stalled connections must not delay healthy
//! clients.
//!
//! The attack shape: open many connections, send a *partial* request
//! head, then go silent. A thread-per-connection server burns one
//! worker per stalled socket — 64 stallers against a small pool
//! starves every healthy client. The reactor transport parks stalled
//! connections in epoll (they cost a file descriptor, not a thread)
//! and evicts them with `408 Request Timeout` when the per-connection
//! header-completion deadline expires.
//!
//! The test pins both halves: healthy p99 stays far below the read
//! timeout while 64 stallers sit open, and the stallers themselves get
//! a 408 once the deadline passes.

use lookahead_serve::{ExperimentService, Server, ServerConfig, ServiceConfig, Transport};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STALLED: usize = 64;
const HEALTHY: usize = 32;
const READ_TIMEOUT: Duration = Duration::from_secs(2);

fn healthy_get(addr: std::net::SocketAddr) -> (u16, Duration) {
    let t0 = Instant::now();
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read response");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, t0.elapsed())
}

#[test]
fn stalled_connections_do_not_delay_healthy_clients() {
    if !lookahead_serve::reactor::supported() {
        eprintln!("skipping: reactor transport unsupported on this platform");
        return;
    }
    let service = Arc::new(ExperimentService::new(ServiceConfig::default(), None));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        threads: 2,
        transport: Transport::Reactor,
        read_timeout: READ_TIMEOUT,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run(service));

    // 64 connections send half a request head and then go silent. Keep
    // the sockets alive — dropping one would close it and release the
    // server's state early.
    let stalled: Vec<TcpStream> = (0..STALLED)
        .map(|_| {
            let mut conn = TcpStream::connect(addr).expect("staller connect");
            conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: slow")
                .expect("staller partial head");
            conn
        })
        .collect();

    // Healthy traffic while all 64 stallers sit open: every request
    // must answer promptly. A transport that serialized behind the
    // stallers would stall for READ_TIMEOUT or forever.
    let mut latencies: Vec<Duration> = (0..HEALTHY)
        .map(|i| {
            let (status, elapsed) = healthy_get(addr);
            assert_eq!(status, 200, "healthy request {i} while stalled");
            elapsed
        })
        .collect();
    latencies.sort_unstable();
    let p99 = latencies[(99 * (latencies.len() - 1))
        .div_ceil(100)
        .min(latencies.len() - 1)];
    assert!(
        p99 < READ_TIMEOUT / 4,
        "healthy p99 {p99:?} while {STALLED} stalled connections are open \
         (read timeout {READ_TIMEOUT:?})"
    );

    // The stallers themselves are evicted with 408 once the
    // header-completion deadline expires.
    let mut evicted = 0;
    for mut conn in stalled {
        conn.set_read_timeout(Some(READ_TIMEOUT * 4)).unwrap();
        let mut text = String::new();
        if conn.read_to_string(&mut text).is_ok() && text.starts_with("HTTP/1.1 408 ") {
            evicted += 1;
        }
    }
    assert_eq!(evicted, STALLED, "every staller gets a 408 and a close");

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.accepted as usize, STALLED + HEALTHY);
    // 408s are fully written error responses, not aborts.
    assert_eq!(stats.served as usize, STALLED + HEALTHY);
    assert_eq!(stats.aborted, 0);
}
