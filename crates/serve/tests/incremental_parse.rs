//! Property tests for the incremental request parser: however a
//! request head is sliced across TCP reads, [`http::HeadParser`] must
//! produce exactly the result the one-shot [`http::read_request`]
//! parser produces — the same [`http::Request`] for valid heads, the
//! same status code (400/405/413/414/431) for each rejection class.
//!
//! (408 is the one status no byte sequence can produce: it is the
//! reactor's read-deadline, exercised end-to-end by the slow-loris
//! test.)
//!
//! Split points are exhaustive at byte granularity (feed one byte at a
//! time) and sampled for multi-byte chunks with a seeded LCG, so runs
//! are deterministic.

use lookahead_serve::http::{self, HeadParser, Request, RequestError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// What parsing one complete request head yields, reduced to the
/// comparable part: the request itself, or the status the error maps
/// to (`None` for drop-the-connection I/O failures).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Parsed(Request),
    Rejected(Option<u16>),
}

impl Outcome {
    fn of(result: Result<Request, RequestError>) -> Outcome {
        match result {
            Ok(request) => Outcome::Parsed(request),
            Err(e) => Outcome::Rejected(e.status()),
        }
    }
}

/// The one-shot parser's verdict on a complete head.
fn one_shot(raw: &[u8]) -> Outcome {
    Outcome::of(http::read_request(&mut &raw[..]))
}

/// The incremental parser's verdict when the head arrives in the given
/// chunks: the first `Some`/`Err` that `feed` produces.
fn incremental(chunks: &[&[u8]]) -> Option<Outcome> {
    let mut parser = HeadParser::new();
    for chunk in chunks {
        match parser.feed(chunk) {
            Ok(None) => {}
            Ok(Some(request)) => return Some(Outcome::Parsed(request)),
            Err(e) => return Some(Outcome::Rejected(e.status())),
        }
    }
    None
}

/// A minimal deterministic PRNG (64-bit LCG, Knuth constants) so the
/// sampled split points are reproducible run to run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// The corpus: one representative per accept/reject class, plus shapes
/// that historically trip buffering parsers (percent-encoding, header
/// whitespace, HTTP/1.0, CRLF-adjacent splits).
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let long_line = {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', http::MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        raw
    };
    let many_headers = {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..http::MAX_HEADER_COUNT + 5 {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw
    };
    let huge_header = {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', http::MAX_HEADER_LINE + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        raw
    };
    vec![
        ("plain", b"GET /healthz HTTP/1.1\r\n\r\n".to_vec()),
        (
            "query and headers",
            b"GET /v1/experiments?app=mp3d&window=64 HTTP/1.1\r\nHost: t\r\nAccept: */*\r\n\r\n"
                .to_vec(),
        ),
        (
            "percent encoding",
            b"GET /v1/experiments?app=mp%33d&x=a%20b HTTP/1.1\r\n\r\n".to_vec(),
        ),
        (
            "client request id",
            b"GET / HTTP/1.1\r\nX-Request-Id: abc-123\r\n\r\n".to_vec(),
        ),
        (
            "explicit close",
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        ),
        (
            "http/1.0 keep-alive",
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".to_vec(),
        ),
        ("http/1.0 default close", b"GET / HTTP/1.0\r\n\r\n".to_vec()),
        (
            "header whitespace",
            b"GET / HTTP/1.1\r\nHost:   spaced.example  \r\n\r\n".to_vec(),
        ),
        ("bad request line", b"BOGUS\r\n\r\n".to_vec()),
        ("missing version", b"GET /\r\n\r\n".to_vec()),
        (
            "bad header line",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
        ),
        ("method not allowed", b"POST / HTTP/1.1\r\n\r\n".to_vec()),
        (
            "announced body",
            b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec(),
        ),
        ("uri too long", long_line),
        ("too many headers", many_headers),
        ("huge header line", huge_header),
    ]
}

#[test]
fn byte_at_a_time_matches_one_shot() {
    for (name, raw) in corpus() {
        let expected = one_shot(&raw);
        let chunks: Vec<&[u8]> = raw.chunks(1).collect();
        let got = incremental(&chunks);
        assert_eq!(got, Some(expected), "case {name:?}, fed byte at a time");
    }
}

#[test]
fn random_split_points_match_one_shot() {
    let mut rng = Lcg(0x5eed_cafe);
    for (name, raw) in corpus() {
        let expected = one_shot(&raw);
        for trial in 0..32 {
            // 1..=4 split points, sorted and deduplicated, carve the
            // head into contiguous chunks.
            let mut cuts: Vec<usize> = (0..1 + rng.next(4)).map(|_| rng.next(raw.len())).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut chunks: Vec<&[u8]> = Vec::new();
            let mut last = 0;
            for cut in cuts {
                chunks.push(&raw[last..cut]);
                last = cut;
            }
            chunks.push(&raw[last..]);
            let got = incremental(&chunks);
            assert_eq!(
                got,
                Some(expected.clone()),
                "case {name:?}, trial {trial}, chunk lengths {:?}",
                chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            );
        }
    }
}

#[test]
fn incomplete_heads_keep_waiting() {
    // Every proper prefix of a valid head parses to "need more bytes",
    // never to an error or a phantom request.
    let raw = b"GET /v1/apps HTTP/1.1\r\nHost: t\r\n\r\n";
    for end in 0..raw.len() - 1 {
        let mut parser = HeadParser::new();
        match parser.feed(&raw[..end]) {
            Ok(None) => {}
            other => panic!("prefix of {end} bytes yielded {other:?}"),
        }
        assert_eq!(parser.buffered(), end);
    }
}

#[test]
fn pipelined_bytes_are_retained_across_requests() {
    // Two requests in one chunk: feed returns the first, advance
    // returns the second from the retained buffer without new bytes.
    let mut parser = HeadParser::new();
    let raw = b"GET /first HTTP/1.1\r\n\r\nGET /second?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
    let first = parser.feed(raw).expect("first parses").expect("complete");
    assert_eq!(first.path, "/first");
    assert!(first.keep_alive);
    assert!(parser.has_buffered());
    let second = parser
        .advance()
        .expect("second parses")
        .expect("already buffered");
    assert_eq!(second.path, "/second");
    assert_eq!(second.param("x"), Some("1"));
    assert!(!second.keep_alive);
    assert!(!parser.has_buffered());
    assert_eq!(parser.advance().expect("no error"), None);
}

/// End-to-end pipelining: N requests written in one burst on one
/// socket come back as N complete responses, in order, on that socket.
#[test]
fn reactor_answers_pipelined_requests_in_order() {
    if !lookahead_serve::reactor::supported() {
        eprintln!("skipping: reactor transport unsupported on this platform");
        return;
    }
    use lookahead_serve::{ExperimentService, Server, ServerConfig, ServiceConfig, Transport};
    let service = Arc::new(ExperimentService::new(ServiceConfig::default(), None));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        threads: 2,
        transport: Transport::Reactor,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run(service));

    const N: usize = 5;
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut burst = String::new();
    for i in 0..N {
        // The last request closes so the reader below sees EOF.
        let extra = if i == N - 1 {
            "Connection: close\r\n"
        } else {
            ""
        };
        burst.push_str(&format!("GET /healthz HTTP/1.1\r\nHost: t\r\n{extra}\r\n"));
    }
    conn.write_all(burst.as_bytes()).expect("write burst");

    let mut reader = BufReader::new(conn);
    for i in 0..N {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        assert!(
            status_line.starts_with("HTTP/1.1 200 "),
            "response {i}: {status_line:?}"
        );
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            if line == "\r\n" {
                break;
            }
            if let Some(v) = line
                .strip_prefix("Content-Length:")
                .or_else(|| line.strip_prefix("content-length:"))
            {
                content_length = v.trim().parse().expect("content length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        assert!(
            std::str::from_utf8(&body).expect("utf8").contains("ok"),
            "response {i} body"
        );
    }

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.accepted, 1, "one socket carried the whole burst");
    assert_eq!(stats.served as usize, N);
    assert_eq!(stats.aborted, 0);
}
