//! End-to-end tests for the request-tracing layer, pinning the PR's
//! acceptance criteria:
//!
//! * a cold `/v1/figure3` request's span tree accounts for the
//!   measured end-to-end latency — the named stages (queue, cache
//!   lookup, generation, re-timing, render) sum to within 5% of the
//!   root `request` span;
//! * report bodies are byte-identical whether or not tracing is
//!   active (the HTTP path always traces; `handle_target` never does);
//! * every request — including coalesced single-flight followers and
//!   error responses — gets its own `X-Request-Id`, and a follower's
//!   trace shows the wait instead of a duplicated generation.

use lookahead_harness::{SizeTier, TraceCache};
use lookahead_multiproc::SimConfig;
use lookahead_serve::{handle_target, ExperimentService, Server, ServerConfig, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn small_config() -> ServiceConfig {
    ServiceConfig {
        default_tier: SizeTier::Small,
        sim: SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        },
        retime_workers: 2,
        ..ServiceConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lktr-tracing-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct RunningServer {
    addr: SocketAddr,
    handle: lookahead_serve::ShutdownHandle,
    join: Option<std::thread::JoinHandle<lookahead_serve::ServerStats>>,
}

impl RunningServer {
    fn start(service: Arc<ExperimentService>) -> RunningServer {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            threads: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run(service));
        RunningServer {
            addr,
            handle,
            join: Some(join),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// One GET with optional extra request headers, returning the parsed
/// status line, headers, and body.
fn http_get(addr: SocketAddr, target: &str, extra: &[(&str, &str)]) -> Reply {
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    conn.write_all(req.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

/// A span as parsed back out of a `/v1/debug/trace/<id>` body.
#[derive(Debug)]
struct Span {
    parent: u64,
    name: String,
    dur_us: u64,
}

/// Parses the flat span objects out of the trace body. The renderer
/// emits each span as
/// `{"span":N,"parent":N,"name":"...","start_us":N,"dur_us":N}`,
/// so splitting on the object opener is unambiguous (names are
/// validated identifiers, never containing braces).
fn parse_spans(body: &str) -> Vec<Span> {
    let mut spans = Vec::new();
    for chunk in body.split("{\"span\":").skip(1) {
        let field = |key: &str| -> String {
            let at = chunk
                .find(key)
                .unwrap_or_else(|| panic!("{key} in {chunk}"));
            chunk[at + key.len()..]
                .chars()
                .take_while(|c| *c != ',' && *c != '}' && *c != '"')
                .collect()
        };
        spans.push(Span {
            parent: field("\"parent\":").parse().unwrap(),
            name: field("\"name\":\"").to_string(),
            dur_us: field("\"dur_us\":").parse().unwrap(),
        });
    }
    spans
}

fn trace_field_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap();
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn cold_figure3_trace_accounts_for_end_to_end_latency() {
    let cache = temp_dir("cold-figure3");
    let service = Arc::new(ExperimentService::new(
        small_config(),
        Some(TraceCache::new(&cache)),
    ));
    let server = RunningServer::start(Arc::clone(&service));

    let reply = http_get(
        server.addr,
        "/v1/figure3?app=lu",
        &[("X-Request-Id", "trace-me.1")],
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.header("X-Request-Id"),
        Some("trace-me.1"),
        "a well-formed client id is echoed back"
    );
    let timing = reply.header("Server-Timing").expect("Server-Timing set");
    for stage in ["queue;dur=", "parse;dur=", "handler;dur="] {
        assert!(timing.contains(stage), "{stage} missing from {timing}");
    }

    let trace = http_get(server.addr, "/v1/debug/trace/trace-me.1", &[]);
    assert_eq!(trace.status, 200, "{}", trace.body);
    let total = trace_field_u64(&trace.body, "total_us");
    let spans = parse_spans(&trace.body);

    // The transport stages and the handler's pipeline stages are all
    // present exactly once for a cold, cache-backed figure3.
    for name in [
        "request",
        "queue",
        "parse",
        "handler",
        "write",
        "cache.lookup",
        "generate",
        "retime",
        "render",
    ] {
        assert_eq!(
            spans.iter().filter(|s| s.name == name).count(),
            1,
            "{name} in {spans:?}"
        );
    }
    let root = spans.iter().find(|s| s.name == "request").unwrap();
    assert_eq!(root.parent, 0);
    assert_eq!(root.dur_us, total, "the root span spans the request");

    // The acceptance criterion: the named stages account for the
    // end-to-end latency to within 5%. (`parse` and `write` are
    // microseconds; generation dominates.)
    let stage_sum: u64 = spans
        .iter()
        .filter(|s| {
            matches!(
                s.name.as_str(),
                "queue" | "cache.lookup" | "generate" | "retime" | "render"
            )
        })
        .map(|s| s.dur_us)
        .sum();
    assert!(
        stage_sum <= total,
        "stages nest inside the request: {stage_sum} vs {total}"
    );
    assert!(
        stage_sum as f64 >= 0.95 * total as f64,
        "stages must account for >=95% of the {total}us end-to-end \
         latency, got {stage_sum}us: {spans:?}"
    );

    // Per-cell re-timing work is attributed under the sweep.
    assert!(
        spans.iter().any(|s| s.name == "retime.cell"),
        "retime.cell spans from the worker pool: {spans:?}"
    );
}

#[test]
fn bodies_are_byte_identical_with_and_without_tracing() {
    // The HTTP path always traces; `handle_target` never installs a
    // scope. The bodies must not know the difference.
    let traced = Arc::new(ExperimentService::new(small_config(), None));
    let untraced = ExperimentService::new(small_config(), None);
    let server = RunningServer::start(Arc::clone(&traced));
    for target in [
        "/v1/figure3?app=lu",
        "/v1/figure4?app=lu",
        "/v1/summary",
        "/v1/experiments?app=lu&model=ds&window=64",
    ] {
        let over_http = http_get(server.addr, target, &[]);
        let direct = handle_target(&untraced, target);
        assert_eq!((over_http.status, direct.status), (200, 200), "{target}");
        assert_eq!(
            over_http.body, direct.body,
            "{target}: traced and untraced bodies must be identical bytes"
        );
    }
}

#[test]
fn concurrent_requests_get_distinct_ids_and_followers_record_the_wait() {
    let service = Arc::new(ExperimentService::new(small_config(), None));
    let server = RunningServer::start(Arc::clone(&service));

    const TARGET: &str = "/v1/figure3?app=mp3d";
    let clients = 4;
    let barrier = Barrier::new(clients);
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    http_get(server.addr, TARGET, &[])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut ids: Vec<String> = replies
        .iter()
        .map(|r| {
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(r.body, replies[0].body, "one shared body");
            r.header("X-Request-Id").expect("id on every reply").into()
        })
        .collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), clients, "every request keeps its own id");

    // Exactly one request led the generation; the rest either waited
    // on the in-flight computation or hit the memo, and their traces
    // say so instead of showing duplicated work.
    let mut leaders = 0;
    for id in &ids {
        let trace = http_get(server.addr, &format!("/v1/debug/trace/{id}"), &[]);
        assert_eq!(trace.status, 200, "{}", trace.body);
        let spans = parse_spans(&trace.body);
        let generated = spans.iter().any(|s| s.name == "generate");
        if generated {
            leaders += 1;
        } else {
            assert!(
                spans.iter().any(|s| matches!(
                    s.name.as_str(),
                    "flight.wait" | "flight.memo" | "run.wait" | "run.memo"
                )),
                "a follower's trace records how it was satisfied: {spans:?}"
            );
        }
    }
    assert_eq!(leaders, 1, "exactly one trace carries the generation");
}

#[test]
fn error_responses_carry_request_ids() {
    let service = Arc::new(ExperimentService::new(small_config(), None));
    let server = RunningServer::start(Arc::clone(&service));

    // Routed errors (404, 400) go through the full tracing path.
    for target in ["/nope", "/v1/experiments?app=lu&frobnicate=1"] {
        let reply = http_get(server.addr, target, &[]);
        assert!(reply.status == 400 || reply.status == 404, "{target}");
        let id = reply.header("X-Request-Id").expect("id on errors");
        assert!(id.starts_with("req-"), "{id}");
    }

    // A malformed client id is ignored, not echoed (no header
    // injection, no junk joining other people's logs).
    let reply = http_get(server.addr, "/healthz", &[("X-Request-Id", "bad id!")]);
    assert_eq!(reply.status, 200);
    let id = reply.header("X-Request-Id").unwrap();
    assert!(id.starts_with("req-"), "server replaced the junk id: {id}");

    // Even unparseable requests are answered with an id.
    let mut conn = TcpStream::connect(server.addr).unwrap();
    conn.write_all(b"\x01\x02garbage\r\n\r\n").unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
    assert!(text.contains("X-Request-Id: req-"), "{text}");
}

#[test]
fn debug_trace_of_unknown_id_is_404() {
    let service = Arc::new(ExperimentService::new(small_config(), None));
    let server = RunningServer::start(Arc::clone(&service));
    let reply = http_get(server.addr, "/v1/debug/trace/never-seen", &[]);
    assert_eq!(reply.status, 404);
    assert!(reply.body.contains("no retained trace"), "{}", reply.body);
}
