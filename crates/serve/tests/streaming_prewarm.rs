//! Integration tests for the two new serve behaviours riding on the
//! DAG scheduler:
//!
//! * **incremental streaming** — `stream=1` on the figure routes sends
//!   the body with chunked framing, one fragment per finished column,
//!   and the reassembled bytes are identical to the buffered body;
//! * **speculative pre-warm** — after a figure query, the idle service
//!   pre-computes the remaining apps; a later client asking for one of
//!   them gets a memoized body (a recorded pre-warm hit) that is
//!   byte-identical to what a cold service would have produced.
//!
//! Everything runs at the small tier so cold sweeps are fast.

use lookahead_harness::SizeTier;
use lookahead_multiproc::SimConfig;
use lookahead_serve::http::{decode_chunked, write_response};
use lookahead_serve::{handle_target, ExperimentService, ServiceConfig};
use std::sync::Arc;

fn small_config() -> ServiceConfig {
    ServiceConfig {
        default_tier: SizeTier::Small,
        sim: SimConfig {
            num_procs: 4,
            ..SimConfig::default()
        },
        retime_workers: 2,
        ..ServiceConfig::default()
    }
}

fn small_service() -> Arc<ExperimentService> {
    Arc::new(ExperimentService::new(small_config(), None))
}

/// Reads one counter out of the /metrics.json JSON (flat "path":value).
fn metric(body: &str, path: &str) -> u64 {
    let needle = format!("\"{path}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{path} not in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Splits a chunked transfer encoding body into its chunk payloads
/// (strict framing: size line, payload, CRLF, terminated by a zero
/// chunk). Panics on malformed framing so tests fail loudly.
fn split_chunks(body: &[u8]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    loop {
        let line_end = body[at..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line")
            + at;
        let size = usize::from_str_radix(
            std::str::from_utf8(&body[at..line_end]).expect("ascii size"),
            16,
        )
        .expect("hex chunk size");
        at = line_end + 2;
        if size == 0 {
            assert_eq!(&body[at..], b"\r\n", "terminator must end the stream");
            return chunks;
        }
        chunks.push(body[at..at + size].to_vec());
        at += size;
        assert_eq!(&body[at..at + 2], b"\r\n", "chunk payload ends with CRLF");
        at += 2;
    }
}

#[test]
fn streamed_figure_body_is_byte_identical_to_buffered() {
    let service = small_service();
    let buffered = handle_target(&service, "/v1/figure3?app=lu");
    assert_eq!(buffered.status, 200, "{}", buffered.body);

    let streamed = handle_target(&service, "/v1/figure3?app=lu&stream=1");
    assert_eq!(streamed.status, 200);
    assert_eq!(
        streamed.full_body(),
        buffered.body,
        "drained stream must equal the buffered body byte-for-byte"
    );

    // figure4 streams too.
    let b4 = handle_target(&service, "/v1/figure4?app=lu");
    let s4 = handle_target(&service, "/v1/figure4?app=lu&stream=1");
    assert_eq!((b4.status, s4.status), (200, 200));
    assert_eq!(s4.full_body(), b4.body);
}

#[test]
fn streamed_response_uses_chunked_framing_with_incremental_chunks() {
    let service = small_service();
    let buffered = handle_target(&service, "/v1/figure3?app=mp3d");
    assert_eq!(buffered.status, 200, "{}", buffered.body);

    let streamed = handle_target(&service, "/v1/figure3?app=mp3d&stream=1");
    let mut wire = Vec::new();
    write_response(&mut wire, &streamed).unwrap();

    let head_end = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator")
        + 4;
    let head = std::str::from_utf8(&wire[..head_end]).unwrap();
    assert!(
        head.contains("Transfer-Encoding: chunked"),
        "streamed responses must use chunked framing: {head}"
    );
    assert!(
        !head.contains("Content-Length"),
        "chunked framing must not advertise a length: {head}"
    );

    let body = &wire[head_end..];
    assert_eq!(
        decode_chunked(body).unwrap(),
        buffered.body.as_bytes(),
        "reassembled chunks must equal the buffered body"
    );

    // One chunk per column plus prefix and suffix: the body arrives
    // incrementally, not as one monolithic write.
    let chunks = split_chunks(body);
    assert!(
        chunks.len() >= 4,
        "expected many incremental chunks, got {}",
        chunks.len()
    );
}

#[test]
fn stream_errors_stay_buffered() {
    let service = small_service();
    for target in [
        "/v1/figure3?app=doom&stream=1", // unknown app: 404 before streaming
        "/v1/figure3?app=lu&stream=2",   // bad stream value
    ] {
        let r = handle_target(&service, target);
        assert!(r.status >= 400, "{target}: {}", r.status);
        assert!(r.body.contains("error"), "{target}: {}", r.body);
    }
    assert_eq!(service.run_stats().generations, 0);
}

#[test]
fn prewarm_precomputes_likely_next_figures_and_records_hits() {
    let service = Arc::new(ExperimentService::new(
        ServiceConfig {
            prewarm: true,
            ..small_config()
        },
        None,
    ));

    // A figure query predicts the same sweep over the remaining apps.
    let first = handle_target(&service, "/v1/figure3?app=mp3d");
    assert_eq!(first.status, 200, "{}", first.body);

    // Drain the queue the way the server's pre-warm thread would.
    let mut ticks = 0;
    while service.prewarm_tick() {
        ticks += 1;
        assert!(ticks < 64, "pre-warm queue must drain");
    }
    assert!(ticks >= 1, "the first query must enqueue predictions");

    // A later client asking for a predicted figure is a memoized hit...
    let warmed = handle_target(&service, "/v1/figure3?app=lu");
    assert_eq!(warmed.status, 200, "{}", warmed.body);

    // ...whose bytes match a service that never pre-warmed.
    let cold = handle_target(&small_service(), "/v1/figure3?app=lu");
    assert_eq!(
        warmed.body, cold.body,
        "pre-warmed bodies must be byte-identical to cold ones"
    );

    let m = handle_target(&service, "/metrics.json");
    assert_eq!(m.status, 200);
    assert!(metric(&m.body, "serve.prewarm.computed") >= 1, "{}", m.body);
    assert!(
        metric(&m.body, "serve.prewarm.hits") >= 1,
        "the LU figure must be claimed from the pre-warm set: {}",
        m.body
    );
}

#[test]
fn prewarm_is_off_by_default_and_skips_known_bodies() {
    // Off by default: no predictions, no queue.
    let service = small_service();
    let r = handle_target(&service, "/v1/figure3?app=lu");
    assert_eq!(r.status, 200);
    assert!(!service.prewarm_enabled());
    assert!(!service.prewarm_tick(), "nothing may be queued");

    // On, but the predicted body was already computed by a client:
    // the tick skips instead of re-leading the flight.
    let service = Arc::new(ExperimentService::new(
        ServiceConfig {
            prewarm: true,
            ..small_config()
        },
        None,
    ));
    let a = handle_target(&service, "/v1/figure3?app=mp3d");
    let b = handle_target(&service, "/v1/figure3?app=lu");
    assert_eq!((a.status, b.status), (200, 200));
    let generations_before = service.run_stats().generations;
    while service.prewarm_tick() {}
    let m = handle_target(&service, "/metrics.json");
    assert!(metric(&m.body, "serve.prewarm.skipped") >= 1, "{}", m.body);
    // Pre-warming the remaining apps may generate their runs, but the
    // two already-served figures must not be recomputed.
    assert!(service.run_stats().generations >= generations_before);
}
