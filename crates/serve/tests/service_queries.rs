//! End-to-end tests for the experiment service, pinning the contracts
//! the subsystem was built for:
//!
//! * bodies served over HTTP are **byte-identical** to bodies from the
//!   in-process [`handle_target`] path (which is also what the
//!   `lookahead query` CLI prints);
//! * cold and warm queries produce identical bytes (determinism does
//!   not depend on cache state);
//! * N concurrent clients asking for the same cold key trigger exactly
//!   one simulation, observable in `/metrics`.
//!
//! Everything runs at the small tier so a cold query is fast.

use lookahead_harness::SizeTier;
use lookahead_multiproc::SimConfig;
use lookahead_serve::{handle_target, ExperimentService, Server, ServerConfig, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};

fn small_service() -> Arc<ExperimentService> {
    Arc::new(ExperimentService::new(
        ServiceConfig {
            default_tier: SizeTier::Small,
            sim: SimConfig {
                num_procs: 4,
                ..SimConfig::default()
            },
            retime_workers: 2,
            ..ServiceConfig::default()
        },
        None,
    ))
}

struct RunningServer {
    addr: SocketAddr,
    handle: lookahead_serve::ShutdownHandle,
    join: Option<std::thread::JoinHandle<lookahead_serve::ServerStats>>,
}

impl RunningServer {
    fn start(service: Arc<ExperimentService>) -> RunningServer {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            threads: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run(service));
        RunningServer {
            addr,
            handle,
            join: Some(join),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Reads one counter out of the /metrics.json JSON (flat "path":value).
fn metric(body: &str, path: &str) -> u64 {
    let needle = format!("\"{path}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{path} not in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

const QUERY: &str = "/v1/experiments?app=lu&model=ds&window=64&consistency=rc";

#[test]
fn http_body_matches_in_process_body_byte_for_byte() {
    let service = small_service();
    let direct = handle_target(&service, QUERY);
    assert_eq!(direct.status, 200, "{}", direct.body);

    let server = RunningServer::start(Arc::clone(&service));
    let (status, body) = http_get(server.addr, QUERY);
    assert_eq!(status, 200);
    assert_eq!(
        body, direct.body,
        "HTTP and in-process bodies must be identical bytes"
    );
}

#[test]
fn cold_and_warm_queries_are_byte_identical() {
    let service = small_service();
    let server = RunningServer::start(Arc::clone(&service));
    let (s1, cold) = http_get(server.addr, QUERY);
    let (s2, warm) = http_get(server.addr, QUERY);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(cold, warm);

    // The warm query was a body-memo hit: still exactly one
    // generation, one body computation.
    let stats = service.run_stats();
    assert_eq!(stats.generations, 1, "{stats:?}");
}

#[test]
fn concurrent_identical_cold_queries_run_one_simulation() {
    let service = small_service();
    let server = RunningServer::start(Arc::clone(&service));

    let clients = 8;
    let barrier = Barrier::new(clients);
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    let (status, body) = http_get(server.addr, QUERY);
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(
            b, &bodies[0],
            "all concurrent clients must see the same bytes"
        );
    }

    let stats = service.run_stats();
    assert_eq!(
        stats.generations, 1,
        "8 concurrent cold clients must trigger exactly one simulation: {stats:?}"
    );

    // The coalescing is observable via /metrics.json.
    let (status, metrics) = http_get(server.addr, "/metrics.json");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "serve.runs.generations"), 1);
    let led = metric(&metrics, "serve.flights.led");
    let coalesced = metric(&metrics, "serve.flights.coalesced");
    let memoized = metric(&metrics, "serve.flights.memoized");
    assert_eq!(led, 1, "one leader for the body flight");
    assert_eq!(
        led + coalesced + memoized,
        clients as u64,
        "every client accounted for: {metrics}"
    );
}

#[test]
fn distinct_queries_generate_distinct_runs_but_share_the_app() {
    let service = small_service();
    // Two different windows over the same app: two bodies, one run.
    let a = handle_target(&service, "/v1/experiments?app=lu&window=16");
    let b = handle_target(&service, "/v1/experiments?app=lu&window=64");
    assert_eq!((a.status, b.status), (200, 200));
    assert_ne!(a.body, b.body);
    assert_eq!(service.run_stats().generations, 1, "one trace serves both");
}

#[test]
fn default_parameters_are_explicit_in_the_body() {
    let service = small_service();
    let full = handle_target(
        &service,
        "/v1/experiments?app=lu&model=ds&consistency=rc&window=64&width=1&tier=small",
    );
    let defaulted = handle_target(&service, "/v1/experiments?app=lu");
    assert_eq!(
        full.body, defaulted.body,
        "defaults must equal their explicit spelling"
    );
}

#[test]
fn query_validation_fails_fast() {
    let service = small_service();
    for (target, status) in [
        ("/v1/experiments", 400),                        // missing app
        ("/v1/experiments?app=doom", 404),               // unknown app
        ("/v1/experiments?app=lu&model=vliw", 400),      // unknown model
        ("/v1/experiments?app=lu&consistency=tso", 400), // unknown consistency
        ("/v1/experiments?app=lu&window=0", 400),        // window out of range
        ("/v1/experiments?app=lu&window=huge", 400),     // window not a number
        ("/v1/experiments?app=lu&width=0", 400),         // width out of range
        ("/v1/experiments?app=lu&frobnicate=1", 400),    // unknown parameter
        ("/v1/experiments?app=lu&tier=jumbo", 400),      // unknown tier
        ("/v1/figure3", 400),                            // missing app
        ("/v1/figure3?app=lu&window=64", 400),           // figure3 takes no window
        ("/v1/summary?app=lu", 400),                     // summary takes no app
        ("/v2/experiments?app=lu", 404),                 // unknown route
    ] {
        let r = handle_target(&service, target);
        assert_eq!(r.status, status, "{target}: {}", r.body);
        assert!(r.body.contains("error"), "{target}: {}", r.body);
    }
    // Validation failures must never reach the simulator.
    assert_eq!(service.run_stats().generations, 0);
}

#[test]
fn apps_listing_names_every_application_and_knob() {
    let service = small_service();
    let r = handle_target(&service, "/v1/apps");
    assert_eq!(r.status, 200);
    for expected in [
        "MP3D", "LU", "PTHOR", "LOCUS", "OCEAN", "small", "default", "paper", "large", "base",
        "ssbr", "ss", "ds", "SC", "PC", "WO", "RC",
    ] {
        assert!(
            r.body.contains(expected),
            "{expected} missing from {}",
            r.body
        );
    }
}

#[test]
fn healthz_is_static_and_metrics_counts_requests() {
    let service = small_service();
    let h = handle_target(&service, "/healthz");
    assert_eq!((h.status, h.body.as_str()), (200, "{\"status\":\"ok\"}"));
    let m = handle_target(&service, "/metrics.json");
    assert_eq!(m.status, 200);
    // /healthz + /metrics.json itself.
    assert_eq!(metric(&m.body, "serve.http.requests"), 2);
    assert_eq!(metric(&m.body, "serve.http.status.200"), 1);
}

#[test]
fn figure_routes_report_full_sweeps() {
    let service = small_service();
    let f3 = handle_target(&service, "/v1/figure3?app=lu");
    assert_eq!(f3.status, 200, "{}", f3.body);
    for label in ["BASE", "SSBR", "SS", "DS.16", "DS.256"] {
        assert!(f3.body.contains(label), "{label} missing from figure3");
    }
    let f4 = handle_target(&service, "/v1/figure4?app=lu");
    assert_eq!(f4.status, 200, "{}", f4.body);
    assert!(f4.body.contains("bp+nd"));
    // Both figures re-time the same single generated run.
    assert_eq!(service.run_stats().generations, 1);
}

#[test]
fn summary_covers_every_app_and_window() {
    let service = small_service();
    let r = handle_target(&service, "/v1/summary");
    assert_eq!(r.status, 200, "{}", r.body);
    for app in ["MP3D", "LU", "PTHOR", "LOCUS", "OCEAN"] {
        assert!(r.body.contains(app), "{app} missing from summary");
    }
    assert!(r.body.contains("\"windows\":[16,32,64,128,256]"));
    assert!(r.body.contains("\"average\":["));
    assert_eq!(service.run_stats().generations, 5, "one generation per app");

    // Asking again is free: body memo, no new generations.
    let again = handle_target(&service, "/v1/summary");
    assert_eq!(again.body, r.body);
    assert_eq!(service.run_stats().generations, 5);
}
