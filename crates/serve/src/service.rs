//! The experiment service: queries in, deterministic JSON report
//! bodies out.
//!
//! This module is deliberately transport-free — it maps a parsed
//! [`Request`] to a [`Response`] — so the HTTP server, the `lookahead
//! query` CLI path and the tests all call the exact same code and get
//! **byte-identical bodies** by construction (the golden tests pin
//! this).
//!
//! Request flow for an experiment query:
//!
//! 1. the query is validated fail-fast (unknown parameters are a 400,
//!    matching the workspace's env-knob philosophy);
//! 2. the canonical body key enters a [`SingleFlight`]: concurrent
//!    identical queries coalesce onto one computation, and completed
//!    bodies are memoized;
//! 3. the leader resolves the application run through
//!    [`SharedRuns`] — in-memory memo over single-flight over the PR-2
//!    content-addressed on-disk trace cache — so each distinct trace
//!    generation runs **exactly once per process** no matter how many
//!    clients ask;
//! 4. re-timing runs on the harness worker pool
//!    ([`run_ordered`]), deterministic and submission-ordered, so the
//!    body is byte-identical under any concurrency.
//!
//! Everything the paper's philosophy says about overlap applies here:
//! distinct cold queries overlap their simulations on separate
//! connection workers; identical ones never duplicate work.

use crate::http::{Request, Response};
use lookahead_core::base::Base;
use lookahead_core::ds::{Ds, DsConfig};
use lookahead_core::inorder::InOrder;
use lookahead_core::model::ExecutionResult;
use lookahead_core::ConsistencyModel;
use lookahead_harness::dag::{self, DagStats, Scheduler, TaskDag};
use lookahead_harness::experiments::{
    columns_from_results, figure3_cells, figure4_cells, hidden_row, retime_gang_observed,
    retime_matrix, run_cell_specs_with_stats, summary_cells, CellSpec, RetimeMode, PAPER_WINDOWS,
};
use lookahead_harness::parallel::run_ordered;
use lookahead_harness::pipeline::AppRun;
use lookahead_harness::singleflight::{FlightOutcome, SharedRuns, SingleFlight};
use lookahead_harness::tier::SizeTier;
use lookahead_harness::TraceCache;
use lookahead_multiproc::SimConfig;
use lookahead_obs::json::JsonObject;
use lookahead_obs::metrics::{MetricsRegistry, ShardedMetrics};
use lookahead_obs::span::{self, TraceContext};
use lookahead_obs::{log, prom};
use lookahead_trace::Breakdown;
use lookahead_workloads::App;
use std::collections::{HashSet, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric shards for hot-path counters (a small power of two: enough
/// that a handful of workers rarely collide, cheap to merge).
const METRIC_SHARDS: usize = 16;

/// Finished request traces kept for `/v1/debug/trace/<id>`.
const TRACE_RING_CAPACITY: usize = 64;

/// Service-level configuration (transport knobs live in
/// [`ServerConfig`](crate::server::ServerConfig)).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The tier used when a query does not say `tier=`.
    pub default_tier: SizeTier,
    /// The simulation configuration queries run under.
    pub sim: SimConfig,
    /// Worker threads for the re-timing pool of sweep queries.
    pub retime_workers: usize,
    /// Append every finished request's spans (flat JSONL, one span per
    /// line) to this file; `None` disables the sink. The in-memory
    /// `/v1/debug/trace/<id>` ring works either way.
    pub span_log: Option<PathBuf>,
    /// How sweep bodies schedule their re-timing cells: `Dag` (the
    /// default) runs them in critical-path rank order, `Flat` keeps
    /// the submission-ordered pool. Bodies are byte-identical either
    /// way.
    pub scheduler: Scheduler,
    /// Speculatively pre-compute likely-next report bodies (remaining
    /// apps of a figure sweep, adjacent windows of an experiment
    /// query) while the server is idle. Off by default: pre-warm runs
    /// extra generations in the background, which changes the
    /// process-wide run accounting that cold-start smoke checks pin.
    pub prewarm: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            default_tier: SizeTier::Default,
            sim: SimConfig::default(),
            retime_workers: 1,
            span_log: None,
            scheduler: Scheduler::Dag,
            prewarm: false,
        }
    }
}

/// A query failure, mapped to a status and a JSON error body. Cloned
/// to every coalesced waiter of a failed flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Unknown route or application → 404.
    NotFound(String),
    /// Malformed or unknown query parameter → 400.
    BadQuery(String),
    /// The simulation stack failed → 500.
    Internal(String),
}

impl ApiError {
    fn status(&self) -> u16 {
        match self {
            ApiError::NotFound(_) => 404,
            ApiError::BadQuery(_) => 400,
            ApiError::Internal(_) => 500,
        }
    }

    fn message(&self) -> &str {
        match self {
            ApiError::NotFound(m) | ApiError::BadQuery(m) | ApiError::Internal(m) => m,
        }
    }

    /// The error as a response (deterministic JSON body).
    pub fn into_response(self) -> Response {
        Response::json(
            self.status(),
            JsonObject::render(|o| {
                o.str("error", self.message());
            }),
        )
    }
}

/// The processor models a query may name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelKind {
    Base,
    Ssbr,
    Ss,
    Ds,
}

impl ModelKind {
    fn from_name(name: &str) -> Option<ModelKind> {
        match name.to_ascii_lowercase().as_str() {
            "base" => Some(ModelKind::Base),
            "ssbr" => Some(ModelKind::Ssbr),
            "ss" => Some(ModelKind::Ss),
            "ds" => Some(ModelKind::Ds),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ModelKind::Base => "base",
            ModelKind::Ssbr => "ssbr",
            ModelKind::Ss => "ss",
            ModelKind::Ds => "ds",
        }
    }
}

/// A validated `/v1/experiments` query.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ExperimentQuery {
    app: App,
    tier: SizeTier,
    model: ModelKind,
    consistency: ConsistencyModel,
    window: usize,
    width: usize,
}

/// The experiment service: shared run resolution, single-flight body
/// deduplication, and metrics.
pub struct ExperimentService {
    config: ServiceConfig,
    runs: SharedRuns,
    bodies: SingleFlight<Result<Arc<String>, ApiError>>,
    /// Sharded so request workers bumping counters never serialize on
    /// one lock (and never contend with a `/metrics` scrape, which
    /// merges shard snapshots one at a time).
    metrics: ShardedMetrics,
    flights_led: AtomicU64,
    flights_coalesced: AtomicU64,
    flights_memoized: AtomicU64,
    /// Most recent finished request traces, newest at the back.
    traces: Mutex<VecDeque<(String, String)>>,
    span_sink: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    /// Client requests currently being handled (or written); the
    /// pre-warm thread only runs speculative work when this is zero.
    in_flight: AtomicU64,
    /// Predicted-next targets waiting for an idle tick, oldest first.
    prewarm_queue: Mutex<VecDeque<String>>,
    /// Every target ever enqueued (so a prediction is tried once per
    /// process, not re-queued on every request that implies it).
    prewarm_seen: Mutex<HashSet<String>>,
    /// Body keys the pre-warm thread computed that no client has asked
    /// for yet — the measure of speculative work not (yet) paid back.
    prewarm_unclaimed: Mutex<HashSet<String>>,
    /// Connections currently open on the reactor transport (gauge;
    /// zero under the legacy transport).
    reactor_open_connections: AtomicU64,
}

/// RAII marker for a client request in flight; the pre-warm thread
/// stays off the CPU while any exist.
pub struct InFlightGuard<'a>(&'a ExperimentService);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ExperimentService {
    /// A service over an optional on-disk trace cache.
    pub fn new(config: ServiceConfig, cache: Option<TraceCache>) -> ExperimentService {
        let span_sink =
            config.span_log.as_ref().and_then(|path| {
                match std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    Ok(f) => Some(Mutex::new(std::io::BufWriter::new(f))),
                    Err(e) => {
                        log::warn(
                            "serve.spans",
                            "cannot open span log; spans will not be persisted",
                            &[
                                ("path", &path.display().to_string()),
                                ("error", &e.to_string()),
                            ],
                        );
                        None
                    }
                }
            });
        ExperimentService {
            config,
            runs: SharedRuns::new(cache),
            bodies: SingleFlight::new(),
            metrics: ShardedMetrics::new(METRIC_SHARDS),
            flights_led: AtomicU64::new(0),
            flights_coalesced: AtomicU64::new(0),
            flights_memoized: AtomicU64::new(0),
            traces: Mutex::new(VecDeque::new()),
            span_sink,
            in_flight: AtomicU64::new(0),
            prewarm_queue: Mutex::new(VecDeque::new()),
            prewarm_seen: Mutex::new(HashSet::new()),
            prewarm_unclaimed: Mutex::new(HashSet::new()),
            reactor_open_connections: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The run resolver's accounting (generations, hits, coalescing).
    pub fn run_stats(&self) -> lookahead_harness::singleflight::SharedRunStats {
        self.runs.stats()
    }

    /// Whether an on-disk trace cache backs the run resolver.
    pub fn disk_cache_enabled(&self) -> bool {
        self.runs.disk_cache_enabled()
    }

    /// Marks a client request as in flight until the guard drops; the
    /// transport holds one across the response write so streamed
    /// bodies also keep the pre-warm thread parked.
    pub fn in_flight_guard(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        InFlightGuard(self)
    }

    /// True when no client request is being handled or written —
    /// the only state in which speculative pre-warm work is admitted.
    pub fn idle(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }

    /// Whether speculative pre-warm is enabled.
    pub fn prewarm_enabled(&self) -> bool {
        self.config.prewarm
    }

    /// Routes one parsed request to a response. Bodies are
    /// deterministic for every route except `/metrics`,
    /// `/metrics.json` and `/v1/debug/trace/<id>`.
    pub fn handle(&self, request: &Request) -> Response {
        let _guard = self.in_flight_guard();
        let response = self.handle_inner(request);
        if self.config.prewarm && response.status == 200 {
            self.predict(request);
        }
        response
    }

    fn handle_inner(&self, request: &Request) -> Response {
        self.count("serve.http.requests", 1);
        let result = match request.path.as_str() {
            "/healthz" => Ok(Response::json(
                200,
                JsonObject::render(|o| {
                    o.str("status", "ok");
                }),
            )),
            "/metrics" => Ok(Response::with_type(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                prom::render(&self.metrics_snapshot()),
            )),
            "/metrics.json" => Ok(Response::json(200, self.metrics_body())),
            "/v1/apps" => Ok(Response::json(200, self.apps_body())),
            "/v1/experiments" => {
                self.report(request, Self::experiments_key, Self::experiments_body)
            }
            "/v1/figure3" => self.figure_route::<3>(request),
            "/v1/figure4" => self.figure_route::<4>(request),
            "/v1/summary" => self.report(request, Self::summary_key, Self::summary_body),
            other => match other.strip_prefix("/v1/debug/trace/") {
                Some(id) => self.debug_trace(id),
                None => Err(ApiError::NotFound(format!("no route {other:?}"))),
            },
        };
        let response = match result {
            Ok(r) => r,
            Err(e) => e.into_response(),
        };
        self.count(&format!("serve.http.status.{}", response.status), 1);
        if response.status >= 400 {
            // Structured error lines carry the request id automatically
            // when the transport installed a trace scope.
            let level = if response.status >= 500 {
                log::Level::Error
            } else {
                log::Level::Warn
            };
            log::log(
                level,
                "serve.http",
                "request failed",
                &[
                    ("target", request.path.as_str()),
                    ("status", &response.status.to_string()),
                ],
            );
        }
        response
    }

    /// Generic single-flight report path: canonicalize the query to a
    /// body key, then either lead the computation or share the result.
    fn report(
        &self,
        request: &Request,
        key: impl Fn(&Self, &Request) -> Result<String, ApiError>,
        body: impl Fn(&Self, &Request) -> Result<String, ApiError>,
    ) -> Result<Response, ApiError> {
        let key = key(self, request)?;
        let asked = span::now_current();
        let (result, outcome) = self.bodies.run(&key, || body(self, request).map(Arc::new));
        // A leading request's time shows up as its handler-stage spans;
        // followers record how they were satisfied instead.
        match outcome {
            FlightOutcome::Led => {
                self.flights_led.fetch_add(1, Ordering::Relaxed);
            }
            FlightOutcome::Coalesced => {
                self.flights_coalesced.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = asked {
                    span::record_since("flight.wait", start);
                }
            }
            FlightOutcome::Memoized => {
                self.flights_memoized.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = asked {
                    span::record_since("flight.memo", start);
                }
            }
        };
        // A shared result may be speculative pre-warm work paying off:
        // claim it so the hit/wasted accounting stays exact.
        if self.config.prewarm && !matches!(outcome, FlightOutcome::Led) {
            let claimed = self
                .prewarm_unclaimed
                .lock()
                .expect("prewarm unclaimed poisoned")
                .remove(&key);
            if claimed {
                self.count("serve.prewarm.hits", 1);
            }
        }
        result.map(|b| Response::json(200, (*b).clone()))
    }

    /// `/v1/figure3` and `/v1/figure4`: buffered through the body memo
    /// by default, or streamed cell-by-cell when the query says
    /// `stream=1` (same bytes, chunked framing, no memo).
    fn figure_route<const N: u8>(&self, request: &Request) -> Result<Response, ApiError> {
        match request.param("stream") {
            None | Some("0") => match N {
                3 => self.report(request, Self::figure_key::<3>, Self::figure3_body),
                _ => self.report(request, Self::figure_key::<4>, Self::figure4_body),
            },
            Some("1") => self.figure_stream::<N>(request),
            Some(v) => Err(ApiError::BadQuery(format!(
                "stream must be \"0\" or \"1\", got {v:?}"
            ))),
        }
    }

    fn count(&self, path: &str, by: u64) {
        self.metrics.with(|r| r.inc(path, by));
    }

    /// Records one served HTTP response (called by the transport).
    pub fn record_http(&self, micros: u64) {
        self.metrics
            .with(|r| r.observe("serve.http.latency_micros", micros));
    }

    /// Records how long a connection waited in the accept queue before
    /// a worker picked it up (called by the transport).
    pub fn record_queue_wait(&self, micros: u64) {
        self.metrics
            .with(|r| r.observe("serve.http.queue_wait_micros", micros));
    }

    /// Records a backpressure rejection (called by the transport).
    pub fn record_rejected(&self) {
        self.count("serve.http.rejected_503", 1);
    }

    /// Raw in-flight accounting for the reactor transport, which
    /// cannot hold a borrow-scoped [`InFlightGuard`] across event-loop
    /// iterations: enter when a request is dispatched, exit when its
    /// response write completes (or the connection dies). Must be
    /// balanced, or the pre-warm thread starves forever.
    pub fn in_flight_enter(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// See [`ExperimentService::in_flight_enter`].
    pub fn in_flight_exit(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Reactor loop accounting, batched once per `epoll_wait` round:
    /// readiness events delivered, eventfd wakeups consumed, and
    /// `EAGAIN`-terminated reads/writes (the measure of how often the
    /// reactor drains sockets dry).
    pub fn record_reactor_tick(&self, events: u64, wakeups: u64, eagain: u64) {
        self.metrics.with(|r| {
            if events > 0 {
                r.inc("serve.reactor.events", events);
            }
            if wakeups > 0 {
                r.inc("serve.reactor.wakeups", wakeups);
            }
            if eagain > 0 {
                r.inc("serve.reactor.eagain", eagain);
            }
        });
    }

    /// Records a request served on an already-used keep-alive
    /// connection (the connect the client did not have to pay).
    pub fn record_keepalive_reuse(&self) {
        self.count("serve.reactor.keepalive_reuses", 1);
    }

    /// Publishes the reactor's open-connection count (gauge).
    pub fn set_open_connections(&self, n: u64) {
        self.reactor_open_connections.store(n, Ordering::Relaxed);
    }

    /// Files a finished request's trace: into the debug ring (served
    /// by `/v1/debug/trace/<id>`) and, when configured, the span JSONL
    /// sink. Called by the transport after the response is written.
    pub fn finish_request(&self, ctx: &TraceContext, target: &str, status: u16) {
        let rendered = span::render_trace_json(ctx, target, status);
        {
            let mut ring = self.traces.lock().expect("trace ring poisoned");
            ring.push_back((ctx.request_id().to_string(), rendered));
            while ring.len() > TRACE_RING_CAPACITY {
                ring.pop_front();
            }
        }
        if let Some(sink) = &self.span_sink {
            let lines = span::render_spans_jsonl(ctx);
            let mut w = sink.lock().expect("span sink poisoned");
            // Flush per request so the file is complete even if the
            // process is killed rather than drained.
            if w.write_all(lines.as_bytes())
                .and_then(|()| w.flush())
                .is_err()
            {
                log::warn("serve.spans", "failed to append to the span log", &[]);
            }
        }
    }

    /// `/v1/debug/trace/<id>`: the retained trace for a recent request.
    fn debug_trace(&self, id: &str) -> Result<Response, ApiError> {
        let ring = self.traces.lock().expect("trace ring poisoned");
        ring.iter()
            .rev()
            .find(|(rid, _)| rid == id)
            .map(|(_, body)| Response::json(200, body.clone()))
            .ok_or_else(|| {
                ApiError::NotFound(format!(
                    "no retained trace for request id {id:?} \
                     (the ring keeps the last {TRACE_RING_CAPACITY} requests)"
                ))
            })
    }

    // ---- query validation ----------------------------------------

    fn parse_app(&self, name: &str) -> Result<App, ApiError> {
        App::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let valid: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
                ApiError::NotFound(format!("unknown app {name:?}; valid apps: {valid:?}"))
            })
    }

    fn parse_tier(&self, request: &Request) -> Result<SizeTier, ApiError> {
        match request.param("tier") {
            None => Ok(self.config.default_tier),
            Some(t) => SizeTier::from_name(t).ok_or_else(|| {
                ApiError::BadQuery(format!(
                    "unknown tier {t:?}; valid tiers: [\"small\", \"default\", \"paper\", \"large\"]"
                ))
            }),
        }
    }

    fn reject_unknown_params(request: &Request, allowed: &[&str]) -> Result<(), ApiError> {
        for (k, _) in &request.query {
            if !allowed.contains(&k.as_str()) {
                return Err(ApiError::BadQuery(format!(
                    "unknown query parameter {k:?}; allowed: {allowed:?}"
                )));
            }
        }
        Ok(())
    }

    fn parse_experiment_query(&self, request: &Request) -> Result<ExperimentQuery, ApiError> {
        Self::reject_unknown_params(
            request,
            &["app", "tier", "model", "consistency", "window", "width"],
        )?;
        let app = self.parse_app(
            request
                .param("app")
                .ok_or_else(|| ApiError::BadQuery("missing required parameter \"app\"".into()))?,
        )?;
        let tier = self.parse_tier(request)?;
        let model = match request.param("model") {
            None => ModelKind::Ds,
            Some(m) => ModelKind::from_name(m).ok_or_else(|| {
                ApiError::BadQuery(format!(
                    "unknown model {m:?}; valid models: [\"base\", \"ssbr\", \"ss\", \"ds\"]"
                ))
            })?,
        };
        let consistency = match request.param("consistency") {
            None => ConsistencyModel::Rc,
            Some(c) => ConsistencyModel::ALL
                .into_iter()
                .find(|m| m.abbrev().eq_ignore_ascii_case(c))
                .ok_or_else(|| {
                    ApiError::BadQuery(format!(
                        "unknown consistency model {c:?}; valid: [\"SC\", \"PC\", \"WO\", \"RC\"]"
                    ))
                })?,
        };
        let window = match request.param("window") {
            None => 64,
            Some(w) => match w.parse::<usize>() {
                Ok(n) if (1..=4096).contains(&n) => n,
                _ => {
                    return Err(ApiError::BadQuery(format!(
                        "window must be an integer in 1..=4096, got {w:?}"
                    )))
                }
            },
        };
        let width = match request.param("width") {
            None => 1,
            Some(w) => match w.parse::<usize>() {
                Ok(n) if (1..=16).contains(&n) => n,
                _ => {
                    return Err(ApiError::BadQuery(format!(
                        "width must be an integer in 1..=16, got {w:?}"
                    )))
                }
            },
        };
        Ok(ExperimentQuery {
            app,
            tier,
            model,
            consistency,
            window,
            width,
        })
    }

    // ---- body keys (canonical: equal queries coalesce) -----------

    fn experiments_key(&self, request: &Request) -> Result<String, ApiError> {
        let q = self.parse_experiment_query(request)?;
        Ok(format!(
            "experiments;app={};tier={};model={};cons={};window={};width={}",
            q.app.name(),
            q.tier.name(),
            q.model.name(),
            q.consistency.abbrev(),
            q.window,
            q.width
        ))
    }

    fn figure_key<const N: u8>(&self, request: &Request) -> Result<String, ApiError> {
        Self::reject_unknown_params(request, &["app", "tier", "stream"])?;
        let app = self.parse_app(
            request
                .param("app")
                .ok_or_else(|| ApiError::BadQuery("missing required parameter \"app\"".into()))?,
        )?;
        let tier = self.parse_tier(request)?;
        Ok(format!("figure{N};app={};tier={}", app.name(), tier.name()))
    }

    fn summary_key(&self, request: &Request) -> Result<String, ApiError> {
        Self::reject_unknown_params(request, &["tier"])?;
        Ok(format!("summary;tier={}", self.parse_tier(request)?.name()))
    }

    // ---- run resolution ------------------------------------------

    fn resolve(&self, app: App, tier: SizeTier) -> Result<Arc<AppRun>, ApiError> {
        let workload = tier.workload(app);
        self.runs
            .get(workload.as_ref(), tier.name(), &self.config.sim)
            .map_err(ApiError::Internal)
    }

    // ---- bodies ---------------------------------------------------

    fn apps_body(&self) -> String {
        JsonObject::render(|o| {
            o.array("apps", |a| {
                for app in App::ALL {
                    a.str(app.name());
                }
            });
            o.array("tiers", |a| {
                for tier in SizeTier::ALL {
                    a.str(tier.name());
                }
            });
            o.str("default_tier", self.config.default_tier.name());
            o.array("models", |a| {
                a.str("base").str("ssbr").str("ss").str("ds");
            });
            o.array("consistency", |a| {
                for m in ConsistencyModel::ALL {
                    a.str(m.abbrev());
                }
            });
            o.array("paper_windows", |a| {
                for w in PAPER_WINDOWS {
                    a.u64(w as u64);
                }
            });
        })
    }

    /// The merged registry every metrics endpoint renders: the shards
    /// merged (deterministically — counters and buckets add), plus the
    /// run-resolver and single-flight accounting spliced in.
    fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut snapshot = self.metrics.merged();
        let runs = self.runs.stats();
        snapshot.inc("serve.runs.generations", runs.generations);
        snapshot.inc("serve.runs.disk_hits", runs.disk_hits);
        snapshot.inc("serve.runs.memo_hits", runs.memo_hits);
        snapshot.inc("serve.runs.coalesced", runs.coalesced);
        snapshot.inc(
            "serve.flights.led",
            self.flights_led.load(Ordering::Relaxed),
        );
        snapshot.inc(
            "serve.flights.coalesced",
            self.flights_coalesced.load(Ordering::Relaxed),
        );
        snapshot.inc(
            "serve.flights.memoized",
            self.flights_memoized.load(Ordering::Relaxed),
        );
        snapshot.gauge_set(
            "serve.prewarm.queue_depth",
            self.prewarm_queue
                .lock()
                .expect("prewarm queue poisoned")
                .len() as i64,
        );
        // Speculative bodies no client has asked for (yet): the
        // wasted-work side of the pre-warm ledger.
        snapshot.gauge_set(
            "serve.prewarm.unclaimed",
            self.prewarm_unclaimed
                .lock()
                .expect("prewarm unclaimed poisoned")
                .len() as i64,
        );
        snapshot.gauge_set(
            "serve.reactor.open_connections",
            self.reactor_open_connections.load(Ordering::Relaxed) as i64,
        );
        snapshot
    }

    /// `/metrics.json`: the merged registry as flat JSON (`/metrics`
    /// serves the same snapshot in Prometheus text exposition).
    fn metrics_body(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    fn experiments_body(&self, request: &Request) -> Result<String, ApiError> {
        let q = self.parse_experiment_query(request)?;
        let run = self.resolve(q.app, q.tier)?;

        let (base, result): (ExecutionResult, ExecutionResult) =
            span::record_current("retime", || {
                let base = run.retime(&Base);
                let result = match q.model {
                    ModelKind::Base => base.clone(),
                    ModelKind::Ssbr => run.retime(&InOrder::ssbr(q.consistency)),
                    ModelKind::Ss => run.retime(&InOrder::ss(q.consistency)),
                    ModelKind::Ds => run.retime(&Ds::new(DsConfig {
                        issue_width: q.width,
                        ..DsConfig::with_model(q.consistency).window(q.window)
                    })),
                };
                (base, result)
            });

        Ok(span::record_current("render", || {
            JsonObject::render(|o| {
                o.object("query", |qo| {
                    qo.str("app", q.app.name())
                        .str("tier", q.tier.name())
                        .str("model", q.model.name())
                        .str("consistency", q.consistency.abbrev())
                        .u64("window", q.window as u64)
                        .u64("width", q.width as u64);
                });
                o.object("trace", |t| {
                    t.u64("instructions", run.trace_len() as u64)
                        .u64("proc", run.proc as u64)
                        .u64("mp_cycles", run.mp_cycles);
                });
                o.raw("base", &breakdown_json(&base.breakdown));
                o.object("result", |r| {
                    write_breakdown_fields(r, &result.breakdown);
                    r.f64(
                        "normalized",
                        result.breakdown.normalized_to(&base.breakdown),
                    );
                    match result.breakdown.read_latency_hidden_vs(&base.breakdown) {
                        Some(h) => r.f64("read_latency_hidden", h),
                        None => r.null("read_latency_hidden"),
                    };
                });
            })
        }))
    }

    /// Records what one DAG-scheduled sweep observed (no-op for the
    /// flat scheduler, which reports no stats).
    fn record_dag_stats(&self, stats: Option<&DagStats>) {
        if let Some(s) = stats {
            self.count("serve.dag.sweeps", 1);
            self.count("serve.dag.cells", s.tasks as u64);
            self.metrics.with(|r| {
                r.observe("serve.dag.peak_ready", s.peak_ready as u64);
                r.observe("serve.dag.critical_path", s.critical_path);
            });
        }
    }

    fn figure_cells<const N: u8>() -> Vec<CellSpec> {
        match N {
            3 => figure3_cells(&PAPER_WINDOWS),
            _ => figure4_cells(&PAPER_WINDOWS),
        }
    }

    fn figure_body_for<const N: u8>(&self, request: &Request) -> Result<String, ApiError> {
        let app = self.parse_app(request.param("app").expect("validated by key"))?;
        let tier = self.parse_tier(request)?;
        let run = self.resolve(app, tier)?;
        let specs = Self::figure_cells::<N>();
        let (columns, stats) = span::record_current("retime", || {
            run_cell_specs_with_stats(
                &run,
                &specs,
                self.config.retime_workers,
                self.config.scheduler,
            )
        });
        self.record_dag_stats(stats.as_ref());
        let route = if N == 3 { "figure3" } else { "figure4" };
        Ok(span::record_current("render", || {
            figure_body(route, app, tier, &columns)
        }))
    }

    fn figure3_body(&self, request: &Request) -> Result<String, ApiError> {
        self.figure_body_for::<3>(request)
    }

    fn figure4_body(&self, request: &Request) -> Result<String, ApiError> {
        self.figure_body_for::<4>(request)
    }

    /// `stream=1` figure sweeps: the response body is produced
    /// incrementally — the JSON prefix as soon as the run is resolved,
    /// then each column the moment its re-timing cell (scheduled
    /// through the same flat/DAG policy as the buffered path) has
    /// finished and every earlier column is out. The concatenated
    /// fragments are byte-identical to the buffered body; the trade is
    /// that a streamed response bypasses the body memo (its cost is
    /// re-paid per request, while the run resolution still shares the
    /// process-wide memo).
    fn figure_stream<const N: u8>(&self, request: &Request) -> Result<Response, ApiError> {
        // Validate exactly as the buffered path would.
        let _ = self.figure_key::<N>(request)?;
        let app = self.parse_app(request.param("app").expect("validated by key"))?;
        let tier = self.parse_tier(request)?;
        // Resolve before committing to stream: a generation failure is
        // still an ordinary buffered 500.
        let run = self.resolve(app, tier)?;
        let specs = Self::figure_cells::<N>();
        let route = if N == 3 { "figure3" } else { "figure4" };
        self.count("serve.stream.responses", 1);
        self.count("serve.stream.cells", specs.len() as u64);
        let workers = self.config.retime_workers;
        let scheduler = self.config.scheduler;
        let prefix = figure_prefix(route, app, tier);
        Ok(Response::json_stream(move |sink| {
            sink.write_all(prefix.as_bytes())?;
            let (tx, rx) = std::sync::mpsc::channel::<(usize, ExecutionResult)>();
            std::thread::scope(|scope| -> std::io::Result<()> {
                let (run, specs) = (&run, &specs);
                scope.spawn(move || {
                    if RetimeMode::default_mode() == RetimeMode::Gang {
                        // One streamed traversal feeds every unique
                        // cell; each cell's column is sent the moment
                        // its engine finishes. Falls through to the
                        // per-cell path when the run cannot stream
                        // (results are deterministic, so a duplicate
                        // send after a mid-stream failure is benign).
                        let gang_tx = std::sync::Mutex::new(tx.clone());
                        let sent = retime_gang_observed(run, specs, &|i, r| {
                            // A vanished receiver just means the
                            // client hung up mid-stream.
                            let _ = gang_tx.lock().unwrap().send((i, r.clone()));
                        });
                        if sent.is_some() {
                            return;
                        }
                    }
                    let jobs: Vec<_> = specs
                        .iter()
                        .enumerate()
                        .map(|(i, spec)| {
                            let model = spec.model;
                            let tx = tx.clone();
                            move || {
                                // A vanished receiver just means the
                                // client hung up mid-stream.
                                let _ = tx.send((i, model.retime(run)));
                            }
                        })
                        .collect();
                    match scheduler {
                        Scheduler::Flat => {
                            run_ordered(jobs, workers);
                        }
                        Scheduler::Dag => {
                            let mut cell_dag = TaskDag::new();
                            for spec in specs.iter() {
                                cell_dag.add_task(spec.model.cost(), &[]);
                            }
                            dag::run_dag(&cell_dag, jobs, workers);
                        }
                    }
                });
                let mut slots: Vec<Option<ExecutionResult>> = vec![None; specs.len()];
                let mut done: Vec<ExecutionResult> = Vec::new();
                for (i, result) in rx {
                    slots[i] = Some(result);
                    // Emit the contiguous prefix of finished columns.
                    while done.len() < specs.len() && slots[done.len()].is_some() {
                        let emit = done.len();
                        done.push(slots[emit].take().expect("checked above"));
                        let column = columns_from_results(&specs[..=emit], &done)
                            .pop()
                            .expect("one column per result");
                        let mut fragment = String::new();
                        if emit > 0 {
                            fragment.push(',');
                        }
                        fragment.push_str(&column_json(&column));
                        sink.write_all(fragment.as_bytes())?;
                    }
                }
                sink.write_all(b"]}")
            })
        }))
    }

    // ---- speculative pre-warm ------------------------------------

    /// Enqueues the targets a just-served request makes likely next:
    /// the same figure for the remaining applications, or the adjacent
    /// windows of an experiment sweep. Predictions are computed on the
    /// request path (cheap string work); the bodies are computed by
    /// [`prewarm_tick`](Self::prewarm_tick) only while the server is
    /// idle.
    fn predict(&self, request: &Request) {
        let mut targets = Vec::new();
        match request.path.as_str() {
            "/v1/figure3" | "/v1/figure4" => {
                let (Some(app), Ok(tier)) = (request.param("app"), self.parse_tier(request)) else {
                    return;
                };
                for other in App::ALL {
                    if !other.name().eq_ignore_ascii_case(app) {
                        targets.push(format!(
                            "{}?app={}&tier={}",
                            request.path,
                            other.name(),
                            tier.name()
                        ));
                    }
                }
            }
            "/v1/experiments" => {
                let Ok(q) = self.parse_experiment_query(request) else {
                    return;
                };
                let Some(at) = PAPER_WINDOWS.iter().position(|&w| w == q.window) else {
                    return;
                };
                let neighbors = [at.checked_sub(1), Some(at + 1)];
                for w in neighbors
                    .into_iter()
                    .flatten()
                    .filter_map(|i| PAPER_WINDOWS.get(i))
                {
                    targets.push(format!(
                        "/v1/experiments?app={}&tier={}&model={}&consistency={}&window={}&width={}",
                        q.app.name(),
                        q.tier.name(),
                        q.model.name(),
                        q.consistency.abbrev(),
                        w,
                        q.width
                    ));
                }
            }
            _ => {}
        }
        if targets.is_empty() {
            return;
        }
        let mut seen = self.prewarm_seen.lock().expect("prewarm seen poisoned");
        let mut queue = self.prewarm_queue.lock().expect("prewarm queue poisoned");
        for target in targets {
            if seen.insert(target.clone()) {
                queue.push_back(target);
                self.count("serve.prewarm.enqueued", 1);
            }
        }
    }

    /// Pops one predicted target and computes its body through the
    /// same single-flight map client requests use, so a client asking
    /// mid-computation coalesces instead of duplicating. Returns
    /// `false` when the queue is empty. Call only from an idle
    /// context (the transport's pre-warm thread checks
    /// [`idle`](Self::idle) first).
    pub fn prewarm_tick(&self) -> bool {
        let target = self
            .prewarm_queue
            .lock()
            .expect("prewarm queue poisoned")
            .pop_front();
        let Some(target) = target else {
            return false;
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target.as_str(), ""),
        };
        let request = Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: crate::http::parse_query(query),
            request_id: None,
            keep_alive: false,
        };
        type KeyFn = fn(&ExperimentService, &Request) -> Result<String, ApiError>;
        type BodyFn = fn(&ExperimentService, &Request) -> Result<String, ApiError>;
        let fns: Option<(KeyFn, BodyFn)> = match path {
            "/v1/figure3" => Some((Self::figure_key::<3>, Self::figure3_body)),
            "/v1/figure4" => Some((Self::figure_key::<4>, Self::figure4_body)),
            "/v1/experiments" => Some((Self::experiments_key, Self::experiments_body)),
            _ => None,
        };
        let Some((key_fn, body_fn)) = fns else {
            self.count("serve.prewarm.skipped", 1);
            return true;
        };
        let Ok(key) = key_fn(self, &request) else {
            self.count("serve.prewarm.skipped", 1);
            return true;
        };
        if self.bodies.completed(&key) {
            self.count("serve.prewarm.skipped", 1);
            return true;
        }
        let (result, outcome) = self
            .bodies
            .run(&key, || body_fn(self, &request).map(Arc::new));
        match outcome {
            FlightOutcome::Led if result.is_ok() => {
                self.prewarm_unclaimed
                    .lock()
                    .expect("prewarm unclaimed poisoned")
                    .insert(key);
                self.count("serve.prewarm.computed", 1);
            }
            FlightOutcome::Led => self.count("serve.prewarm.failed", 1),
            // Someone computed or started it meanwhile; the
            // speculation was redundant, not wasted compute.
            _ => self.count("serve.prewarm.skipped", 1),
        }
        true
    }

    /// The §7 headline matrix: per-app hidden-read-latency fractions
    /// across the window sweep, plus the cross-application average.
    fn summary_body(&self, request: &Request) -> Result<String, ApiError> {
        let tier = self.parse_tier(request)?;
        let windows = PAPER_WINDOWS;

        // Resolve every app first (each at most one generation,
        // process-wide), then re-time the whole matrix under the
        // configured scheduler (one shared cell enumeration with the
        // driver's summary report).
        let mut runs = Vec::new();
        for app in App::ALL {
            runs.push((app, self.resolve(app, tier)?));
        }
        let specs = summary_cells(&windows);
        let refs: Vec<&AppRun> = runs.iter().map(|(_, r)| r.as_ref()).collect();
        let matrix = span::record_current("retime", || {
            retime_matrix(
                &refs,
                &specs,
                self.config.retime_workers,
                self.config.scheduler,
            )
        });

        let per_app: Vec<(App, Vec<f64>)> = runs
            .iter()
            .zip(&matrix)
            .map(|((app, _), row)| (*app, hidden_row(row)))
            .collect();

        Ok(span::record_current("render", || {
            JsonObject::render(|o| {
                o.object("query", |qo| {
                    qo.str("tier", tier.name());
                });
                o.array("windows", |a| {
                    for w in windows {
                        a.u64(w as u64);
                    }
                });
                o.array("apps", |a| {
                    for (app, hidden) in &per_app {
                        a.object(|row| {
                            row.str("app", app.name());
                            row.array("read_latency_hidden", |h| {
                                for &v in hidden {
                                    h.f64(v);
                                }
                            });
                        });
                    }
                });
                o.array("average", |a| {
                    for j in 0..windows.len() {
                        let mean = per_app.iter().map(|(_, h)| h[j]).sum::<f64>()
                            / per_app.len().max(1) as f64;
                        a.f64(mean);
                    }
                });
            })
        }))
    }
}

/// One breakdown as a JSON object string.
fn breakdown_json(b: &Breakdown) -> String {
    JsonObject::render(|o| write_breakdown_fields(o, b))
}

fn write_breakdown_fields(o: &mut JsonObject<'_>, b: &Breakdown) {
    o.u64("busy", b.busy)
        .u64("sync", b.sync)
        .u64("read", b.read)
        .u64("write", b.write)
        .u64("total", b.total());
}

/// The figure body's byte prefix: everything before the first column.
/// The streamed and buffered paths both assemble the body from this
/// prefix, [`column_json`] fragments joined by commas, and the `]}`
/// suffix — byte-identity between the two framings holds by
/// construction.
fn figure_prefix(route: &str, app: App, tier: SizeTier) -> String {
    let query = JsonObject::render(|o| {
        o.str("route", route)
            .str("app", app.name())
            .str("tier", tier.name());
    });
    format!("{{\"query\":{query},\"columns\":[")
}

/// One rendered column of a figure body.
fn column_json(col: &lookahead_harness::Figure3Column) -> String {
    JsonObject::render(|c| {
        c.str("label", &col.label).str("model", &col.model);
        c.raw("breakdown", &breakdown_json(&col.breakdown));
        c.f64("normalized", col.normalized);
    })
}

/// Shared rendering for the figure3/figure4 column sweeps.
fn figure_body(
    route: &str,
    app: App,
    tier: SizeTier,
    columns: &[lookahead_harness::Figure3Column],
) -> String {
    let mut out = figure_prefix(route, app, tier);
    for (i, col) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&column_json(col));
    }
    out.push_str("]}");
    out
}

/// Convenience for the CLI and tests: handles a `GET` described by a
/// path-with-query string (`/v1/experiments?app=MP3D&...`), exactly as
/// the HTTP transport would.
pub fn handle_target(service: &ExperimentService, target: &str) -> Response {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    service.handle(&Request {
        method: "GET".to_string(),
        path: crate::http::percent_decode(path),
        query: crate::http::parse_query(query),
        request_id: None,
        keep_alive: false,
    })
}
